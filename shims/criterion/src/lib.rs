//! A minimal `criterion` stand-in for offline builds.
//!
//! Provides the API subset the workspace's benches use — benchmark
//! groups, `bench_function`/`bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with straightforward
//! mean-of-samples timing instead of criterion's statistics. Good enough
//! to keep `cargo bench` usable and the bench targets compiling in CI.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization fence.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        // Groups inherit the driver's defaults; `sample_size` /
        // `measurement_time` on the group override them per-group.
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }
}

/// A two-part benchmark identifier, printed as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Caps the measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this shim does no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "  {}/{id}: {:>12.3?} per iteration",
            self.name, bencher.mean
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `f`, recording the mean duration over the sample budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let started = Instant::now();
        let mut iterations = 0u32;
        for _ in 0..self.sample_size.max(1) {
            black_box(f());
            iterations += 1;
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean = started.elapsed() / iterations.max(1);
    }
}

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(1)
            .measurement_time(Duration::from_millis(1));
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("id", "x"), &41, |b, &input| {
            b.iter(|| seen = input + 1);
        });
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats_both_parts() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
