//! A minimal `rand` stand-in: a seeded 64-bit PRNG with `gen_range`.
//!
//! The build environment has no access to crates.io; the workspace only
//! uses `StdRng::seed_from_u64` and `Rng::gen_range` over integer ranges,
//! so that is what this shim provides. The generator is SplitMix64 — not
//! the real crate's ChaCha, but deterministic for a given seed, which is
//! all the deterministic-workload callers rely on.

/// Low-level uniform 64-bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the standard unit-interval recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly, producing `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` by widening multiply (Lemire reduction
/// without the rejection step; the bias is ≪ 2⁻³² for these workloads).
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width i64/u64 range: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )+};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The shim's generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w = rng.gen_range(1usize..128);
            assert!((1..128).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn different_seeds_diverge() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
