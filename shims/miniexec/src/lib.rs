//! A minimal offline executor: [`block_on`] for one future on the
//! calling thread, and [`run`] — a scoped multi-worker run loop that
//! drives a batch of futures to completion on a small thread pool.
//!
//! The build environment has no access to crates.io, so this shim plays
//! the role tokio would: just enough executor to host 10⁵⁺ concurrent
//! waiter futures on a handful of OS threads. It is deliberately tiny —
//! no spawning from inside tasks, no I/O reactor, no timers (the
//! `autosynch` runtime brings its own deadline service). Futures run to
//! `Output = ()` and communicate through their captured environment,
//! which [`run`]'s scoped workers may borrow (tasks need only outlive
//! the call, not `'static`).
//!
//! The scheduler is a textbook ready-queue design: each task owns an
//! atomic run-state driven by its waker (idle / queued / running /
//! notified / done), a shared `VecDeque` of ready task indices feeds the
//! workers, and a wake that lands *during* a poll parks in the
//! `Notified` state so the worker re-queues the task after putting its
//! future back — the classic lost-wakeup guard.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Runs `future` to completion on the calling thread, parking it while
/// the future is pending.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct ThreadWaker {
        thread: Thread,
        notified: AtomicBool,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }

    let waker_state = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&waker_state));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !waker_state.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

/// Task run-states. Transitions: wakes move `IDLE → QUEUED` (pushing
/// the task) and `RUNNING → NOTIFIED`; workers move `QUEUED → RUNNING`
/// when they take a task and `RUNNING → IDLE | QUEUED | DONE` when the
/// poll returns.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// The executor state shared by wakers and workers. Wakers must be
/// `'static` (a `Waker` can outlive anything), so this holds only owned
/// data — the borrowed futures live outside it, in the run-scope.
struct Shared {
    ready: Mutex<VecDeque<usize>>,
    available: Condvar,
    states: Vec<AtomicU8>,
    done: AtomicUsize,
}

impl Shared {
    /// The waker path: make the task runnable exactly once per
    /// idle-to-wake edge.
    fn wake_task(&self, idx: usize) {
        let state = &self.states[idx];
        loop {
            match state.load(Ordering::Acquire) {
                IDLE => {
                    if state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.ready.lock().unwrap().push_back(idx);
                        self.available.notify_one();
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or finished:
                // nothing to do.
                QUEUED | NOTIFIED | DONE => return,
                other => unreachable!("task in impossible state {other}"),
            }
        }
    }
}

struct TaskWaker {
    idx: usize,
    shared: Arc<Shared>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.shared.wake_task(self.idx);
    }
}

/// Drives every future in `tasks` to completion on `workers` pool
/// threads (at least one), returning when all are done. Futures may
/// borrow from the caller's stack — the pool lives inside
/// [`std::thread::scope`].
pub fn run<'env, F>(workers: usize, tasks: impl IntoIterator<Item = F>)
where
    F: Future<Output = ()> + Send + 'env,
{
    type Slot<'env> = Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send + 'env>>>>;

    let slots: Vec<Slot<'env>> = tasks
        .into_iter()
        .map(|f| {
            let boxed: Pin<Box<dyn Future<Output = ()> + Send + 'env>> = Box::pin(f);
            Mutex::new(Some(boxed))
        })
        .collect();
    let total = slots.len();
    if total == 0 {
        return;
    }
    let shared = Arc::new(Shared {
        ready: Mutex::new((0..total).collect()),
        available: Condvar::new(),
        states: (0..total).map(|_| AtomicU8::new(QUEUED)).collect(),
        done: AtomicUsize::new(0),
    });

    let worker = |shared: Arc<Shared>, slots: &[Slot<'env>]| loop {
        let idx = {
            let mut ready = shared.ready.lock().unwrap();
            loop {
                if shared.done.load(Ordering::Acquire) == total {
                    return;
                }
                if let Some(idx) = ready.pop_front() {
                    break idx;
                }
                ready = shared.available.wait(ready).unwrap();
            }
        };
        let mut future = slots[idx]
            .lock()
            .unwrap()
            .take()
            .expect("a queued task's future is in its slot");
        shared.states[idx].store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::new(TaskWaker {
            idx,
            shared: Arc::clone(&shared),
        }));
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                shared.states[idx].store(DONE, Ordering::Release);
                if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == total {
                    // Everything finished: release every parked worker.
                    let _guard = shared.ready.lock().unwrap();
                    shared.available.notify_all();
                }
            }
            Poll::Pending => {
                // Put the future back BEFORE publishing `Idle`: the
                // instant the CAS lands, a waker may queue the task and
                // another worker take it — the slot must already be
                // populated.
                *slots[idx].lock().unwrap() = Some(future);
                if shared.states[idx]
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A wake landed mid-poll (`Notified`): the task is
                    // runnable again right now.
                    shared.states[idx].store(QUEUED, Ordering::Release);
                    shared.ready.lock().unwrap().push_back(idx);
                    shared.available.notify_one();
                }
            }
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let slots = &slots[..];
            scope.spawn(move || worker(shared, slots));
        }
    });
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    use super::*;

    #[test]
    fn block_on_returns_the_output() {
        assert_eq!(block_on(async { 6 * 7 }), 42);
    }

    #[test]
    fn block_on_survives_a_cross_thread_wake() {
        struct Handoff {
            value: Mutex<(Option<u32>, Option<Waker>)>,
        }

        struct Recv(Arc<Handoff>);
        impl Future for Recv {
            type Output = u32;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                let mut slot = self.0.value.lock().unwrap();
                match slot.0.take() {
                    Some(v) => Poll::Ready(v),
                    None => {
                        slot.1 = Some(cx.waker().clone());
                        Poll::Pending
                    }
                }
            }
        }

        let handoff = Arc::new(Handoff {
            value: Mutex::new((None, None)),
        });
        let sender = {
            let handoff = Arc::clone(&handoff);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let mut slot = handoff.value.lock().unwrap();
                slot.0 = Some(99);
                if let Some(waker) = slot.1.take() {
                    drop(slot);
                    waker.wake();
                }
            })
        };
        assert_eq!(block_on(Recv(handoff)), 99);
        sender.join().unwrap();
    }

    #[test]
    fn run_drives_borrowed_tasks_on_many_workers() {
        let hits = AtomicUsize::new(0);
        run(
            4,
            (0..1000).map(|_| async {
                // Yield once so every task exercises the re-queue path.
                let mut yielded = false;
                std::future::poll_fn(|cx| {
                    if yielded {
                        Poll::Ready(())
                    } else {
                        yielded = true;
                        cx.waker().wake_by_ref();
                        Poll::Pending
                    }
                })
                .await;
                hits.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_with_zero_tasks_returns_immediately() {
        run(4, std::iter::empty::<std::future::Ready<()>>());
    }
}
