//! A minimal `proptest` stand-in for offline builds.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! integer-range and tuple strategies, `prop::collection::{vec,
//! btree_map}`, `prop::array::{uniform3, uniform4}`,
//! `prop::sample::select`, `any::<bool>()`, `Just`, the
//! `proptest!`/`prop_oneof!`/`prop_assert*!` macros and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: generation is a seeded PRNG derived
//! from the test name (deterministic across runs), there is **no
//! shrinking**, and failures surface as ordinary assertion panics with
//! the generated values printed by the assertion itself.

pub mod test_runner {
    //! Test configuration and the deterministic generator.

    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 generator seeded from the test name, so every test has
    /// a stable but distinct stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The value-generation trait and its combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, map: f }
        }

        /// Type-erases the strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::from_fn(move |rng| self.new_value(rng))
        }

        /// Builds recursive structures: `recurse` receives the strategy
        /// for the previous depth level and returns the composite level.
        /// The shim honours `depth` and ignores the size hints (there is
        /// no shrinking to budget for).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(level).boxed();
                let leaf = leaf.clone();
                // Mix the leaf back in so generated depths vary.
                level = BoxedStrategy::from_fn(move |rng| {
                    if rng.below(4) == 0 {
                        leaf.new_value(rng)
                    } else {
                        branch.new_value(rng)
                    }
                });
            }
            level
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        sample: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a sampling closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { sample: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sample: Rc::clone(&self.sample),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.base.new_value(rng))
        }
    }

    /// A constant strategy, mirroring proptest's `Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies — the `prop_oneof!` backend.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.new_value(rng);
                }
                pick -= weight;
            }
            unreachable!("pick bounded by the total weight")
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u128::from(u64::MAX) {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolAny;
        fn arbitrary() -> BoolAny {
            BoolAny
        }
    }

    macro_rules! impl_int_arbitrary {
        ($($t:ty => $any:ident),+ $(,)?) => {$(
            /// Full-range integer strategy.
            #[derive(Debug, Clone, Copy)]
            pub struct $any;

            impl Strategy for $any {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = $any;
                fn arbitrary() -> $any {
                    $any
                }
            }
        )+};
    }

    impl_int_arbitrary! {
        i8 => I8Any, i16 => I16Any, i32 => I32Any, i64 => I64Any,
        u8 => U8Any, u16 => U16Any, u32 => U32Any, u64 => U64Any,
        usize => UsizeAny,
    }
}

pub mod collection {
    //! Container strategies.

    use std::collections::BTreeMap;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy type.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `BTreeMap<K, V>` strategy with a size target drawn from `size`
    /// (duplicate keys merge, so maps may come out smaller).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    /// The [`btree_map`] strategy type.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().new_value(rng);
            (0..len)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `[T; N]` strategy sampling every slot from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.new_value(rng))
        }
    }

    /// `[T; 3]` from one element strategy.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }

    /// `[T; 4]` from one element strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select { options }
    }

    /// The [`select`] strategy type.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` times with freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($config:expr) $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg =
                    $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property test (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

pub mod prelude {
    //! The glob-import surface: traits, config, macros and the `prop`
    //! module alias.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The crate root under its conventional alias, for
    /// `prop::collection::vec`-style paths.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let strat = (0u32..3, -4i64..=4);
        for _ in 0..1000 {
            let (a, b) = strat.new_value(&mut rng);
            assert!(a < 3);
            assert!((-4..=4).contains(&b));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = crate::test_runner::TestRng::from_name("weights");
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| strat.new_value(&mut rng)).count();
        assert!(trues > 700, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(4, 16, 3, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::from_name("trees");
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.new_value(&mut rng)));
        }
        assert!(max_depth > 1, "recursion should sometimes nest");
        assert!(max_depth <= 5, "depth bound respected, got {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_runs(xs in crate::collection::vec(0i64..100, 1..8)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_defaults(v in 1usize..=3) {
            prop_assert!((1..=3).contains(&v));
        }
    }
}
