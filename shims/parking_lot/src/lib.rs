//! A minimal `parking_lot` stand-in built on `std::sync`.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the exact API subset the workspace uses: non-poisoning
//! `Mutex`/`RwLock` (a panic while holding a lock does not wedge later
//! users — the AutoSynch runtime relies on relaying after a panicking
//! occupancy) and a `Condvar` whose `wait`/`wait_until` operate on the
//! shim's own guard type.
//!
//! Semantics notes versus the real crate: locking is std's (no parking
//! primitives, no eventual fairness), and poisoning is swallowed rather
//! than absent, which is observationally equivalent for these users.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion primitive (std mutex without poisoning).
///
/// The payload lives beside the lock (`sync::Mutex<()>` + `UnsafeCell`)
/// rather than inside it, so [`Mutex::data_ptr`] can hand out a raw
/// payload pointer on stable — callers with an external exclusion
/// protocol (the monitor word's CAS lane) access the payload without
/// ever constructing a guard.
pub struct Mutex<T: ?Sized> {
    lock: sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// Same bounds std's Mutex has: the lock hands out `&mut T`, so `Send`
// payloads suffice for cross-thread sharing.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            lock: sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.lock.lock().unwrap_or_else(PoisonError::into_inner)),
            data: &self.data,
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.lock.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner: Some(inner),
            data: &self.data,
        })
    }

    /// Mutable access without locking (ownership proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Raw pointer to the protected data (API parity with the real
    /// `parking_lot::Mutex::data_ptr`). Dereferencing is only sound under
    /// an exclusion protocol established outside this mutex — the caller
    /// must guarantee no lock holder can exist concurrently.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move
/// it through std's by-value wait API and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, ()>>,
    data: &'a UnsafeCell<T>,
}

// Std guard semantics: shareable when the payload is, never `Send`
// (the `inner` std guard already forbids that).
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        debug_assert!(self.inner.is_some(), "guard taken during wait");
        // Sound: the guard holds the lock (asserted above; `inner` is
        // only vacated inside `Condvar::wait*`, which holds `&mut self`).
        unsafe { &*self.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        debug_assert!(self.inner.is_some(), "guard taken during wait");
        unsafe { &mut *self.data.get() }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// The result of a timed wait: records whether the deadline elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one blocked thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        // The std condvar does not report whether a thread was woken.
        true
    }

    /// Wakes all blocked threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Atomically releases the guarded mutex and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`] with a relative timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Like [`Condvar::wait`] with a deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

/// A reader-writer lock (std rwlock without poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared-access RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        waiter.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
