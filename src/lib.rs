//! Facade crate for the AutoSynch (PLDI 2013) reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read naturally:
//!
//! * [`autosynch`] — the automatic-signal monitor runtime (globalization,
//!   relay invariance, predicate tagging) plus the explicit-signal and
//!   baseline comparison monitors.
//! * [`predicate`] — the predicate algebra: shared expressions, DNF,
//!   tags, structural keys, linear canonicalization.
//! * [`dsl`] — the textual `waituntil` compiler (the preprocessor
//!   analog) and [`dsl::DslMonitor`].
//! * [`problems`] — the paper's seven evaluation workloads plus seven
//!   extensions (five classics, the sharded-queues sharding showcase,
//!   and the wake-storm routing showcase), under every mechanism with
//!   the saturation harness.
//! * [`metrics`] — counters, phase timing (Table 1) and context-switch
//!   sampling (Fig. 15).
//!
//! See `README.md` for the tour and `DESIGN.md` for the paper-to-code
//! map.

pub use autosynch;
pub use autosynch_dsl as dsl;
pub use autosynch_metrics as metrics;
pub use autosynch_predicate as predicate;
pub use autosynch_problems as problems;
