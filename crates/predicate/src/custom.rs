//! Opaque predicate closures — the `None`-tag escape hatch.
//!
//! Some waiting conditions are not comparisons of an integer shared
//! expression against a constant (e.g. "this regex matches the shared
//! log"). AutoSynch still supports them: they evaluate in any thread like
//! every globalized predicate (a Rust closure captures its locals by
//! value), but the tagging algorithm assigns them the `None` tag and the
//! runtime examines them exhaustively, exactly as §4.3 prescribes for
//! untaggable conjunctions.

use std::fmt;
use std::sync::Arc;

/// The closure type wrapped by [`CustomPred`].
pub type CustomFn<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// An opaque boolean condition over the shared state.
///
/// Two customs are *structurally comparable* only when both carry a
/// caller-supplied [`dedup key`](CustomPred::with_key); otherwise the
/// runtime treats every occurrence as a distinct predicate (it cannot see
/// inside the closure).
pub struct CustomPred<S> {
    f: CustomFn<S>,
    key: Option<u64>,
    name: Arc<str>,
}

impl<S> CustomPred<S> {
    /// Wraps a closure with a diagnostic name.
    pub fn new(name: impl Into<String>, f: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        CustomPred {
            f: Arc::new(f),
            key: None,
            name: name.into().into(),
        }
    }

    /// Attaches a deduplication key. Callers promise that two customs with
    /// the same key are semantically identical; the runtime then maps them
    /// to one condition variable like any syntax-equivalent predicate.
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = Some(key);
        self
    }

    /// The deduplication key, if any.
    pub fn key(&self) -> Option<u64> {
        self.key
    }

    /// The diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the closure.
    #[inline]
    pub fn eval(&self, state: &S) -> bool {
        (self.f)(state)
    }

    /// Whether `self` and `other` wrap the very same closure allocation.
    pub fn same_closure(&self, other: &CustomPred<S>) -> bool {
        Arc::ptr_eq(&self.f, &other.f)
    }
}

impl<S> Clone for CustomPred<S> {
    fn clone(&self) -> Self {
        CustomPred {
            f: Arc::clone(&self.f),
            key: self.key,
            name: Arc::clone(&self.name),
        }
    }
}

impl<S> fmt::Debug for CustomPred<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomPred")
            .field("name", &self.name)
            .field("key", &self.key)
            .finish()
    }
}

impl<S> fmt::Display for CustomPred<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.key {
            Some(k) => write!(f, "{}#{k}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_runs_the_closure() {
        let p = CustomPred::new("positive", |s: &i64| *s > 0);
        assert!(p.eval(&3));
        assert!(!p.eval(&-3));
    }

    #[test]
    fn key_roundtrip() {
        let p = CustomPred::new("k", |_: &i64| true).with_key(42);
        assert_eq!(p.key(), Some(42));
        assert_eq!(p.name(), "k");
    }

    #[test]
    fn clone_shares_the_closure() {
        let p = CustomPred::new("c", |s: &i64| *s == 0);
        let q = p.clone();
        assert!(p.same_closure(&q));
        let r = CustomPred::new("c", |s: &i64| *s == 0);
        assert!(!p.same_closure(&r));
    }

    #[test]
    fn debug_and_display() {
        let p = CustomPred::new("cond", |_: &i64| true).with_key(7);
        assert!(format!("{p:?}").contains("cond"));
        assert_eq!(p.to_string(), "cond#7");
        let q = CustomPred::new("plain", |_: &i64| true);
        assert_eq!(q.to_string(), "plain");
    }
}
