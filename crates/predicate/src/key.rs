//! Structural predicate keys for the predicate table (§5.2).
//!
//! "Two predicates are *syntax equivalent* if they are identical after
//! applying globalization" — the condition manager maps syntax-equivalent
//! predicates to the same condition variable via a hash table. A
//! [`PredKey`] is the canonical, order-insensitive form of a DNF used as
//! that hash key.
//!
//! Predicates containing custom closures *without* a caller-supplied dedup
//! key have no canonical form (the runtime cannot inspect a closure), so
//! [`pred_key`] returns `None` and the runtime gives every such predicate
//! its own condition variable.

use crate::atom::CmpOp;
use crate::dnf::{Dnf, Literal};
use crate::expr::ExprId;

/// The canonical form of one literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LitKey {
    /// A comparison literal `expr op key`.
    Cmp {
        /// The compared expression.
        expr: ExprId,
        /// The operator.
        op: CmpOp,
        /// The globalized constant.
        key: i64,
    },
    /// A keyed custom literal.
    Custom {
        /// The caller-supplied dedup key.
        key: u64,
        /// Whether the literal is negated.
        negated: bool,
    },
}

/// The canonical form of a whole predicate: sorted conjunctions of sorted
/// literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredKey(Vec<Vec<LitKey>>);

impl PredKey {
    /// Number of conjunctions in the canonical form.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the canonical form is empty (the constant-false predicate).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Computes the canonical key of a DNF, or `None` when it contains a
/// keyless custom literal.
pub fn pred_key<S>(dnf: &Dnf<S>) -> Option<PredKey> {
    let mut conjunctions = Vec::with_capacity(dnf.len());
    for conj in dnf.conjunctions() {
        let mut lits = Vec::with_capacity(conj.len());
        for lit in conj.literals() {
            let key = match lit {
                Literal::Cmp(atom) => LitKey::Cmp {
                    expr: atom.expr,
                    op: atom.op,
                    key: atom.key,
                },
                Literal::Custom { pred, negated } => LitKey::Custom {
                    key: pred.key()?,
                    negated: *negated,
                },
            };
            lits.push(key);
        }
        lits.sort_unstable();
        lits.dedup();
        conjunctions.push(lits);
    }
    conjunctions.sort_unstable();
    conjunctions.dedup();
    Some(PredKey(conjunctions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BoolExpr;
    use crate::custom::CustomPred;
    use crate::dnf::to_dnf;
    use crate::expr::{ExprHandle, ExprTable};

    struct S {
        x: i64,
        y: i64,
    }

    fn setup() -> (ExprTable<S>, ExprHandle<S>, ExprHandle<S>) {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &S| s.x);
        let y = t.register("y", |s: &S| s.y);
        (t, x, y)
    }

    fn key_of(e: &BoolExpr<S>) -> Option<PredKey> {
        pred_key(&to_dnf(e).unwrap())
    }

    #[test]
    fn identical_predicates_share_a_key() {
        let (_, x, _) = setup();
        assert_eq!(key_of(&x.ge(48)), key_of(&x.ge(48)));
    }

    #[test]
    fn different_globalized_constants_differ() {
        let (_, x, _) = setup();
        assert_ne!(key_of(&x.ge(48)), key_of(&x.ge(32)));
    }

    #[test]
    fn literal_order_is_canonicalized() {
        let (_, x, y) = setup();
        assert_eq!(key_of(&x.eq(1).and(y.eq(2))), key_of(&y.eq(2).and(x.eq(1))));
    }

    #[test]
    fn conjunction_order_is_canonicalized() {
        let (_, x, y) = setup();
        assert_eq!(key_of(&x.eq(1).or(y.eq(2))), key_of(&y.eq(2).or(x.eq(1))));
    }

    #[test]
    fn keyless_custom_prevents_a_key() {
        let (_, x, _) = setup();
        let e = x.eq(1).and(BoolExpr::custom("c", |_: &S| true));
        assert_eq!(key_of(&e), None);
    }

    #[test]
    fn keyed_customs_participate() {
        let (_, x, _) = setup();
        let mk = |key: u64| {
            x.eq(1).and(BoolExpr::Custom(
                CustomPred::new("c", |_: &S| true).with_key(key),
            ))
        };
        assert_eq!(key_of(&mk(7)), key_of(&mk(7)));
        assert_ne!(key_of(&mk(7)), key_of(&mk(8)));
    }

    #[test]
    fn negated_keyed_custom_differs() {
        let (_, _, _) = setup();
        let plain = BoolExpr::Custom(CustomPred::new("c", |_: &S| true).with_key(7));
        let negated = plain.clone().not();
        assert_ne!(key_of(&plain), key_of(&negated));
    }

    #[test]
    fn operator_matters() {
        let (_, x, _) = setup();
        assert_ne!(key_of(&x.ge(5)), key_of(&x.gt(5)));
        assert_ne!(key_of(&x.ge(5)), key_of(&x.le(5)));
    }

    #[test]
    fn len_and_is_empty() {
        let (_, x, y) = setup();
        let k = key_of(&x.eq(1).or(y.eq(2))).unwrap();
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        let f = key_of(&BoolExpr::never()).unwrap();
        assert!(f.is_empty());
    }
}
