//! Disjunctive-normal-form conversion (§4.1: "every Boolean formula can be
//! converted into DNF using De Morgan's laws and distributive law").
//!
//! The conversion happens once per predicate construction — the analog of
//! the paper's preprocessing step — so a worst-case exponential blowup is
//! acceptable but still guarded by an explicit conjunction limit
//! ([`DnfOverflow`]).
//!
//! Beyond plain distribution the pass performs the cheap simplifications a
//! preprocessor would: duplicate literals inside a conjunction are dropped,
//! conjunctions whose comparison literals are unsatisfiable over the
//! integers are pruned (`x < 3 && x > 5`), and duplicate conjunctions are
//! merged. These keep the runtime's tag indexes free of dead entries.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::BoolExpr;
use crate::atom::{CmpAtom, CmpOp};
use crate::custom::CustomPred;
use crate::expr::{ExprId, ExprTable};

/// Default cap on the number of conjunctions produced for one predicate.
pub const DEFAULT_CONJUNCTION_LIMIT: usize = 512;

/// Error: DNF conversion exceeded the conjunction limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnfOverflow {
    /// The limit that was exceeded.
    pub limit: usize,
}

impl fmt::Display for DnfOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DNF conversion exceeded the limit of {} conjunctions",
            self.limit
        )
    }
}

impl std::error::Error for DnfOverflow {}

/// A literal of a DNF conjunction: a comparison atom or a (possibly
/// negated) custom closure.
pub enum Literal<S> {
    /// `sharedExpr op key`. Negations have been folded into the operator.
    Cmp(CmpAtom),
    /// An opaque closure, negated when `negated` is true (closures cannot
    /// absorb negation the way comparison operators can).
    Custom {
        /// The wrapped closure.
        pred: CustomPred<S>,
        /// Whether the literal is the closure's negation.
        negated: bool,
    },
}

impl<S> Literal<S> {
    /// Evaluates the literal.
    pub fn eval(&self, state: &S, exprs: &ExprTable<S>) -> bool {
        match self {
            Literal::Cmp(atom) => atom.eval_with(exprs.eval(atom.expr, state)),
            Literal::Custom { pred, negated } => pred.eval(state) != *negated,
        }
    }

    /// Evaluates the literal against a published expression snapshot
    /// instead of the live state: `values` is indexed by
    /// [`ExprId::index`], `None` marking expressions the snapshot does
    /// not carry. Returns `None` when the literal cannot be decided from
    /// the snapshot (a custom closure, or a missing value).
    pub fn eval_snapshot(&self, values: &[Option<i64>]) -> Option<bool> {
        match self {
            Literal::Cmp(atom) => values
                .get(atom.expr.index())
                .copied()
                .flatten()
                .map(|v| atom.eval_with(v)),
            Literal::Custom { .. } => None,
        }
    }

    /// The comparison atom, if this literal is one.
    pub fn as_cmp(&self) -> Option<CmpAtom> {
        match self {
            Literal::Cmp(atom) => Some(*atom),
            Literal::Custom { .. } => None,
        }
    }

    fn duplicates(&self, other: &Literal<S>) -> bool {
        match (self, other) {
            (Literal::Cmp(a), Literal::Cmp(b)) => a == b,
            (
                Literal::Custom {
                    pred: p,
                    negated: n,
                },
                Literal::Custom {
                    pred: q,
                    negated: m,
                },
            ) => n == m && (p.same_closure(q) || (p.key().is_some() && p.key() == q.key())),
            _ => false,
        }
    }
}

impl<S> Clone for Literal<S> {
    fn clone(&self) -> Self {
        match self {
            Literal::Cmp(a) => Literal::Cmp(*a),
            Literal::Custom { pred, negated } => Literal::Custom {
                pred: pred.clone(),
                negated: *negated,
            },
        }
    }
}

impl<S> fmt::Debug for Literal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<S> fmt::Display for Literal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Cmp(a) => write!(f, "{a}"),
            Literal::Custom { pred, negated } => {
                if *negated {
                    write!(f, "!{pred}")
                } else {
                    write!(f, "{pred}")
                }
            }
        }
    }
}

/// A conjunction of literals. The empty conjunction is `true`.
pub struct Conjunction<S> {
    literals: Vec<Literal<S>>,
}

impl<S> Conjunction<S> {
    /// Creates a conjunction from literals (no simplification).
    pub fn new(literals: Vec<Literal<S>>) -> Self {
        Conjunction { literals }
    }

    /// The literals in construction order.
    pub fn literals(&self) -> &[Literal<S>] {
        &self.literals
    }

    /// Evaluates the conjunction (all literals true).
    pub fn eval(&self, state: &S, exprs: &ExprTable<S>) -> bool {
        self.literals.iter().all(|l| l.eval(state, exprs))
    }

    /// Three-valued evaluation against an expression snapshot:
    /// `Some(false)` when any literal is decidably false, `Some(true)`
    /// when every literal is decidably true, `None` when the snapshot
    /// cannot decide (an opaque literal or a missing value, with no
    /// decidably-false literal to short-circuit on).
    pub fn eval_snapshot(&self, values: &[Option<i64>]) -> Option<bool> {
        let mut all_true = true;
        for literal in &self.literals {
            match literal.eval_snapshot(values) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        all_true.then_some(true)
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether this is the empty (trivially true) conjunction.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether the conjunction contains any custom (opaque) literal.
    pub fn has_custom(&self) -> bool {
        self.literals
            .iter()
            .any(|l| matches!(l, Literal::Custom { .. }))
    }

    /// Drops duplicate literals in place.
    fn dedup_literals(&mut self) {
        let mut kept: Vec<Literal<S>> = Vec::with_capacity(self.literals.len());
        for lit in self.literals.drain(..) {
            if !kept.iter().any(|k| k.duplicates(&lit)) {
                kept.push(lit);
            }
        }
        self.literals = kept;
    }

    /// Integer-feasibility check of the comparison literals: returns
    /// `false` when no assignment of the shared expressions can satisfy
    /// them all (custom literals are treated as satisfiable).
    pub fn cmp_feasible(&self) -> bool {
        #[derive(Default)]
        struct Range {
            eq: Option<i64>,
            lo: Option<i64>, // inclusive lower bound
            hi: Option<i64>, // inclusive upper bound
            ne: Vec<i64>,
        }
        let mut ranges: BTreeMap<ExprId, Range> = BTreeMap::new();
        for lit in &self.literals {
            let Some(atom) = lit.as_cmp() else { continue };
            let r = ranges.entry(atom.expr).or_default();
            match atom.op {
                CmpOp::Eq => {
                    if r.eq.is_some_and(|prev| prev != atom.key) {
                        return false;
                    }
                    r.eq = Some(atom.key);
                }
                CmpOp::Ne => r.ne.push(atom.key),
                CmpOp::Lt => {
                    let Some(bound) = atom.key.checked_sub(1) else {
                        return false; // x < i64::MIN
                    };
                    r.hi = Some(r.hi.map_or(bound, |h| h.min(bound)));
                }
                CmpOp::Le => r.hi = Some(r.hi.map_or(atom.key, |h| h.min(atom.key))),
                CmpOp::Gt => {
                    let Some(bound) = atom.key.checked_add(1) else {
                        return false; // x > i64::MAX
                    };
                    r.lo = Some(r.lo.map_or(bound, |l| l.max(bound)));
                }
                CmpOp::Ge => r.lo = Some(r.lo.map_or(atom.key, |l| l.max(atom.key))),
            }
        }
        for r in ranges.values() {
            let lo = r.lo.unwrap_or(i64::MIN);
            let hi = r.hi.unwrap_or(i64::MAX);
            if lo > hi {
                return false;
            }
            if let Some(eq) = r.eq {
                if eq < lo || eq > hi || r.ne.contains(&eq) {
                    return false;
                }
            } else if lo == hi && r.ne.contains(&lo) {
                return false;
            }
        }
        true
    }

    fn same_shape(&self, other: &Conjunction<S>) -> bool {
        self.literals.len() == other.literals.len()
            && self
                .literals
                .iter()
                .all(|l| other.literals.iter().any(|o| o.duplicates(l)))
    }

    /// Whether `other` implies `self` because every literal of `self`
    /// occurs in `other` (so `self || other ≡ self`).
    fn subsumes(&self, other: &Conjunction<S>) -> bool {
        self.literals.len() <= other.literals.len()
            && self
                .literals
                .iter()
                .all(|l| other.literals.iter().any(|o| o.duplicates(l)))
    }
}

impl<S> Clone for Conjunction<S> {
    fn clone(&self) -> Self {
        Conjunction {
            literals: self.literals.clone(),
        }
    }
}

impl<S> fmt::Debug for Conjunction<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<S> fmt::Display for Conjunction<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return f.write_str("true");
        }
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                f.write_str(" && ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

/// A predicate in disjunctive normal form. The empty disjunction is
/// `false`.
pub struct Dnf<S> {
    conjunctions: Vec<Conjunction<S>>,
}

impl<S> Dnf<S> {
    /// Creates a DNF from pre-built conjunctions (no simplification).
    pub fn new(conjunctions: Vec<Conjunction<S>>) -> Self {
        Dnf { conjunctions }
    }

    /// The conjunctions of the disjunction.
    pub fn conjunctions(&self) -> &[Conjunction<S>] {
        &self.conjunctions
    }

    /// Evaluates the DNF (any conjunction true).
    pub fn eval(&self, state: &S, exprs: &ExprTable<S>) -> bool {
        self.conjunctions.iter().any(|c| c.eval(state, exprs))
    }

    /// Three-valued evaluation against an expression snapshot:
    /// `Some(true)` when some conjunction is decidably true,
    /// `Some(false)` when every conjunction is decidably false, `None`
    /// otherwise (the snapshot cannot rule the predicate out). The empty
    /// DNF is decidably false.
    pub fn eval_snapshot(&self, values: &[Option<i64>]) -> Option<bool> {
        let mut all_false = true;
        for conjunction in &self.conjunctions {
            match conjunction.eval_snapshot(values) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => all_false = false,
            }
        }
        all_false.then_some(false)
    }

    /// Number of conjunctions.
    pub fn len(&self) -> usize {
        self.conjunctions.len()
    }

    /// Whether this is the empty (trivially false) disjunction.
    pub fn is_empty(&self) -> bool {
        self.conjunctions.is_empty()
    }

    /// Whether the DNF is the constant `true` (contains an empty
    /// conjunction).
    pub fn is_trivially_true(&self) -> bool {
        self.conjunctions.iter().any(Conjunction::is_empty)
    }

    /// Whether the DNF is the constant `false`.
    pub fn is_trivially_false(&self) -> bool {
        self.conjunctions.is_empty()
    }
}

impl<S> Clone for Dnf<S> {
    fn clone(&self) -> Self {
        Dnf {
            conjunctions: self.conjunctions.clone(),
        }
    }
}

impl<S> fmt::Debug for Dnf<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<S> fmt::Display for Dnf<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjunctions.is_empty() {
            return f.write_str("false");
        }
        for (i, c) in self.conjunctions.iter().enumerate() {
            if i > 0 {
                f.write_str(" || ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// Negation-normal-form node: negations pushed to the leaves.
enum Nnf<S> {
    Lit(Literal<S>),
    And(Vec<Nnf<S>>),
    Or(Vec<Nnf<S>>),
    Const(bool),
}

fn to_nnf<S>(expr: &BoolExpr<S>, negate: bool) -> Nnf<S> {
    match expr {
        BoolExpr::Const(b) => Nnf::Const(*b != negate),
        BoolExpr::Cmp(atom) => Nnf::Lit(Literal::Cmp(if negate { atom.negated() } else { *atom })),
        BoolExpr::Custom(c) => Nnf::Lit(Literal::Custom {
            pred: c.clone(),
            negated: negate,
        }),
        BoolExpr::Not(inner) => to_nnf(inner, !negate),
        BoolExpr::And(children) => {
            let converted = children.iter().map(|c| to_nnf(c, negate)).collect();
            if negate {
                Nnf::Or(converted) // De Morgan: !(a && b) = !a || !b
            } else {
                Nnf::And(converted)
            }
        }
        BoolExpr::Or(children) => {
            let converted = children.iter().map(|c| to_nnf(c, negate)).collect();
            if negate {
                Nnf::And(converted) // De Morgan: !(a || b) = !a && !b
            } else {
                Nnf::Or(converted)
            }
        }
    }
}

/// Converts a boolean AST to DNF with the default conjunction limit.
///
/// # Errors
///
/// Returns [`DnfOverflow`] when distribution would create more than
/// [`DEFAULT_CONJUNCTION_LIMIT`] conjunctions.
pub fn to_dnf<S>(expr: &BoolExpr<S>) -> Result<Dnf<S>, DnfOverflow> {
    to_dnf_with_limit(expr, DEFAULT_CONJUNCTION_LIMIT)
}

/// Converts a boolean AST to DNF, bounding the number of conjunctions.
///
/// # Errors
///
/// Returns [`DnfOverflow`] when distribution would create more than
/// `limit` conjunctions at any intermediate step.
pub fn to_dnf_with_limit<S>(expr: &BoolExpr<S>, limit: usize) -> Result<Dnf<S>, DnfOverflow> {
    let nnf = to_nnf(expr, false);
    let mut conjunctions = dnf_of_nnf(&nnf, limit)?;
    // Simplify: dedup literals, prune unsatisfiable and duplicate
    // conjunctions. An empty conjunction (constant true) absorbs the rest.
    for c in &mut conjunctions {
        c.dedup_literals();
    }
    conjunctions.retain(Conjunction::cmp_feasible);
    let mut kept: Vec<Conjunction<S>> = Vec::with_capacity(conjunctions.len());
    for c in conjunctions {
        if c.is_empty() {
            return Ok(Dnf::new(vec![Conjunction::new(Vec::new())]));
        }
        if !kept.iter().any(|k| k.same_shape(&c)) {
            kept.push(c);
        }
    }
    // Subsumption: in `A || B`, if A's literals are a subset of B's then
    // B implies A and B is redundant. (Weaker disjuncts absorb stronger
    // ones — the preprocessor-grade cleanup that keeps tag indexes
    // small.)
    let mut survivors: Vec<Conjunction<S>> = Vec::with_capacity(kept.len());
    'outer: for c in kept {
        // Skip c if an existing survivor subsumes it.
        for s in &survivors {
            if s.subsumes(&c) {
                continue 'outer;
            }
        }
        // Remove survivors that c subsumes.
        survivors.retain(|s| !c.subsumes(s));
        survivors.push(c);
    }
    Ok(Dnf::new(survivors))
}

fn dnf_of_nnf<S>(nnf: &Nnf<S>, limit: usize) -> Result<Vec<Conjunction<S>>, DnfOverflow> {
    match nnf {
        Nnf::Const(true) => Ok(vec![Conjunction::new(Vec::new())]),
        Nnf::Const(false) => Ok(Vec::new()),
        Nnf::Lit(lit) => Ok(vec![Conjunction::new(vec![lit.clone()])]),
        Nnf::Or(children) => {
            let mut out = Vec::new();
            for child in children {
                out.extend(dnf_of_nnf(child, limit)?);
                if out.len() > limit {
                    return Err(DnfOverflow { limit });
                }
            }
            Ok(out)
        }
        Nnf::And(children) => {
            // Distribute: cross product of the children's conjunction sets.
            let mut acc: Vec<Conjunction<S>> = vec![Conjunction::new(Vec::new())];
            for child in children {
                let child_conjs = dnf_of_nnf(child, limit)?;
                let mut next = Vec::with_capacity(acc.len() * child_conjs.len().max(1));
                for left in &acc {
                    for right in &child_conjs {
                        let mut literals = left.literals.clone();
                        literals.extend(right.literals.iter().cloned());
                        next.push(Conjunction::new(literals));
                        if next.len() > limit {
                            return Err(DnfOverflow { limit });
                        }
                    }
                }
                acc = next;
                if acc.is_empty() {
                    return Ok(acc); // a false child annihilates the And
                }
            }
            Ok(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprHandle;

    struct S {
        x: i64,
        y: i64,
        z: i64,
    }

    fn setup() -> (ExprTable<S>, ExprHandle<S>, ExprHandle<S>, ExprHandle<S>) {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &S| s.x);
        let y = t.register("y", |s: &S| s.y);
        let z = t.register("z", |s: &S| s.z);
        (t, x, y, z)
    }

    fn states() -> Vec<S> {
        let mut out = Vec::new();
        for x in -1..=3 {
            for y in -1..=3 {
                for z in -1..=3 {
                    out.push(S { x, y, z });
                }
            }
        }
        out
    }

    fn assert_equiv(expr: &BoolExpr<S>, t: &ExprTable<S>) {
        let dnf = to_dnf(expr).unwrap();
        for s in states() {
            assert_eq!(
                expr.eval(&s, t),
                dnf.eval(&s, t),
                "mismatch for {expr} vs {dnf} at x={} y={} z={}",
                s.x,
                s.y,
                s.z
            );
        }
    }

    #[test]
    fn paper_example_is_preserved() {
        // (x = 1) && (y = 6) || (z != 8) — the DNF example from §4.1.
        let (t, x, y, z) = setup();
        let e = x.eq(1).and(y.eq(6)).or(z.ne(8));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 2);
        assert_equiv(&e, &t);
    }

    #[test]
    fn distribution_over_or() {
        let (t, x, y, z) = setup();
        // (x==1 || y==1) && (z==1 || z==2) → 4 conjunctions
        let e = x.eq(1).or(y.eq(1)).and(z.eq(1).or(z.eq(2)));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 4);
        assert_equiv(&e, &t);
    }

    #[test]
    fn de_morgan_pushes_negation_to_operators() {
        let (t, x, y, _) = setup();
        let e = x.lt(2).and(y.ge(1)).not();
        let dnf = to_dnf(&e).unwrap();
        // !(x<2 && y>=1) = x>=2 || y<1
        assert_eq!(dnf.len(), 2);
        for c in dnf.conjunctions() {
            assert_eq!(c.len(), 1);
            let atom = c.literals()[0].as_cmp().unwrap();
            assert!(atom.op == CmpOp::Ge || atom.op == CmpOp::Lt);
        }
        assert_equiv(&e, &t);
    }

    #[test]
    fn double_negation_cancels() {
        let (t, x, _, _) = setup();
        let e = x.eq(2).not().not();
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_equiv(&e, &t);
    }

    #[test]
    fn negated_custom_keeps_negation_flag() {
        let (t, _, _, _) = setup();
        let e = BoolExpr::custom("c", |s: &S| s.x > 0).not();
        let dnf = to_dnf(&e).unwrap();
        match &dnf.conjunctions()[0].literals()[0] {
            Literal::Custom { negated, .. } => assert!(*negated),
            other => panic!("expected custom literal, got {other}"),
        }
        assert_equiv(&e, &t);
    }

    #[test]
    fn constants_simplify() {
        let (_, x, _, _) = setup();
        let t = to_dnf(&BoolExpr::<S>::always()).unwrap();
        assert!(t.is_trivially_true());
        let f = to_dnf(&BoolExpr::<S>::never()).unwrap();
        assert!(f.is_trivially_false());
        // x==1 && false → false
        let dnf = to_dnf(&x.eq(1).and(BoolExpr::never())).unwrap();
        assert!(dnf.is_trivially_false());
        // x==1 || true → true
        let dnf = to_dnf(&x.eq(1).or(BoolExpr::always())).unwrap();
        assert!(dnf.is_trivially_true());
    }

    #[test]
    fn duplicate_literals_are_deduped() {
        let (t, x, _, _) = setup();
        let e = x.ge(1).and(x.ge(1));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.conjunctions()[0].len(), 1);
        assert_equiv(&e, &t);
    }

    #[test]
    fn contradictory_conjunctions_are_pruned() {
        let (t, x, y, _) = setup();
        // (x<3 && x>5) || y==0 — first conjunction unsatisfiable
        let e = x.lt(3).and(x.gt(5)).or(y.eq(0));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_equiv(&e, &t);
    }

    #[test]
    fn eq_ne_contradiction_pruned() {
        let (_, x, _, _) = setup();
        let e = x.eq(4).and(x.ne(4));
        assert!(to_dnf(&e).unwrap().is_trivially_false());
    }

    #[test]
    fn eq_eq_conflict_pruned() {
        let (_, x, _, _) = setup();
        let e = x.eq(4).and(x.eq(5));
        assert!(to_dnf(&e).unwrap().is_trivially_false());
    }

    #[test]
    fn pinched_range_with_ne_is_infeasible() {
        let (_, x, _, _) = setup();
        // x >= 2 && x <= 2 && x != 2
        let e = x.ge(2).and(x.le(2)).and(x.ne(2));
        assert!(to_dnf(&e).unwrap().is_trivially_false());
    }

    #[test]
    fn feasible_tight_range_is_kept() {
        let (t, x, _, _) = setup();
        let e = x.ge(2).and(x.le(2));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_equiv(&e, &t);
    }

    #[test]
    fn boundary_lt_min_and_gt_max_are_infeasible() {
        let (_, x, _, _) = setup();
        assert!(to_dnf(&x.lt(i64::MIN)).unwrap().is_trivially_false());
        assert!(to_dnf(&x.gt(i64::MAX)).unwrap().is_trivially_false());
    }

    #[test]
    fn subsumed_conjunctions_are_dropped() {
        let (t, x, y, _) = setup();
        // (x>=1) || (x>=1 && y==2): the second disjunct is redundant.
        let e = x.ge(1).or(x.ge(1).and(y.eq(2)));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf.conjunctions()[0].len(), 1);
        assert_equiv(&e, &t);
        // Order independence: stronger disjunct first.
        let e = x.ge(1).and(y.eq(2)).or(x.ge(1));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_equiv(&e, &t);
    }

    #[test]
    fn non_subsumed_disjuncts_survive() {
        let (t, x, y, _) = setup();
        let e = x.ge(1).and(y.eq(2)).or(x.ge(2).and(y.eq(3)));
        assert_eq!(to_dnf(&e).unwrap().len(), 2);
        assert_equiv(&e, &t);
    }

    #[test]
    fn duplicate_conjunctions_merge() {
        let (_, x, y, _) = setup();
        let e = x.eq(1).and(y.eq(2)).or(y.eq(2).and(x.eq(1)));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(dnf.len(), 1);
    }

    #[test]
    fn overflow_is_reported() {
        let (_, x, _, _) = setup();
        // (x==0 || x==1) && ... 12 times → 4096 conjunctions > 512
        let clause = |_: usize| x.eq(0).or(x.eq(1));
        let mut e = clause(0);
        for i in 1..12 {
            e = e.and(clause(i));
        }
        // Note: dedup happens after distribution, so the limit applies to
        // the raw cross product.
        let err = to_dnf(&e).unwrap_err();
        assert_eq!(err.limit, DEFAULT_CONJUNCTION_LIMIT);
        assert!(err.to_string().contains("512"));
    }

    #[test]
    fn custom_limit_is_respected() {
        let (_, x, y, _) = setup();
        let e = x.eq(0).or(x.eq(1)).and(y.eq(0).or(y.eq(1)));
        assert!(to_dnf_with_limit(&e, 3).is_err());
        assert_eq!(to_dnf_with_limit(&e, 4).unwrap().len(), 4);
    }

    #[test]
    fn display_of_dnf() {
        let (_, x, y, _) = setup();
        let dnf = to_dnf(&x.eq(1).or(y.gt(0))).unwrap();
        let text = dnf.to_string();
        assert!(text.contains("e0 == 1"));
        assert!(text.contains("||"));
        assert_eq!(
            to_dnf(&BoolExpr::<S>::never()).unwrap().to_string(),
            "false"
        );
    }

    #[test]
    fn has_custom_detection() {
        let (_, x, _, _) = setup();
        let pure = to_dnf(&x.eq(1)).unwrap();
        assert!(!pure.conjunctions()[0].has_custom());
        let mixed = to_dnf(&x.eq(1).and(BoolExpr::custom("c", |_: &S| true))).unwrap();
        assert!(mixed.conjunctions()[0].has_custom());
    }

    #[test]
    fn deeply_nested_equivalence() {
        let (t, x, y, z) = setup();
        let e = x
            .lt(2)
            .or(y.ge(1).and(z.ne(0)))
            .not()
            .or(x.eq(3).and(y.eq(3).or(z.eq(3))));
        assert_equiv(&e, &t);
    }
}
