//! Per-conjunction expression dependency sets.
//!
//! Change-driven relay signaling (crate `autosynch`, the `autosynch_cd`
//! ablation) needs to know, for every DNF conjunction, *which shared
//! expressions its truth value can depend on*: a conjunction whose
//! dependencies are all unchanged since the last relay cannot have
//! flipped from false to true, so the relay search skips it without
//! evaluating anything.
//!
//! Dependencies are computed once per predicate construction, right after
//! DNF conversion — the same preprocessing point where tags are assigned
//! (Fig. 3 of the paper). Comparison literals contribute their shared
//! expression; custom closures are opaque, so a conjunction containing
//! one is marked [`ConjDeps::is_opaque`] and conservatively treated as
//! depending on everything.

use crate::dnf::{Conjunction, Dnf, Literal};
use crate::expr::ExprId;

/// The dependency set of one DNF conjunction: the shared expressions its
/// comparison literals read, plus an opacity flag for custom closures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjDeps {
    /// Sorted, deduplicated expression ids read by comparison literals.
    exprs: Vec<ExprId>,
    /// Whether the conjunction contains an opaque (closure) literal.
    opaque: bool,
}

impl ConjDeps {
    /// Computes the dependency set of a conjunction.
    pub fn of<S>(conjunction: &Conjunction<S>) -> Self {
        let mut exprs: Vec<ExprId> = Vec::new();
        let mut opaque = false;
        for literal in conjunction.literals() {
            match literal {
                Literal::Cmp(atom) => exprs.push(atom.expr),
                Literal::Custom { .. } => opaque = true,
            }
        }
        exprs.sort_unstable();
        exprs.dedup();
        ConjDeps { exprs, opaque }
    }

    /// The comparison-literal dependencies, sorted ascending.
    pub fn exprs(&self) -> &[ExprId] {
        &self.exprs
    }

    /// Whether the conjunction contains an opaque literal and therefore
    /// may depend on arbitrary parts of the monitor state.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Whether a state delta described by `changed` (indexed by
    /// [`ExprId::index`]) can affect this conjunction. Opaque
    /// conjunctions intersect everything; expressions beyond the bitmap's
    /// length are conservatively treated as changed (they were registered
    /// after the bitmap was sized).
    pub fn intersects(&self, changed: &[bool]) -> bool {
        self.opaque
            || self
                .exprs
                .iter()
                .any(|e| changed.get(e.index()).copied().unwrap_or(true))
    }

    /// The smallest dependency that is flagged changed, if any. The
    /// change-driven `None`-tag probe uses this to visit each candidate
    /// exactly once even when several of its dependencies changed.
    pub fn first_changed(&self, changed: &[bool]) -> Option<ExprId> {
        self.exprs
            .iter()
            .copied()
            .find(|e| changed.get(e.index()).copied().unwrap_or(true))
    }

    /// Routes this conjunction onto one of `shards` disjoint partitions
    /// of the expression space, or `None` when it cannot be confined to
    /// a single partition.
    ///
    /// The routing is *total* and *deterministic*: it depends only on
    /// the dependency set and `shards`, never on registration order or
    /// runtime state. A conjunction lands in shard `s` iff every one of
    /// its dependencies hashes to `s` under [`expr_shard`]; opaque
    /// conjunctions (which may read arbitrary state), dependency-free
    /// conjunctions (constants), and conjunctions whose dependencies
    /// span several partitions return `None` — the sharded condition
    /// manager places those in its global shard.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn route(&self, shards: usize) -> Option<usize> {
        assert!(shards > 0, "cannot route over zero shards");
        if self.opaque || self.exprs.is_empty() {
            return None;
        }
        let home = expr_shard(self.exprs[0], shards);
        self.exprs[1..]
            .iter()
            .all(|&e| expr_shard(e, shards) == home)
            .then_some(home)
    }
}

/// The stable routing key of a shared expression: a 64-bit FNV-1a hash
/// of its id. Expression ids are dense registration indexes, so taking
/// `id % shards` directly would stripe *adjacent* registrations across
/// shards — fine for round-robin workloads but systematically adversarial
/// for monitors that register their expressions in correlated pairs
/// (`items_i`, `space_i`). Hashing first decorrelates the assignment
/// from registration order while staying deterministic across runs.
pub fn expr_key(expr: ExprId) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for byte in (expr.index() as u64).to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
    }
    hash
}

/// The partition that owns `expr` under a `shards`-way split:
/// `expr_key(expr) % shards`.
///
/// # Panics
///
/// Panics when `shards` is zero.
pub fn expr_shard(expr: ExprId, shards: usize) -> usize {
    (expr_key(expr) % shards as u64) as usize
}

/// Computes the dependency set of every conjunction of a DNF, aligned
/// with `dnf.conjunctions()` (and therefore with the predicate's tags).
pub fn conj_deps<S>(dnf: &Dnf<S>) -> Vec<ConjDeps> {
    dnf.conjunctions().iter().map(ConjDeps::of).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BoolExpr;
    use crate::dnf::to_dnf;
    use crate::expr::{ExprHandle, ExprTable};

    struct S {
        x: i64,
        y: i64,
    }

    fn setup() -> (ExprTable<S>, ExprHandle<S>, ExprHandle<S>) {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &S| s.x);
        let y = t.register("y", |s: &S| s.y);
        (t, x, y)
    }

    #[test]
    fn cmp_literals_contribute_their_exprs() {
        let (_, x, y) = setup();
        let dnf = to_dnf(&x.ge(1).and(y.eq(2))).unwrap();
        let deps = conj_deps(&dnf);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].exprs(), &[x.id(), y.id()]);
        assert!(!deps[0].is_opaque());
    }

    #[test]
    fn duplicate_exprs_collapse() {
        let (_, x, _) = setup();
        let dnf = to_dnf(&x.ge(1).and(x.le(9))).unwrap();
        let deps = conj_deps(&dnf);
        assert_eq!(deps[0].exprs(), &[x.id()]);
    }

    #[test]
    fn custom_literals_mark_opaque() {
        let (_, x, _) = setup();
        let dnf = to_dnf(&x.ge(1).and(BoolExpr::custom("c", |s: &S| s.y > 0))).unwrap();
        let deps = conj_deps(&dnf);
        assert!(deps[0].is_opaque());
        // The comparison literal is still listed.
        assert_eq!(deps[0].exprs(), &[x.id()]);
    }

    #[test]
    fn per_disjunct_sets_are_independent() {
        let (_, x, y) = setup();
        let dnf = to_dnf(&x.ge(1).or(y.eq(0))).unwrap();
        let deps = conj_deps(&dnf);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].exprs(), &[x.id()]);
        assert_eq!(deps[1].exprs(), &[y.id()]);
    }

    #[test]
    fn intersection_respects_the_bitmap() {
        let (_, x, y) = setup();
        let dnf = to_dnf(&x.ge(1).and(y.eq(2))).unwrap();
        let deps = &conj_deps(&dnf)[0];
        assert!(!deps.intersects(&[false, false]));
        assert!(deps.intersects(&[true, false]));
        assert!(deps.intersects(&[false, true]));
        // A too-short bitmap is conservative.
        assert!(deps.intersects(&[false]));
    }

    #[test]
    fn opaque_intersects_everything() {
        let (_, _, _) = setup();
        let dnf = to_dnf(&BoolExpr::<S>::custom("c", |s| s.x > 0)).unwrap();
        let deps = &conj_deps(&dnf)[0];
        assert!(deps.intersects(&[false, false]));
        assert!(deps.intersects(&[]));
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let (_, x, y) = setup();
        let dnf = to_dnf(&x.ge(1).and(x.le(9)).or(y.eq(0))).unwrap();
        for shards in 1..=8 {
            for deps in &conj_deps(&dnf) {
                let first = deps.route(shards);
                assert_eq!(first, deps.route(shards), "route must be deterministic");
                if let Some(s) = first {
                    assert!(s < shards, "route {s} out of range for {shards} shards");
                }
            }
        }
    }

    #[test]
    fn single_dependency_routes_to_its_expr_shard() {
        let (_, x, _) = setup();
        let dnf = to_dnf(&x.ge(1).and(x.le(9))).unwrap();
        let deps = &conj_deps(&dnf)[0];
        for shards in 1..=8 {
            assert_eq!(deps.route(shards), Some(expr_shard(x.id(), shards)));
        }
    }

    #[test]
    fn cross_shard_and_opaque_conjunctions_route_to_none() {
        let (_, x, y) = setup();
        // With one shard everything co-locates; find a shard count that
        // separates x and y to exercise the spanning case.
        let dnf = to_dnf(&x.ge(1).and(y.eq(2))).unwrap();
        let deps = &conj_deps(&dnf)[0];
        assert_eq!(deps.route(1), Some(0), "one shard owns everything");
        let separating = (2..64).find(|&n| expr_shard(x.id(), n) != expr_shard(y.id(), n));
        let n = separating.expect("some shard count separates two exprs");
        assert_eq!(deps.route(n), None, "spanning conjunctions are global");
        // Opaque and dependency-free conjunctions are always global.
        let opaque = to_dnf(&BoolExpr::custom("c", |s: &S| s.x > 0)).unwrap();
        assert_eq!(conj_deps(&opaque)[0].route(4), None);
    }

    #[test]
    fn expr_keys_are_stable_and_spread() {
        let a = ExprId::from_raw(0);
        assert_eq!(expr_key(a), expr_key(a), "key is a pure function");
        // Adjacent registrations should not all collide in small shard
        // counts (decorrelation sanity check, not a strict guarantee).
        let shards = 4;
        let assigned: std::collections::HashSet<usize> = (0..16u32)
            .map(|i| expr_shard(ExprId::from_raw(i), shards))
            .collect();
        assert!(assigned.len() > 1, "16 exprs all hashed to one shard");
    }

    #[test]
    fn first_changed_picks_the_minimum() {
        let (_, x, y) = setup();
        let dnf = to_dnf(&x.ge(1).and(y.eq(2))).unwrap();
        let deps = &conj_deps(&dnf)[0];
        assert_eq!(deps.first_changed(&[true, true]), Some(x.id()));
        assert_eq!(deps.first_changed(&[false, true]), Some(y.id()));
        assert_eq!(deps.first_changed(&[false, false]), None);
    }
}
