//! Linear integer expressions and the shared/local canonicalization.
//!
//! §4.3 of the paper notes that "many predicates that are not equivalence
//! or threshold predicates can be transformed into them. Consider the
//! predicate `(x − a = y + b)` where `x, y ∈ S` and `a, b ∈ L`. This
//! predicate is equivalent to `(x − y = a + b)`". This module implements
//! that transformation: a [`LinExpr`] is the canonical form
//! `Σ coeffᵢ·varᵢ + constant`, and [`LinExpr::partition`] splits it into
//! the part over shared variables (the future shared expression) and the
//! part over local variables (the future globalized key).
//!
//! The DSL compiler is the main consumer; arithmetic uses checked
//! operations and reports [`LinearOverflow`] instead of wrapping.

use std::collections::BTreeMap;
use std::fmt;

/// Error: a coefficient or constant overflowed `i64` during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearOverflow;

impl fmt::Display for LinearOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("arithmetic overflow while canonicalizing a linear expression")
    }
}

impl std::error::Error for LinearOverflow {}

/// A linear expression `Σ coeffᵢ·varᵢ + constant` over variables `V`.
///
/// Zero coefficients are never stored, so structural equality is semantic
/// equality of linear forms.
///
/// # Examples
///
/// ```
/// use autosynch_predicate::linear::LinExpr;
///
/// // x - a  ==  y + b   canonicalizes to   x - y - a - b == 0
/// let lhs = LinExpr::var("x").sub(&LinExpr::var("a")).unwrap();
/// let rhs = LinExpr::var("y").add(&LinExpr::var("b")).unwrap();
/// let diff = lhs.sub(&rhs).unwrap();
/// // Split by "is shared": x, y shared; a, b local.
/// let (shared, local) = diff.partition(|v| *v == "x" || *v == "y");
/// assert_eq!(shared.to_string(), "x - y");
/// assert_eq!(local.to_string(), "-a - b");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinExpr<V: Ord> {
    terms: BTreeMap<V, i64>,
    constant: i64,
}

impl<V: Ord> Default for LinExpr<V> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<V: Ord> LinExpr<V> {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: 0,
        }
    }

    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The single-variable expression `v`.
    pub fn var(v: V) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        LinExpr { terms, constant: 0 }
    }
}

impl<V: Ord + Clone> LinExpr<V> {
    /// The coefficient of `v` (zero when absent).
    pub fn coeff(&self, v: &V) -> i64 {
        self.terms.get(v).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (&V, i64)> {
        self.terms.iter().map(|(v, c)| (v, *c))
    }

    /// Whether the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of variables with non-zero coefficients.
    pub fn var_count(&self) -> usize {
        self.terms.len()
    }

    /// `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinearOverflow`] when any coefficient or the constant
    /// overflows.
    pub fn add(&self, other: &LinExpr<V>) -> Result<LinExpr<V>, LinearOverflow> {
        let mut result = self.clone();
        for (v, c) in &other.terms {
            let entry = result.terms.entry(v.clone()).or_insert(0);
            *entry = entry.checked_add(*c).ok_or(LinearOverflow)?;
            if *entry == 0 {
                result.terms.remove(v);
            }
        }
        result.constant = result
            .constant
            .checked_add(other.constant)
            .ok_or(LinearOverflow)?;
        Ok(result)
    }

    /// `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinearOverflow`] when any coefficient or the constant
    /// overflows.
    pub fn sub(&self, other: &LinExpr<V>) -> Result<LinExpr<V>, LinearOverflow> {
        self.add(&other.neg()?)
    }

    /// `-self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinearOverflow`] when any coefficient (or constant) is
    /// `i64::MIN`.
    pub fn neg(&self) -> Result<LinExpr<V>, LinearOverflow> {
        self.scale(-1)
    }

    /// `self * k`.
    ///
    /// # Errors
    ///
    /// Returns [`LinearOverflow`] when any product overflows.
    pub fn scale(&self, k: i64) -> Result<LinExpr<V>, LinearOverflow> {
        if k == 0 {
            return Ok(LinExpr::zero());
        }
        let mut terms = BTreeMap::new();
        for (v, c) in &self.terms {
            terms.insert(v.clone(), c.checked_mul(k).ok_or(LinearOverflow)?);
        }
        Ok(LinExpr {
            terms,
            constant: self.constant.checked_mul(k).ok_or(LinearOverflow)?,
        })
    }

    /// Evaluates the expression with `lookup` supplying variable values.
    /// Evaluation wraps on overflow (runtime evaluation must not fail;
    /// the monitor state is the source of truth).
    pub fn eval(&self, mut lookup: impl FnMut(&V) -> i64) -> i64 {
        let mut total = self.constant;
        for (v, c) in &self.terms {
            total = total.wrapping_add(c.wrapping_mul(lookup(v)));
        }
        total
    }

    /// Splits the expression into `(matching, rest)` by a variable
    /// classifier; the constant goes to `rest`. For the paper's
    /// canonicalization, `matching` selects shared variables and `rest`
    /// collects local terms destined for globalization.
    pub fn partition(&self, mut is_matching: impl FnMut(&V) -> bool) -> (LinExpr<V>, LinExpr<V>) {
        let mut matching = LinExpr::zero();
        let mut rest = LinExpr::constant(self.constant);
        for (v, c) in &self.terms {
            if is_matching(v) {
                matching.terms.insert(v.clone(), *c);
            } else {
                rest.terms.insert(v.clone(), *c);
            }
        }
        (matching, rest)
    }
}

impl<V: Ord + fmt::Display> fmt::Display for LinExpr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if *c == 0 {
                continue;
            }
            if first {
                match *c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    c => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else {
                let sign = if *c < 0 { " - " } else { " + " };
                let mag = c.unsigned_abs();
                if mag == 1 {
                    write!(f, "{sign}{v}")?;
                } else {
                    write!(f, "{sign}{mag}*{v}")?;
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            let sign = if self.constant < 0 { " - " } else { " + " };
            write!(f, "{sign}{}", self.constant.unsigned_abs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = LinExpr<&'static str>;

    #[test]
    fn construction_and_accessors() {
        let e = E::var("x").add(&E::constant(3)).unwrap();
        assert_eq!(e.coeff(&"x"), 1);
        assert_eq!(e.coeff(&"y"), 0);
        assert_eq!(e.constant_term(), 3);
        assert!(!e.is_constant());
        assert!(E::constant(5).is_constant());
        assert_eq!(e.var_count(), 1);
    }

    #[test]
    fn cancellation_removes_terms() {
        let e = E::var("x").sub(&E::var("x")).unwrap();
        assert!(e.is_constant());
        assert_eq!(e, E::zero());
    }

    #[test]
    fn paper_rearrangement_example() {
        // x - a = y + b  →  x - y = a + b
        let lhs = E::var("x").sub(&E::var("a")).unwrap();
        let rhs = E::var("y").add(&E::var("b")).unwrap();
        let diff = lhs.sub(&rhs).unwrap(); // x - a - y - b
        let (shared, local) = diff.partition(|v| *v == "x" || *v == "y");
        // shared = x - y; local = -a - b, so SE == -local = a + b.
        assert_eq!(shared.coeff(&"x"), 1);
        assert_eq!(shared.coeff(&"y"), -1);
        assert_eq!(local.coeff(&"a"), -1);
        assert_eq!(local.coeff(&"b"), -1);
        let key = -local.eval(|v| match *v {
            "a" => 11,
            "b" => 2,
            _ => unreachable!(),
        });
        assert_eq!(key, 13);
    }

    #[test]
    fn paper_threshold_example() {
        // x + b > 2y + a with a=11, b=2  →  x - 2y > 9
        let lhs = E::var("x").add(&E::var("b")).unwrap();
        let rhs = E::var("y").scale(2).unwrap().add(&E::var("a")).unwrap();
        let diff = lhs.sub(&rhs).unwrap();
        let (shared, local) = diff.partition(|v| *v == "x" || *v == "y");
        assert_eq!(shared.to_string(), "x - 2*y");
        let key = -local.eval(|v| match *v {
            "a" => 11,
            "b" => 2,
            _ => unreachable!(),
        });
        assert_eq!(key, 9);
    }

    #[test]
    fn scale_and_neg() {
        let e = E::var("x").scale(3).unwrap().add(&E::constant(2)).unwrap();
        let n = e.neg().unwrap();
        assert_eq!(n.coeff(&"x"), -3);
        assert_eq!(n.constant_term(), -2);
        assert_eq!(e.scale(0).unwrap(), E::zero());
    }

    #[test]
    fn eval_matches_structure() {
        let e = E::var("x")
            .scale(2)
            .unwrap()
            .add(&E::var("y").neg().unwrap())
            .unwrap()
            .add(&E::constant(7))
            .unwrap();
        let v = e.eval(|v| match *v {
            "x" => 5,
            "y" => 3,
            _ => 0,
        });
        assert_eq!(v, 2 * 5 - 3 + 7);
    }

    #[test]
    fn overflow_is_reported() {
        let big = E::constant(i64::MAX);
        assert_eq!(big.add(&E::constant(1)), Err(LinearOverflow));
        let big_coeff = E::var("x").scale(i64::MAX).unwrap();
        assert_eq!(big_coeff.scale(2), Err(LinearOverflow));
        assert_eq!(E::constant(i64::MIN).neg(), Err(LinearOverflow));
    }

    #[test]
    fn partition_splits_constant_to_rest() {
        let e = E::var("s")
            .add(&E::var("l"))
            .unwrap()
            .add(&E::constant(4))
            .unwrap();
        let (shared, local) = e.partition(|v| *v == "s");
        assert_eq!(shared.constant_term(), 0);
        assert_eq!(local.constant_term(), 4);
        assert_eq!(local.coeff(&"l"), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(E::zero().to_string(), "0");
        assert_eq!(E::constant(-4).to_string(), "-4");
        assert_eq!(E::var("x").to_string(), "x");
        assert_eq!(E::var("x").neg().unwrap().to_string(), "-x");
        let e = E::var("x")
            .scale(2)
            .unwrap()
            .sub(&E::var("y"))
            .unwrap()
            .add(&E::constant(-3))
            .unwrap();
        assert_eq!(e.to_string(), "2*x - y - 3");
    }

    #[test]
    fn structural_equality_is_semantic() {
        let a = E::var("x").add(&E::var("y")).unwrap();
        let b = E::var("y").add(&E::var("x")).unwrap();
        assert_eq!(a, b);
    }
}
