//! Comparison atoms: `sharedExpr op constant`.
//!
//! After globalization every equivalence/threshold condition has the shape
//! `SE op k` where `SE` is a registered shared expression and `k` the
//! snapshotted value of a local expression (§4.3 of the paper). The atom
//! is the unit the tagging algorithm inspects.

use std::fmt;

use crate::expr::ExprId;

/// A comparison operator between a shared expression and a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `==` — the equivalence operator (Def. 6).
    Eq,
    /// `!=` — not taggable; conjunctions of only `!=` get a `None` tag.
    Ne,
    /// `<` — threshold (Def. 7).
    Lt,
    /// `<=` — threshold (Def. 7).
    Le,
    /// `>` — threshold (Def. 7).
    Gt,
    /// `>=` — threshold (Def. 7).
    Ge,
}

impl CmpOp {
    /// All operators, for exhaustive tests.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Applies the operator: `lhs op rhs`.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The logically negated operator (`!(a < b)` is `a >= b`). Used to
    /// push `Not` through atoms during NNF conversion, so negation never
    /// blocks tagging.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Le => CmpOp::Gt,
        }
    }

    /// The operator with its operands swapped (`a < b` is `b > a`). Used
    /// by the DSL when canonicalization moves the shared expression to the
    /// left-hand side.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Whether this operator forms an equivalence predicate.
    pub fn is_equivalence(self) -> bool {
        self == CmpOp::Eq
    }

    /// Whether this operator forms a threshold predicate
    /// (`op ∈ {<, ≤, >, ≥}`).
    pub fn is_threshold(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }

    /// The source-text symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The atom `expr op key`: a shared expression compared to a globalized
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmpAtom {
    /// The shared expression on the left-hand side.
    pub expr: ExprId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The globalized right-hand-side constant.
    pub key: i64,
}

impl CmpAtom {
    /// Creates the atom `expr op key`.
    pub fn new(expr: ExprId, op: CmpOp, key: i64) -> Self {
        CmpAtom { expr, op, key }
    }

    /// Evaluates the atom given the current value of its expression.
    #[inline]
    pub fn eval_with(self, expr_value: i64) -> bool {
        self.op.eval(expr_value, self.key)
    }

    /// The atom with the negated operator.
    pub fn negated(self) -> CmpAtom {
        CmpAtom {
            op: self.op.negated(),
            ..self
        }
    }

    /// Whether `self` and `other` are complementary (one is exactly the
    /// negation of the other), which makes any conjunction containing both
    /// unsatisfiable.
    pub fn is_complement_of(self, other: CmpAtom) -> bool {
        self.expr == other.expr && self.key == other.key && self.op == other.op.negated()
    }
}

impl fmt::Display for CmpAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.op, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_covers_all_operators() {
        assert!(CmpOp::Eq.eval(3, 3) && !CmpOp::Eq.eval(3, 4));
        assert!(CmpOp::Ne.eval(3, 4) && !CmpOp::Ne.eval(3, 3));
        assert!(CmpOp::Lt.eval(3, 4) && !CmpOp::Lt.eval(4, 4));
        assert!(CmpOp::Le.eval(4, 4) && !CmpOp::Le.eval(5, 4));
        assert!(CmpOp::Gt.eval(5, 4) && !CmpOp::Gt.eval(4, 4));
        assert!(CmpOp::Ge.eval(4, 4) && !CmpOp::Ge.eval(3, 4));
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        for op in CmpOp::ALL {
            assert_eq!(op.negated().negated(), op);
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
            }
        }
    }

    #[test]
    fn flip_swaps_operands() {
        for op in CmpOp::ALL {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.eval(a, b), op.flipped().eval(b, a));
            }
        }
    }

    #[test]
    fn classification() {
        assert!(CmpOp::Eq.is_equivalence());
        assert!(!CmpOp::Eq.is_threshold());
        assert!(!CmpOp::Ne.is_equivalence());
        assert!(!CmpOp::Ne.is_threshold());
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(op.is_threshold());
            assert!(!op.is_equivalence());
        }
    }

    #[test]
    fn atom_eval_and_negate() {
        let a = CmpAtom::new(ExprId::from_raw(0), CmpOp::Ge, 10);
        assert!(a.eval_with(10));
        assert!(!a.eval_with(9));
        let n = a.negated();
        assert_eq!(n.op, CmpOp::Lt);
        assert!(n.eval_with(9));
    }

    #[test]
    fn complement_detection() {
        let e = ExprId::from_raw(1);
        let a = CmpAtom::new(e, CmpOp::Lt, 5);
        let b = CmpAtom::new(e, CmpOp::Ge, 5);
        assert!(a.is_complement_of(b));
        assert!(b.is_complement_of(a));
        let c = CmpAtom::new(e, CmpOp::Ge, 6);
        assert!(!a.is_complement_of(c));
        let other_expr = CmpAtom::new(ExprId::from_raw(2), CmpOp::Ge, 5);
        assert!(!a.is_complement_of(other_expr));
    }

    #[test]
    fn display_forms() {
        let a = CmpAtom::new(ExprId::from_raw(3), CmpOp::Le, -2);
        assert_eq!(a.to_string(), "e3 <= -2");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }
}
