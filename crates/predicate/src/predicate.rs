//! The packaged `waituntil` condition: DNF + tags + structural key.
//!
//! A [`Predicate`] is what the monitor runtime stores and indexes. It is
//! created once per `waituntil` (the preprocessing step of Fig. 6),
//! carries its conjunction tags, and can be evaluated by **any** thread
//! because globalization has already replaced thread-local variables with
//! constants.

use std::fmt;

use crate::ast::BoolExpr;
use crate::deps::{conj_deps, ConjDeps};
use crate::dnf::{to_dnf, to_dnf_with_limit, Dnf, DnfOverflow};
use crate::expr::ExprTable;
use crate::key::{pred_key, PredKey};
use crate::tag::{assign_tags, Tag, ThresholdOp};

/// A fully analyzed waiting condition over monitor state `S`.
///
/// # Examples
///
/// ```
/// use autosynch_predicate::expr::ExprTable;
/// use autosynch_predicate::predicate::Predicate;
///
/// struct S { count: i64 }
/// let mut t = ExprTable::new();
/// let count = t.register("count", |s: &S| s.count);
///
/// let p = Predicate::try_from_expr(count.ge(32).or(count.eq(0))).unwrap();
/// assert_eq!(p.tags().len(), 2);
/// assert!(p.eval(&S { count: 40 }, &t));
/// assert!(p.eval(&S { count: 0 }, &t));
/// assert!(!p.eval(&S { count: 7 }, &t));
/// ```
pub struct Predicate<S> {
    dnf: Dnf<S>,
    tags: Vec<Tag>,
    deps: Vec<ConjDeps>,
    key: Option<PredKey>,
    source: Option<String>,
}

impl<S> Predicate<S> {
    /// Analyzes a boolean AST: DNF conversion, tagging, key computation.
    ///
    /// # Errors
    ///
    /// Returns [`DnfOverflow`] when the condition's DNF exceeds the
    /// default conjunction limit.
    pub fn try_from_expr(expr: BoolExpr<S>) -> Result<Self, DnfOverflow> {
        let source = format!("{expr}");
        let dnf = to_dnf(&expr)?;
        Ok(Self::from_dnf_with_source(dnf, Some(source)))
    }

    /// Like [`Predicate::try_from_expr`] with an explicit conjunction
    /// limit.
    ///
    /// # Errors
    ///
    /// Returns [`DnfOverflow`] when the condition's DNF exceeds `limit`.
    pub fn try_from_expr_with_limit(expr: BoolExpr<S>, limit: usize) -> Result<Self, DnfOverflow> {
        let source = format!("{expr}");
        let dnf = to_dnf_with_limit(&expr, limit)?;
        Ok(Self::from_dnf_with_source(dnf, Some(source)))
    }

    /// Packages an existing DNF (used by the DSL compiler, which builds
    /// DNFs directly).
    pub fn from_dnf(dnf: Dnf<S>) -> Self {
        Self::from_dnf_with_source(dnf, None)
    }

    fn from_dnf_with_source(dnf: Dnf<S>, source: Option<String>) -> Self {
        let tags = assign_tags(&dnf);
        let deps = conj_deps(&dnf);
        let key = pred_key(&dnf);
        Predicate {
            dnf,
            tags,
            deps,
            key,
            source,
        }
    }

    /// Wraps an opaque closure as a single-`None`-tag predicate.
    pub fn custom(name: impl Into<String>, f: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        Self::try_from_expr(BoolExpr::custom(name, f))
            .expect("a single literal cannot overflow the DNF limit")
    }

    /// The always-true predicate.
    pub fn always() -> Self {
        Self::try_from_expr(BoolExpr::always()).expect("constant cannot overflow")
    }

    /// The always-false predicate.
    pub fn never() -> Self {
        Self::try_from_expr(BoolExpr::never()).expect("constant cannot overflow")
    }

    /// The normalized condition.
    pub fn dnf(&self) -> &Dnf<S> {
        &self.dnf
    }

    /// One tag per conjunction, aligned with `self.dnf().conjunctions()`.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// One dependency set per conjunction, aligned with
    /// `self.dnf().conjunctions()` (and therefore with
    /// [`Predicate::tags`]). The change-driven relay uses these to probe
    /// only conjunctions whose inputs changed since the last relay.
    pub fn conj_deps(&self) -> &[ConjDeps] {
        &self.deps
    }

    /// The structural key, or `None` when the predicate contains a keyless
    /// custom closure.
    pub fn key(&self) -> Option<&PredKey> {
        self.key.as_ref()
    }

    /// The equivalence route of this predicate, when its truth is a
    /// function of **one** shared expression compared by an equivalence
    /// tag: `Some((expr, key))` iff the DNF has exactly one conjunction,
    /// that conjunction carries `Tag::Equivalence { expr, key }`, it is
    /// not opaque, and `expr` is its sole dependency.
    ///
    /// Under those conditions the predicate can only be true while
    /// `expr == key`, and it can only *flip* when `expr` changes — so a
    /// wake router may map a freshly published value of `expr` directly
    /// to the one waiting population whose predicate can have become
    /// true (the fig11 `turn == id` shape). Any other structure returns
    /// `None` and must be woken through the dependency route.
    pub fn eq_route(&self) -> Option<(crate::expr::ExprId, i64)> {
        if self.deps.len() != 1 {
            return None;
        }
        let deps = &self.deps[0];
        if deps.is_opaque() {
            return None;
        }
        match self.tags[0] {
            Tag::Equivalence { expr, key } if deps.exprs() == [expr] => Some((expr, key)),
            _ => None,
        }
    }

    /// The threshold route of this predicate, when its truth is a
    /// function of **one** shared expression compared by a threshold
    /// tag: `Some((expr, key, op))` iff the DNF has exactly one
    /// conjunction, that conjunction carries
    /// `Tag::Threshold { expr, key, op }`, it is not opaque, and `expr`
    /// is its sole dependency.
    ///
    /// The ordered cousin of [`Predicate::eq_route`]: under those
    /// conditions the predicate is true exactly while `expr op key`
    /// holds, and it can only flip when `expr` changes — so a wake
    /// router may order all such predicates of one expression by key
    /// strength (a *ladder*) and, given a freshly published value, wake
    /// only the rungs the value actually crosses (the fig14
    /// `count >= num` shape). Any other structure returns `None` and
    /// must be woken through the dependency route.
    pub fn threshold_route(&self) -> Option<(crate::expr::ExprId, i64, ThresholdOp)> {
        if self.deps.len() != 1 {
            return None;
        }
        let deps = &self.deps[0];
        if deps.is_opaque() {
            return None;
        }
        match self.tags[0] {
            Tag::Threshold { expr, key, op } if deps.exprs() == [expr] => Some((expr, key, op)),
            _ => None,
        }
    }

    /// The pre-normalization source text, when built from an AST.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Evaluates the predicate (the whole disjunction).
    pub fn eval(&self, state: &S, exprs: &ExprTable<S>) -> bool {
        self.dnf.eval(state, exprs)
    }

    /// Three-valued evaluation against a published expression snapshot
    /// (`values` indexed by [`crate::expr::ExprId::index`], `None` for
    /// expressions the snapshot does not carry): `Some(true)` /
    /// `Some(false)` when the snapshot decides the predicate, `None`
    /// when it cannot (opaque literals or missing values). Parked-mode
    /// waiters use this for their lock-free self-checks; a `None`
    /// verdict falls back to evaluation under the monitor lock.
    pub fn eval_snapshot(&self, values: &[Option<i64>]) -> Option<bool> {
        self.dnf.eval_snapshot(values)
    }

    /// Evaluates conjunction `index` only. Signaling uses this: a true
    /// conjunction suffices to make the predicate true.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn eval_conjunction(&self, index: usize, state: &S, exprs: &ExprTable<S>) -> bool {
        self.dnf.conjunctions()[index].eval(state, exprs)
    }

    /// Whether the predicate is the constant `true`.
    pub fn is_trivially_true(&self) -> bool {
        self.dnf.is_trivially_true()
    }

    /// Whether the predicate is the constant `false`.
    pub fn is_trivially_false(&self) -> bool {
        self.dnf.is_trivially_false()
    }
}

impl<S> Clone for Predicate<S> {
    fn clone(&self) -> Self {
        Predicate {
            dnf: self.dnf.clone(),
            tags: self.tags.clone(),
            deps: self.deps.clone(),
            key: self.key.clone(),
            source: self.source.clone(),
        }
    }
}

impl<S> fmt::Debug for Predicate<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Predicate")
            .field("dnf", &self.dnf)
            .field("tags", &self.tags)
            .finish()
    }
}

impl<S> fmt::Display for Predicate<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Some(src) => f.write_str(src),
            None => write!(f, "{}", self.dnf),
        }
    }
}

/// Conversion into a [`Predicate`], implemented for ASTs, predicates and
/// plain closures so `wait_transient` accepts all three.
///
/// # Panics
///
/// The [`BoolExpr`] implementation panics on [`DnfOverflow`]; use
/// [`Predicate::try_from_expr`] directly to handle enormous conditions
/// gracefully.
pub trait IntoPredicate<S> {
    /// Performs the conversion.
    fn into_predicate(self) -> Predicate<S>;
}

impl<S> IntoPredicate<S> for Predicate<S> {
    fn into_predicate(self) -> Predicate<S> {
        self
    }
}

impl<S> IntoPredicate<S> for BoolExpr<S> {
    fn into_predicate(self) -> Predicate<S> {
        Predicate::try_from_expr(self).expect("waituntil condition exceeded the DNF limit")
    }
}

impl<S, F> IntoPredicate<S> for F
where
    F: Fn(&S) -> bool + Send + Sync + 'static,
{
    fn into_predicate(self) -> Predicate<S> {
        Predicate::custom("<closure>", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprHandle;
    use crate::tag::ThresholdOp;

    struct S {
        count: i64,
    }

    fn setup() -> (ExprTable<S>, ExprHandle<S>) {
        let mut t = ExprTable::new();
        let count = t.register("count", |s: &S| s.count);
        (t, count)
    }

    #[test]
    fn bounded_buffer_predicates() {
        // The two shared predicates of Fig. 1's classic variant.
        let (t, count) = setup();
        let not_empty = Predicate::try_from_expr(count.gt(0)).unwrap();
        let not_full = Predicate::try_from_expr(count.lt(64)).unwrap();
        assert!(not_empty.eval(&S { count: 1 }, &t));
        assert!(!not_empty.eval(&S { count: 0 }, &t));
        assert!(not_full.eval(&S { count: 63 }, &t));
        assert!(!not_full.eval(&S { count: 64 }, &t));
        assert_eq!(
            not_empty.tags(),
            &[Tag::Threshold {
                expr: count.id(),
                key: 0,
                op: ThresholdOp::Gt
            }]
        );
    }

    #[test]
    fn eval_conjunction_is_per_disjunct() {
        let (t, count) = setup();
        let p = Predicate::try_from_expr(count.eq(0).or(count.ge(10))).unwrap();
        let s = S { count: 12 };
        let per_conj: Vec<bool> = (0..p.dnf().len())
            .map(|i| p.eval_conjunction(i, &s, &t))
            .collect();
        assert_eq!(per_conj, [false, true]);
    }

    #[test]
    fn constants() {
        let (t, _) = setup();
        assert!(Predicate::<S>::always().eval(&S { count: 0 }, &t));
        assert!(Predicate::<S>::always().is_trivially_true());
        assert!(!Predicate::<S>::never().eval(&S { count: 0 }, &t));
        assert!(Predicate::<S>::never().is_trivially_false());
    }

    #[test]
    fn key_matches_for_syntax_equivalent() {
        let (_, count) = setup();
        let a = Predicate::try_from_expr(count.ge(48)).unwrap();
        let b = Predicate::try_from_expr(count.ge(48)).unwrap();
        assert_eq!(a.key(), b.key());
        assert!(a.key().is_some());
    }

    #[test]
    fn eq_route_covers_exactly_the_single_equivalence_shape() {
        let (_, count) = setup();
        // The fig11 shape: one conjunction, one eq literal, one dep.
        let p = Predicate::try_from_expr(count.eq(5)).unwrap();
        assert_eq!(p.eq_route(), Some((count.id(), 5)));
        // Extra literals on the same expression keep the route (truth is
        // still a function of `count` alone, gated by the eq tag).
        let p = Predicate::try_from_expr(count.eq(5).and(count.gt(3))).unwrap();
        assert_eq!(p.eq_route(), Some((count.id(), 5)));
        // Disjunctions, thresholds, second dependencies and opaque
        // literals all lose it.
        assert_eq!(
            Predicate::try_from_expr(count.eq(5).or(count.eq(7)))
                .unwrap()
                .eq_route(),
            None
        );
        assert_eq!(
            Predicate::try_from_expr(count.ge(5)).unwrap().eq_route(),
            None
        );
        let mut t = ExprTable::new();
        let a = t.register("a", |s: &S| s.count);
        let b = t.register("b", |s: &S| -s.count);
        assert_eq!(
            Predicate::try_from_expr(a.eq(5).and(b.ge(0)))
                .unwrap()
                .eq_route(),
            None,
            "a second dependency defeats the route"
        );
        let opaque = a.eq(5).and(crate::ast::BoolExpr::custom("odd", |s: &S| {
            s.count % 2 == 1
        }));
        assert_eq!(
            Predicate::try_from_expr(opaque).unwrap().eq_route(),
            None,
            "opaque literals defeat the route"
        );
        assert_eq!(Predicate::<S>::custom("c", |_| true).eq_route(), None);
    }

    #[test]
    fn custom_predicate_has_no_key_and_none_tag() {
        let p = Predicate::<S>::custom("odd", |s| s.count % 2 == 1);
        assert!(p.key().is_none());
        assert_eq!(p.tags(), &[Tag::None]);
    }

    #[test]
    fn into_predicate_for_closures() {
        let (t, _) = setup();
        fn take<S, P: IntoPredicate<S>>(p: P) -> Predicate<S> {
            p.into_predicate()
        }
        let p = take(|s: &S| s.count > 3);
        assert!(p.eval(&S { count: 4 }, &t));
        assert!(!p.eval(&S { count: 3 }, &t));
    }

    #[test]
    fn into_predicate_for_ast_and_self() {
        let (t, count) = setup();
        fn take<S, P: IntoPredicate<S>>(p: P) -> Predicate<S> {
            p.into_predicate()
        }
        let from_ast = take(count.ge(5));
        assert!(from_ast.eval(&S { count: 5 }, &t));
        let again = take(from_ast.clone());
        assert_eq!(again.key(), from_ast.key());
    }

    #[test]
    fn eval_snapshot_is_three_valued() {
        let (_, count) = setup();
        let p = Predicate::try_from_expr(count.ge(10).or(count.eq(0))).unwrap();
        // Decidable both ways from a full snapshot.
        assert_eq!(p.eval_snapshot(&[Some(12)]), Some(true));
        assert_eq!(p.eval_snapshot(&[Some(0)]), Some(true));
        assert_eq!(p.eval_snapshot(&[Some(5)]), Some(false));
        // A missing value leaves the predicate undecided...
        assert_eq!(p.eval_snapshot(&[None]), None);
        assert_eq!(p.eval_snapshot(&[]), None);
        // ...unless some other conjunction already decides it true.
        let q = Predicate::try_from_expr(count.ge(10)).unwrap();
        assert_eq!(q.eval_snapshot(&[None]), None);
    }

    #[test]
    fn eval_snapshot_escalates_on_opaque_literals() {
        let (_, count) = setup();
        // `count >= 3 && odd(s)`: a decidably-false comparison still
        // short-circuits; otherwise the closure blocks a verdict.
        let p = Predicate::try_from_expr(
            count
                .ge(3)
                .and(BoolExpr::custom("odd", |s: &S| s.count % 2 == 1)),
        )
        .unwrap();
        assert_eq!(p.eval_snapshot(&[Some(1)]), Some(false));
        assert_eq!(p.eval_snapshot(&[Some(7)]), None);
        // Constants stay decidable.
        assert_eq!(Predicate::<S>::always().eval_snapshot(&[]), Some(true));
        assert_eq!(Predicate::<S>::never().eval_snapshot(&[]), Some(false));
    }

    #[test]
    fn display_prefers_source() {
        let (_, count) = setup();
        let p = Predicate::try_from_expr(count.ge(5)).unwrap();
        assert_eq!(p.to_string(), "e0 >= 5");
        let d = Predicate::from_dnf(p.dnf().clone());
        assert!(d.to_string().contains("e0 >= 5"));
    }

    #[test]
    fn overflow_limit_is_propagated() {
        let (_, count) = setup();
        let mut e = count.eq(0).or(count.eq(1));
        let base = e.clone();
        for _ in 0..11 {
            e = e.and(base.clone());
        }
        assert!(Predicate::try_from_expr_with_limit(e, 8).is_err());
    }
}
