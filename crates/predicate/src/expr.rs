//! Shared expressions over the monitor state.
//!
//! A *shared expression* (Def. 5 of the paper) is an integer-valued
//! function of shared variables only. The runtime evaluates shared
//! expressions while holding the monitor lock, so a plain `Fn(&S) -> i64`
//! is the natural representation; an [`ExprTable`] interns them and hands
//! out cheap copyable [`ExprHandle`]s that predicates refer to by
//! [`ExprId`].
//!
//! Booleans are encoded as `0`/`1` so that flag conditions (`done == 1`)
//! participate in equivalence tagging.

use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::ast::BoolExpr;
use crate::atom::{CmpAtom, CmpOp};

/// Identifier of a registered shared expression.
///
/// Ids are indexes into the owning [`ExprTable`]; they are only meaningful
/// together with the table that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// Builds an id from a raw index. Intended for code that constructs
    /// expression tables itself (e.g. the DSL compiler); pairing an id
    /// with a table it did not come from evaluates the wrong expression.
    pub fn from_raw(index: u32) -> Self {
        ExprId(index)
    }

    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The function type stored for each shared expression.
pub type ExprFn<S> = Arc<dyn Fn(&S) -> i64 + Send + Sync>;

struct ExprEntry<S> {
    name: String,
    f: ExprFn<S>,
}

/// Registry of shared expressions for one monitor state type `S`.
///
/// # Examples
///
/// ```
/// use autosynch_predicate::expr::ExprTable;
///
/// struct State { x: i64, y: i64 }
/// let mut t = ExprTable::new();
/// let diff = t.register("x-y", |s: &State| s.x - s.y);
/// assert_eq!(t.eval(diff.id(), &State { x: 7, y: 3 }), 4);
/// assert_eq!(t.name(diff.id()), "x-y");
/// ```
pub struct ExprTable<S> {
    entries: Vec<ExprEntry<S>>,
}

impl<S> fmt::Debug for ExprTable<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExprTable")
            .field(
                "exprs",
                &self
                    .entries
                    .iter()
                    .map(|e| e.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<S> Default for ExprTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> ExprTable<S> {
    /// Creates an empty table.
    pub fn new() -> Self {
        ExprTable {
            entries: Vec::new(),
        }
    }

    /// Registers a shared expression under `name` and returns its handle.
    ///
    /// Names are labels for diagnostics and for [`ExprTable::lookup`]-based
    /// deduplication; registering the same name twice creates two distinct
    /// expressions unless [`ExprTable::register_or_get`] is used.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&S) -> i64 + Send + Sync + 'static,
    ) -> ExprHandle<S> {
        let id = ExprId(u32::try_from(self.entries.len()).expect("more than u32::MAX expressions"));
        self.entries.push(ExprEntry {
            name: name.into(),
            f: Arc::new(f),
        });
        ExprHandle::new(id)
    }

    /// Returns the handle registered under `name`, or registers `f` under
    /// that name. This is how the DSL compiler interns canonicalized
    /// shared expressions.
    pub fn register_or_get(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&S) -> i64 + Send + Sync + 'static,
    ) -> ExprHandle<S> {
        let name = name.into();
        match self.lookup(&name) {
            Some(handle) => handle,
            None => self.register(name, f),
        }
    }

    /// Finds a previously registered expression by name.
    pub fn lookup(&self, name: &str) -> Option<ExprHandle<S>> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| ExprHandle::new(ExprId(i as u32)))
    }

    /// Evaluates expression `id` against `state`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn eval(&self, id: ExprId, state: &S) -> i64 {
        (self.entries[id.index()].f)(state)
    }

    /// The diagnostic name of expression `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: ExprId) -> &str {
        &self.entries[id.index()].name
    }

    /// Number of registered expressions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no expressions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (ExprId(i as u32), e.name.as_str()))
    }
}

/// A copyable handle to a registered shared expression, with comparison
/// builders that produce predicate ASTs.
///
/// The integer arguments of the builders are the *globalized* values of
/// thread-local variables (Def. 2): `count.ge(num)` snapshots `num` at the
/// moment the predicate is built, exactly like the paper's preprocessor
/// snapshots locals immediately before `waituntil`.
pub struct ExprHandle<S> {
    id: ExprId,
    _state: PhantomData<fn(&S) -> i64>,
}

impl<S> ExprHandle<S> {
    /// Wraps an id. See [`ExprId::from_raw`] for the pairing caveat.
    pub fn new(id: ExprId) -> Self {
        ExprHandle {
            id,
            _state: PhantomData,
        }
    }

    /// The underlying id.
    pub fn id(self) -> ExprId {
        self.id
    }

    /// Builds the comparison atom `self op key`.
    pub fn cmp(self, op: CmpOp, key: i64) -> BoolExpr<S> {
        BoolExpr::Cmp(CmpAtom::new(self.id, op, key))
    }

    /// `expr == key` — an equivalence predicate (Def. 6).
    pub fn eq(self, key: i64) -> BoolExpr<S> {
        self.cmp(CmpOp::Eq, key)
    }

    /// `expr != key` — tags as `None` (see Fig. 7's `x ≠ 9` entries).
    pub fn ne(self, key: i64) -> BoolExpr<S> {
        self.cmp(CmpOp::Ne, key)
    }

    /// `expr < key` — a threshold predicate (Def. 7).
    pub fn lt(self, key: i64) -> BoolExpr<S> {
        self.cmp(CmpOp::Lt, key)
    }

    /// `expr <= key` — a threshold predicate (Def. 7).
    pub fn le(self, key: i64) -> BoolExpr<S> {
        self.cmp(CmpOp::Le, key)
    }

    /// `expr > key` — a threshold predicate (Def. 7).
    pub fn gt(self, key: i64) -> BoolExpr<S> {
        self.cmp(CmpOp::Gt, key)
    }

    /// `expr >= key` — a threshold predicate (Def. 7).
    pub fn ge(self, key: i64) -> BoolExpr<S> {
        self.cmp(CmpOp::Ge, key)
    }
}

// Manual impls: `S` need not be Clone/Copy/Debug for handles to be.
impl<S> Clone for ExprHandle<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for ExprHandle<S> {}

impl<S> fmt::Debug for ExprHandle<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ExprHandle").field(&self.id).finish()
    }
}

impl<S> PartialEq for ExprHandle<S> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<S> Eq for ExprHandle<S> {}

#[cfg(test)]
mod tests {
    use super::*;

    struct State {
        x: i64,
        y: i64,
    }

    #[test]
    fn register_and_eval() {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &State| s.x);
        let sum = t.register("x+y", |s: &State| s.x + s.y);
        let s = State { x: 2, y: 40 };
        assert_eq!(t.eval(x.id(), &s), 2);
        assert_eq!(t.eval(sum.id(), &s), 42);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &State| s.x);
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn register_or_get_dedupes() {
        let mut t = ExprTable::new();
        let a = t.register_or_get("x", |s: &State| s.x);
        let b = t.register_or_get("x", |s: &State| s.x + 1);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        // The first closure won.
        assert_eq!(t.eval(a.id(), &State { x: 5, y: 0 }), 5);
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut t = ExprTable::new();
        t.register("a", |s: &State| s.x);
        t.register("b", |s: &State| s.y);
        let names: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn handles_are_copy_and_comparable() {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &State| s.x);
        let x2 = x; // Copy
        assert_eq!(x, x2);
        assert_eq!(format!("{:?}", x), "ExprHandle(ExprId(0))");
    }

    #[test]
    fn expr_id_roundtrip() {
        let id = ExprId::from_raw(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }

    #[test]
    #[should_panic]
    fn eval_with_foreign_id_panics() {
        let t: ExprTable<State> = ExprTable::new();
        t.eval(ExprId::from_raw(0), &State { x: 0, y: 0 });
    }

    #[test]
    fn debug_lists_names() {
        let mut t = ExprTable::new();
        t.register("count", |s: &State| s.x);
        assert!(format!("{t:?}").contains("count"));
    }
}
