//! Predicate representation and analysis for the AutoSynch monitor.
//!
//! This crate is the *analysis half* of the PLDI'13 AutoSynch system: it
//! defines how `waituntil` conditions are represented so that the runtime
//! (crate `autosynch`) can evaluate them in **any** thread and index them
//! with **predicate tags**.
//!
//! The pipeline mirrors §4 of the paper:
//!
//! 1. A condition is built over [`expr::ExprHandle`] handles —
//!    integer-valued expressions over the monitor's shared state — combined
//!    with comparison operators and boolean connectives
//!    ([`ast::BoolExpr`]). Thread-local values appear only as constants:
//!    capturing them at construction time *is* the paper's globalization
//!    (Def. 2), which Rust closures and builder arguments give us for free.
//! 2. The condition is normalized to disjunctive normal form
//!    ([`dnf::Dnf`], via [`dnf::to_dnf`]) exactly as the paper's
//!    preprocessor does with De Morgan's laws and distribution.
//! 3. Every conjunction receives one [`tag::Tag`] by the priority rule of
//!    Fig. 3: `Equivalence` beats `Threshold` beats `None`.
//! 4. The result is packaged as a [`predicate::Predicate`] with an optional
//!    structural [`key::PredKey`] used by the runtime's predicate table to
//!    map syntax-equivalent predicates to one condition variable (§5.2).
//! 5. (v2 API) The analyzed predicate can be *compiled* into a
//!    [`cond::Cond`] handle, interned by key in a [`cond::CondTable`] —
//!    the whole pipeline runs once and every subsequent wait reuses the
//!    shared analysis allocation-free.
//!
//! Escape hatch: conditions that cannot be expressed as comparisons of
//! shared expressions (arbitrary Rust closures) become
//! [`custom::CustomPred`] literals. They evaluate fine everywhere but tag
//! as `None`, i.e. the runtime falls back to exhaustive search for them —
//! the same trade-off as the paper's `None` tag.
//!
//! # Examples
//!
//! ```
//! use autosynch_predicate::expr::ExprTable;
//! use autosynch_predicate::predicate::Predicate;
//! use autosynch_predicate::tag::Tag;
//!
//! struct Buffer { count: i64 }
//!
//! let mut exprs = ExprTable::new();
//! let count = exprs.register("count", |b: &Buffer| b.count);
//!
//! // A consumer that wants to take 48 items waits until `count >= 48`:
//! // the literal 48 is the globalized local variable.
//! let pred = Predicate::try_from_expr(count.ge(48)).unwrap();
//! assert_eq!(pred.tags().len(), 1);
//! assert!(matches!(pred.tags()[0], Tag::Threshold { key: 48, .. }));
//!
//! let state = Buffer { count: 64 };
//! assert!(pred.eval(&state, &exprs));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod atom;
pub mod cond;
pub mod custom;
pub mod deps;
pub mod dnf;
pub mod expr;
pub mod key;
pub mod linear;
pub mod predicate;
pub mod tag;

pub use ast::BoolExpr;
pub use atom::{CmpAtom, CmpOp};
pub use cond::{Cond, CondTable};
pub use custom::CustomPred;
pub use deps::ConjDeps;
pub use dnf::{Conjunction, Dnf, DnfOverflow, Literal};
pub use expr::{ExprHandle, ExprId, ExprTable};
pub use key::PredKey;
pub use predicate::{IntoPredicate, Predicate};
pub use tag::{Tag, ThresholdOp};
