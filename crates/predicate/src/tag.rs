//! Predicate tags and the tagging algorithm of Fig. 3.
//!
//! A tag is the paper's four-tuple `(M, expr, key, op)` (Def. 8) collapsed
//! into a Rust enum: the `expr`/`key`/`op` components only exist for the
//! variants that use them. Exactly **one** tag is assigned per conjunction
//! — the paper explicitly rejects multi-tagging ("assigning multiple tags
//! to a conjunction cannot accelerate the searching process") — with
//! priority Equivalence > Threshold > None, because an equivalence tag
//! prunes a larger part of the search space.

use std::fmt;

use crate::atom::CmpOp;
use crate::dnf::{Conjunction, Dnf, Literal};
use crate::expr::ExprId;

/// A threshold comparison direction.
///
/// `Gt`/`Ge` tags live in a min-heap (the weakest condition has the
/// smallest key) and `Lt`/`Le` tags in a max-heap (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThresholdOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ThresholdOp {
    /// Converts from a comparison operator; `Eq`/`Ne` are not thresholds.
    pub fn from_cmp(op: CmpOp) -> Option<ThresholdOp> {
        match op {
            CmpOp::Lt => Some(ThresholdOp::Lt),
            CmpOp::Le => Some(ThresholdOp::Le),
            CmpOp::Gt => Some(ThresholdOp::Gt),
            CmpOp::Ge => Some(ThresholdOp::Ge),
            CmpOp::Eq | CmpOp::Ne => None,
        }
    }

    /// The comparison operator this threshold op corresponds to.
    pub fn to_cmp(self) -> CmpOp {
        match self {
            ThresholdOp::Lt => CmpOp::Lt,
            ThresholdOp::Le => CmpOp::Le,
            ThresholdOp::Gt => CmpOp::Gt,
            ThresholdOp::Ge => CmpOp::Ge,
        }
    }

    /// Applies the operator: `lhs op rhs`.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        self.to_cmp().eval(lhs, rhs)
    }

    /// Whether this op belongs on the min-heap side (`>`, `>=`); `<`,`<=`
    /// belong on the max-heap side.
    pub fn is_min_side(self) -> bool {
        matches!(self, ThresholdOp::Gt | ThresholdOp::Ge)
    }

    /// Whether the operator includes equality (`<=`, `>=`). At equal keys
    /// the inclusive operator is the *weaker* condition and must sort
    /// closer to the heap root (§4.3.2: "the predicate with ≥ is
    /// considered to have a smaller value than the predicate with >").
    pub fn is_inclusive(self) -> bool {
        matches!(self, ThresholdOp::Le | ThresholdOp::Ge)
    }

    /// The source-text symbol.
    pub fn symbol(self) -> &'static str {
        self.to_cmp().symbol()
    }
}

impl fmt::Display for ThresholdOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The tag assigned to one conjunction (Def. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// The conjunction contains `expr == key`: true only when the shared
    /// expression currently equals `key`, so an O(1) hash probe finds it.
    Equivalence {
        /// The tagged shared expression.
        expr: ExprId,
        /// The globalized comparison constant.
        key: i64,
    },
    /// The conjunction contains `expr op key` for a threshold operator.
    Threshold {
        /// The tagged shared expression.
        expr: ExprId,
        /// The globalized comparison constant.
        key: i64,
        /// The comparison direction.
        op: ThresholdOp,
    },
    /// Nothing taggable: the runtime examines such conjunctions
    /// exhaustively.
    None,
}

impl Tag {
    /// Whether the tag's own condition holds given the current value of
    /// its shared expression. A conjunction can only be true when its tag
    /// is true (the tag is one of its conjuncts); [`Tag::None`] is always
    /// "true" in this sense.
    pub fn is_true_for(self, expr_value: i64) -> bool {
        match self {
            Tag::Equivalence { key, .. } => expr_value == key,
            Tag::Threshold { key, op, .. } => op.eval(expr_value, key),
            Tag::None => true,
        }
    }

    /// The tagged expression, when the tag has one.
    pub fn expr(self) -> Option<ExprId> {
        match self {
            Tag::Equivalence { expr, .. } | Tag::Threshold { expr, .. } => Some(expr),
            Tag::None => None,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::Equivalence { expr, key } => write!(f, "(Equivalence, {expr}, {key})"),
            Tag::Threshold { expr, key, op } => write!(f, "(Threshold, {expr}, {key}, {op})"),
            Tag::None => f.write_str("(None)"),
        }
    }
}

/// Assigns the single tag of a conjunction — the algorithm of Fig. 3.
///
/// The first equivalence literal wins; otherwise the first threshold
/// literal; otherwise `None`. "First" follows literal order, matching the
/// paper's arbitrary pick among equally ranked candidates.
pub fn assign_tag<S>(conjunction: &Conjunction<S>) -> Tag {
    let mut threshold: Option<Tag> = None;
    for literal in conjunction.literals() {
        let Some(atom) = literal.as_cmp() else {
            continue;
        };
        if atom.op.is_equivalence() {
            return Tag::Equivalence {
                expr: atom.expr,
                key: atom.key,
            };
        }
        if threshold.is_none() {
            if let Some(op) = ThresholdOp::from_cmp(atom.op) {
                threshold = Some(Tag::Threshold {
                    expr: atom.expr,
                    key: atom.key,
                    op,
                });
            }
        }
    }
    threshold.unwrap_or(Tag::None)
}

/// Tags every conjunction of a DNF, in order.
pub fn assign_tags<S>(dnf: &Dnf<S>) -> Vec<Tag> {
    dnf.conjunctions().iter().map(assign_tag).collect()
}

/// Checks the tagging soundness invariant for one conjunction: if the
/// conjunction evaluates true, its tag must be true. Used by property
/// tests; returns `true` when the invariant holds for this state.
pub fn tag_sound_for_state<S>(
    conjunction: &Conjunction<S>,
    state: &S,
    exprs: &crate::expr::ExprTable<S>,
) -> bool {
    if !conjunction.eval(state, exprs) {
        return true; // invariant only constrains true conjunctions
    }
    match assign_tag(conjunction) {
        Tag::None => true,
        tag => {
            let expr = tag.expr().expect("tagged conjunctions have an expr");
            tag.is_true_for(exprs.eval(expr, state))
        }
    }
}

// Re-exported for literal-order tests.
#[allow(unused_imports)]
use Literal as _LiteralForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BoolExpr;
    use crate::dnf::to_dnf;
    use crate::expr::{ExprHandle, ExprTable};

    struct S {
        x: i64,
        y: i64,
    }

    fn setup() -> (ExprTable<S>, ExprHandle<S>, ExprHandle<S>) {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &S| s.x);
        let y = t.register("y", |s: &S| s.y);
        (t, x, y)
    }

    fn single_tag(e: &BoolExpr<S>) -> Tag {
        let dnf = to_dnf(e).unwrap();
        assert_eq!(dnf.len(), 1, "expected a single conjunction for {e}");
        assign_tag(&dnf.conjunctions()[0])
    }

    #[test]
    fn equivalence_beats_threshold() {
        let (_, x, y) = setup();
        // (x >= 5) && (y == 9): equivalence has priority (Fig. 3).
        let tag = single_tag(&x.ge(5).and(y.eq(9)));
        assert_eq!(
            tag,
            Tag::Equivalence {
                expr: y.id(),
                key: 9
            }
        );
    }

    #[test]
    fn threshold_when_no_equivalence() {
        let (_, x, y) = setup();
        let tag = single_tag(&x.ge(5).and(y.ne(1)));
        assert_eq!(
            tag,
            Tag::Threshold {
                expr: x.id(),
                key: 5,
                op: ThresholdOp::Ge
            }
        );
    }

    #[test]
    fn none_for_untaggable() {
        let (_, x, _) = setup();
        assert_eq!(single_tag(&x.ne(9)), Tag::None);
        assert_eq!(
            single_tag(&BoolExpr::custom("c", |s: &S| s.x + s.y == 0)),
            Tag::None
        );
    }

    #[test]
    fn paper_globalization_example() {
        // "x + b > 2y + a with a=11, b=2 → (Threshold, x−2y, 9, >)".
        // The caller canonicalizes to expr = x − 2y and key = 9.
        let mut t = ExprTable::new();
        let e = t.register("x-2y", |s: &S| s.x - 2 * s.y);
        let tag = single_tag(&e.gt(9));
        assert_eq!(
            tag,
            Tag::Threshold {
                expr: e.id(),
                key: 9,
                op: ThresholdOp::Gt
            }
        );
    }

    #[test]
    fn one_tag_per_conjunction() {
        let (_, x, y) = setup();
        // (x==8 && y==9): only one equivalence tag is produced even though
        // two candidates exist (§4.3.1).
        let dnf = to_dnf(&x.eq(8).and(y.eq(9))).unwrap();
        let tags = assign_tags(&dnf);
        assert_eq!(tags.len(), 1);
    }

    #[test]
    fn tags_align_with_conjunctions() {
        let (_, x, y) = setup();
        let dnf = to_dnf(&x.ge(8).or(y.eq(3)).or(x.ne(0))).unwrap();
        let tags = assign_tags(&dnf);
        assert_eq!(tags.len(), dnf.len());
        assert!(matches!(tags[0], Tag::Threshold { .. }));
        assert!(matches!(tags[1], Tag::Equivalence { .. }));
        assert_eq!(tags[2], Tag::None);
    }

    #[test]
    fn tag_truth_matches_semantics() {
        let eq = Tag::Equivalence {
            expr: ExprId::from_raw(0),
            key: 8,
        };
        assert!(eq.is_true_for(8));
        assert!(!eq.is_true_for(7));
        let th = Tag::Threshold {
            expr: ExprId::from_raw(0),
            key: 5,
            op: ThresholdOp::Ge,
        };
        assert!(th.is_true_for(5));
        assert!(!th.is_true_for(4));
        assert!(Tag::None.is_true_for(i64::MIN));
    }

    #[test]
    fn threshold_sides() {
        assert!(ThresholdOp::Gt.is_min_side());
        assert!(ThresholdOp::Ge.is_min_side());
        assert!(!ThresholdOp::Lt.is_min_side());
        assert!(!ThresholdOp::Le.is_min_side());
        assert!(ThresholdOp::Ge.is_inclusive());
        assert!(ThresholdOp::Le.is_inclusive());
        assert!(!ThresholdOp::Gt.is_inclusive());
        assert!(!ThresholdOp::Lt.is_inclusive());
    }

    #[test]
    fn threshold_op_roundtrip() {
        for op in [
            ThresholdOp::Lt,
            ThresholdOp::Le,
            ThresholdOp::Gt,
            ThresholdOp::Ge,
        ] {
            assert_eq!(ThresholdOp::from_cmp(op.to_cmp()), Some(op));
        }
        assert_eq!(ThresholdOp::from_cmp(CmpOp::Eq), None);
        assert_eq!(ThresholdOp::from_cmp(CmpOp::Ne), None);
    }

    #[test]
    fn soundness_invariant_exhaustive_small_domain() {
        let (t, x, y) = setup();
        let exprs = [
            x.eq(1).and(y.ge(0)),
            x.ge(2).and(y.ne(1)),
            x.ne(0).and(y.ne(2)),
            x.le(1).or(y.eq(2)).and(x.gt(-2)),
        ];
        for e in &exprs {
            let dnf = to_dnf(e).unwrap();
            for xv in -2..=2 {
                for yv in -2..=2 {
                    let s = S { x: xv, y: yv };
                    for c in dnf.conjunctions() {
                        assert!(
                            tag_sound_for_state(c, &s, &t),
                            "unsound for {e} at ({xv},{yv})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn display_formats() {
        let tag = Tag::Threshold {
            expr: ExprId::from_raw(0),
            key: 9,
            op: ThresholdOp::Gt,
        };
        assert_eq!(tag.to_string(), "(Threshold, e0, 9, >)");
        let eq = Tag::Equivalence {
            expr: ExprId::from_raw(1),
            key: 3,
        };
        assert_eq!(eq.to_string(), "(Equivalence, e1, 3)");
        assert_eq!(Tag::None.to_string(), "(None)");
    }
}
