//! The boolean AST that `waituntil` conditions are written in.
//!
//! This is the surface form before normalization: arbitrary `&&`/`||`/`!`
//! nesting over comparison atoms and custom closures. The paper's
//! preprocessor accepts the same shape in Java syntax and converts it "into
//! DNF using De Morgan's laws and distributive law" (§4.1); see
//! [`crate::dnf::to_dnf`].

use std::fmt;

use crate::atom::CmpAtom;
use crate::custom::CustomPred;
use crate::expr::ExprTable;

/// A boolean condition over monitor state `S`.
///
/// Build leaves with [`crate::expr::ExprHandle`] comparison methods or
/// [`BoolExpr::custom`], and combine with [`BoolExpr::and`],
/// [`BoolExpr::or`] and [`BoolExpr::not`].
///
/// # Examples
///
/// ```
/// use autosynch_predicate::expr::ExprTable;
///
/// struct S { x: i64, done: bool }
/// let mut t = ExprTable::new();
/// let x = t.register("x", |s: &S| s.x);
/// let done = t.register("done", |s: &S| s.done as i64);
///
/// let cond = x.ge(10).or(done.eq(1));
/// assert!(cond.eval(&S { x: 3, done: true }, &t));
/// assert!(!cond.eval(&S { x: 3, done: false }, &t));
/// ```
pub enum BoolExpr<S> {
    /// A constant condition.
    Const(bool),
    /// A comparison of a shared expression against a globalized constant.
    Cmp(CmpAtom),
    /// An opaque closure condition (tags as `None`).
    Custom(CustomPred<S>),
    /// Logical negation.
    Not(Box<BoolExpr<S>>),
    /// Conjunction of all children (true when empty).
    And(Vec<BoolExpr<S>>),
    /// Disjunction of all children (false when empty).
    Or(Vec<BoolExpr<S>>),
}

impl<S> BoolExpr<S> {
    /// The always-true condition.
    pub fn always() -> Self {
        BoolExpr::Const(true)
    }

    /// The always-false condition.
    pub fn never() -> Self {
        BoolExpr::Const(false)
    }

    /// Wraps an opaque closure with a diagnostic name.
    pub fn custom(name: impl Into<String>, f: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        BoolExpr::Custom(CustomPred::new(name, f))
    }

    /// `self && other`. Flattens nested conjunctions so the DNF pass sees
    /// wide nodes instead of deep ones.
    pub fn and(self, other: BoolExpr<S>) -> Self {
        match (self, other) {
            (BoolExpr::And(mut a), BoolExpr::And(b)) => {
                a.extend(b);
                BoolExpr::And(a)
            }
            (BoolExpr::And(mut a), rhs) => {
                a.push(rhs);
                BoolExpr::And(a)
            }
            (lhs, BoolExpr::And(mut b)) => {
                b.insert(0, lhs);
                BoolExpr::And(b)
            }
            (lhs, rhs) => BoolExpr::And(vec![lhs, rhs]),
        }
    }

    /// `self || other`, flattening nested disjunctions.
    pub fn or(self, other: BoolExpr<S>) -> Self {
        match (self, other) {
            (BoolExpr::Or(mut a), BoolExpr::Or(b)) => {
                a.extend(b);
                BoolExpr::Or(a)
            }
            (BoolExpr::Or(mut a), rhs) => {
                a.push(rhs);
                BoolExpr::Or(a)
            }
            (lhs, BoolExpr::Or(mut b)) => {
                b.insert(0, lhs);
                BoolExpr::Or(b)
            }
            (lhs, rhs) => BoolExpr::Or(vec![lhs, rhs]),
        }
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)] // `Not` on a by-value DSL type reads fine
    pub fn not(self) -> Self {
        BoolExpr::Not(Box::new(self))
    }

    /// Direct AST evaluation, used as the semantic reference for the DNF
    /// equivalence tests and by the runtime before a predicate is built.
    pub fn eval(&self, state: &S, exprs: &ExprTable<S>) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Cmp(atom) => atom.eval_with(exprs.eval(atom.expr, state)),
            BoolExpr::Custom(c) => c.eval(state),
            BoolExpr::Not(inner) => !inner.eval(state, exprs),
            BoolExpr::And(children) => children.iter().all(|c| c.eval(state, exprs)),
            BoolExpr::Or(children) => children.iter().any(|c| c.eval(state, exprs)),
        }
    }

    /// Number of leaves (atoms, customs, constants) — a size measure used
    /// by tests and diagnostics.
    pub fn leaf_count(&self) -> usize {
        match self {
            BoolExpr::Const(_) | BoolExpr::Cmp(_) | BoolExpr::Custom(_) => 1,
            BoolExpr::Not(inner) => inner.leaf_count(),
            BoolExpr::And(children) | BoolExpr::Or(children) => {
                children.iter().map(BoolExpr::leaf_count).sum()
            }
        }
    }
}

impl<S> Clone for BoolExpr<S> {
    fn clone(&self) -> Self {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(*b),
            BoolExpr::Cmp(a) => BoolExpr::Cmp(*a),
            BoolExpr::Custom(c) => BoolExpr::Custom(c.clone()),
            BoolExpr::Not(inner) => BoolExpr::Not(inner.clone()),
            BoolExpr::And(children) => BoolExpr::And(children.clone()),
            BoolExpr::Or(children) => BoolExpr::Or(children.clone()),
        }
    }
}

impl<S> fmt::Debug for BoolExpr<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<S> fmt::Display for BoolExpr<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Cmp(a) => write!(f, "{a}"),
            BoolExpr::Custom(c) => write!(f, "{c}"),
            BoolExpr::Not(inner) => write!(f, "!({inner})"),
            BoolExpr::And(children) => write_joined(f, children, " && "),
            BoolExpr::Or(children) => write_joined(f, children, " || "),
        }
    }
}

fn write_joined<S>(f: &mut fmt::Formatter<'_>, children: &[BoolExpr<S>], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, child) in children.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{child}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct S {
        x: i64,
        y: i64,
    }

    fn table() -> (
        ExprTable<S>,
        crate::expr::ExprHandle<S>,
        crate::expr::ExprHandle<S>,
    ) {
        let mut t = ExprTable::new();
        let x = t.register("x", |s: &S| s.x);
        let y = t.register("y", |s: &S| s.y);
        (t, x, y)
    }

    #[test]
    fn eval_of_connectives() {
        let (t, x, y) = table();
        let e = x.ge(5).and(y.lt(3)).or(x.eq(0));
        assert!(e.eval(&S { x: 6, y: 2 }, &t));
        assert!(e.eval(&S { x: 0, y: 99 }, &t));
        assert!(!e.eval(&S { x: 6, y: 5 }, &t));
    }

    #[test]
    fn not_negates() {
        let (t, x, _) = table();
        let e = x.gt(0).not();
        assert!(e.eval(&S { x: 0, y: 0 }, &t));
        assert!(!e.eval(&S { x: 1, y: 0 }, &t));
    }

    #[test]
    fn empty_connectives_have_identity_semantics() {
        let (t, _, _) = table();
        assert!(BoolExpr::<S>::And(vec![]).eval(&S { x: 0, y: 0 }, &t));
        assert!(!BoolExpr::<S>::Or(vec![]).eval(&S { x: 0, y: 0 }, &t));
    }

    #[test]
    fn and_or_flatten() {
        let (_, x, y) = table();
        let e = x.eq(1).and(y.eq(2)).and(x.eq(3));
        match &e {
            BoolExpr::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flat And, got {other}"),
        }
        let o = x.eq(1).or(y.eq(2)).or(x.eq(3));
        match &o {
            BoolExpr::Or(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flat Or, got {other}"),
        }
    }

    #[test]
    fn custom_evaluates_closure() {
        let (t, _, _) = table();
        let e = BoolExpr::custom("x-odd", |s: &S| s.x % 2 == 1);
        assert!(e.eval(&S { x: 3, y: 0 }, &t));
        assert!(!e.eval(&S { x: 4, y: 0 }, &t));
    }

    #[test]
    fn leaf_count_counts_leaves() {
        let (_, x, y) = table();
        let e = x.eq(1).and(y.eq(2)).or(x.gt(0).not());
        assert_eq!(e.leaf_count(), 3);
    }

    #[test]
    fn display_is_parenthesized() {
        let (_, x, y) = table();
        let e = x.eq(1).and(y.ne(2));
        assert_eq!(e.to_string(), "(e0 == 1 && e1 != 2)");
    }

    #[test]
    fn clone_is_deep_for_structure() {
        let (t, x, _) = table();
        let e = x.ge(5).or(BoolExpr::custom("c", |s: &S| s.y == 0));
        let c = e.clone();
        assert_eq!(e.eval(&S { x: 9, y: 1 }, &t), c.eval(&S { x: 9, y: 1 }, &t));
    }
}
