//! Compiled conditions: analyze once, wait many.
//!
//! The paper's pitch is that `waituntil(pred)` can match hand-written
//! signaling because the runtime pre-analyzes predicates (globalization
//! §4.1, tagging §4.3). A [`Cond`] is that pre-analysis *reified*: the
//! DNF conversion, tag assignment, dependency extraction and key
//! computation run exactly once, at compile time, and every subsequent
//! wait reuses the shared [`Predicate`] by `Arc` — no per-wait
//! allocation, normalization or hashing.
//!
//! A [`CondTable`] interns compiled conditions by their structural
//! [`PredKey`], so syntax-equivalent conditions compiled at different
//! call sites share one slot (and, in the monitor runtime, one
//! predicate-table entry and condition variable). Keyless conditions —
//! those containing an un-keyed custom closure — cannot be canonicalized
//! and always receive a fresh slot.
//!
//! Soundness of the interning: two conditions share a slot **only** when
//! their [`PredKey`]s are equal, and a `PredKey` is the canonical
//! (sorted, globalized) form of the whole DNF — equal keys mean
//! syntax-equivalent predicates, which the paper already treats as one
//! waiting condition (§5.2). Interning therefore can never alias two
//! semantically distinct predicates.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::key::PredKey;
use crate::predicate::Predicate;

/// A compiled waiting condition over monitor state `S`.
///
/// Produced by the monitor runtime's `compile` (which interns it into
/// the monitor's [`CondTable`]); cheap to clone (two machine words plus
/// an `Arc` bump) and reusable from any thread. The `slot` indexes the
/// owning table; the `owner` token identifies the monitor that compiled
/// it, so waits can reject conditions compiled by a different monitor.
///
/// # Examples
///
/// ```
/// use autosynch_predicate::cond::CondTable;
/// use autosynch_predicate::expr::ExprTable;
/// use autosynch_predicate::predicate::Predicate;
///
/// struct S { count: i64 }
/// let mut exprs = ExprTable::new();
/// let count = exprs.register("count", |s: &S| s.count);
///
/// let mut table = CondTable::new();
/// let (slot_a, _) = table.intern(Predicate::try_from_expr(count.ge(3)).unwrap());
/// let (slot_b, _) = table.intern(Predicate::try_from_expr(count.ge(3)).unwrap());
/// assert_eq!(slot_a, slot_b, "syntax-equivalent conditions share a slot");
/// ```
pub struct Cond<S> {
    pred: Arc<Predicate<S>>,
    slot: u32,
    owner: u64,
}

impl<S> Cond<S> {
    /// Packages a compiled predicate. Intended for the monitor runtime;
    /// `slot` must come from the owning [`CondTable`] and `owner` from
    /// the compiling monitor, or waits on the handle will be rejected.
    pub fn new(pred: Arc<Predicate<S>>, slot: u32, owner: u64) -> Self {
        Cond { pred, slot, owner }
    }

    /// The compiled predicate (DNF + tags + deps + key, all shared).
    pub fn predicate(&self) -> &Predicate<S> {
        &self.pred
    }

    /// The shared predicate, by reference-counted handle.
    pub fn predicate_arc(&self) -> &Arc<Predicate<S>> {
        &self.pred
    }

    /// The slot in the owning [`CondTable`].
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The compiling monitor's identity token.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// The slot's equivalence route, when the compiled condition's truth
    /// is a function of one eq-tagged shared expression (see
    /// [`Predicate::eq_route`]): the wake-routing metadata a routed
    /// monitor uses to map a published value straight to this slot's
    /// waiting population.
    pub fn eq_route(&self) -> Option<(crate::expr::ExprId, i64)> {
        self.pred.eq_route()
    }
}

impl<S> Clone for Cond<S> {
    fn clone(&self) -> Self {
        Cond {
            pred: Arc::clone(&self.pred),
            slot: self.slot,
            owner: self.owner,
        }
    }
}

impl<S> fmt::Debug for Cond<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cond")
            .field("slot", &self.slot)
            .field("pred", &self.pred)
            .finish()
    }
}

impl<S> fmt::Display for Cond<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)
    }
}

/// An interning table of compiled conditions, keyed by structural
/// [`PredKey`].
///
/// Slots are dense `u32` indexes handed out in interning order; a slot,
/// once issued, is never invalidated (compiled conditions are pinned for
/// the table's lifetime — that is what makes the wait path allocation-
/// and lookup-free).
pub struct CondTable<S> {
    by_key: HashMap<PredKey, u32>,
    preds: Vec<Arc<Predicate<S>>>,
}

impl<S> Default for CondTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> fmt::Debug for CondTable<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CondTable")
            .field("conds", &self.preds.len())
            .field("keyed", &self.by_key.len())
            .finish()
    }
}

impl<S> CondTable<S> {
    /// Creates an empty table.
    pub fn new() -> Self {
        CondTable {
            by_key: HashMap::new(),
            preds: Vec::new(),
        }
    }

    /// Interns an analyzed predicate: returns the existing slot for a
    /// syntax-equivalent (equal-[`PredKey`]) condition, or allocates a
    /// fresh one. Keyless predicates always allocate.
    ///
    /// Returns the slot and the shared predicate stored there — on a
    /// hit, that is the *first* compiled instance, so repeated compiles
    /// of the same condition share one allocation.
    pub fn intern(&mut self, pred: Predicate<S>) -> (u32, Arc<Predicate<S>>) {
        if let Some(key) = pred.key() {
            if let Some(&slot) = self.by_key.get(key) {
                return (slot, Arc::clone(&self.preds[slot as usize]));
            }
        }
        let slot = u32::try_from(self.preds.len()).expect("more than u32::MAX compiled conditions");
        if let Some(key) = pred.key().cloned() {
            self.by_key.insert(key, slot);
        }
        let arc = Arc::new(pred);
        self.preds.push(Arc::clone(&arc));
        (slot, arc)
    }

    /// The predicate interned at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not issued by this table.
    pub fn get(&self, slot: u32) -> &Arc<Predicate<S>> {
        &self.preds[slot as usize]
    }

    /// The slot a key-equal condition is interned at, if any.
    pub fn lookup(&self, key: &PredKey) -> Option<u32> {
        self.by_key.get(key).copied()
    }

    /// Number of interned conditions.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether no conditions are interned.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprTable;

    struct S {
        count: i64,
    }

    fn count() -> crate::expr::ExprHandle<S> {
        let mut t = ExprTable::new();
        t.register("count", |s: &S| s.count)
    }

    #[test]
    fn interning_dedupes_by_key() {
        let count = count();
        let mut table = CondTable::new();
        let (a, pa) = table.intern(Predicate::try_from_expr(count.ge(5)).unwrap());
        let (b, pb) = table.intern(Predicate::try_from_expr(count.ge(5)).unwrap());
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&pa, &pb), "hits share the first compile");
        assert_eq!(table.len(), 1);
        // A different key gets a different slot.
        let (c, _) = table.intern(Predicate::try_from_expr(count.ge(6)).unwrap());
        assert_ne!(a, c);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn keyless_conditions_always_allocate() {
        let mut table = CondTable::new();
        let (a, _) = table.intern(Predicate::<S>::custom("odd", |s| s.count % 2 == 1));
        let (b, _) = table.intern(Predicate::<S>::custom("odd", |s| s.count % 2 == 1));
        assert_ne!(a, b, "closures cannot be canonicalized");
    }

    #[test]
    fn interning_preserves_the_analysis_byte_for_byte() {
        let count = count();
        let expr = count.ge(10).or(count.eq(0));
        let direct = Predicate::try_from_expr(expr.clone()).unwrap();
        let mut table = CondTable::new();
        let (_, first) = table.intern(Predicate::try_from_expr(expr.clone()).unwrap());
        let (_, interned) = table.intern(Predicate::try_from_expr(expr).unwrap());
        assert!(Arc::ptr_eq(&first, &interned));
        assert_eq!(interned.tags(), direct.tags());
        assert_eq!(interned.conj_deps(), direct.conj_deps());
        assert_eq!(interned.key(), direct.key());
    }

    #[test]
    fn lookup_and_get_roundtrip() {
        let count = count();
        let pred = Predicate::try_from_expr(count.lt(3)).unwrap();
        let key = pred.key().cloned().unwrap();
        let mut table = CondTable::new();
        assert!(table.is_empty());
        assert_eq!(table.lookup(&key), None);
        let (slot, arc) = table.intern(pred);
        assert_eq!(table.lookup(&key), Some(slot));
        assert!(Arc::ptr_eq(table.get(slot), &arc));
    }

    #[test]
    fn cond_eq_route_mirrors_the_predicate() {
        let count = count();
        let mut table = CondTable::new();
        let (slot, arc) = table.intern(Predicate::try_from_expr(count.eq(9)).unwrap());
        let cond = Cond::new(arc, slot, 1);
        assert_eq!(cond.eq_route(), Some((count.id(), 9)));
        let (slot, arc) = table.intern(Predicate::try_from_expr(count.ge(9)).unwrap());
        assert_eq!(Cond::new(arc, slot, 1).eq_route(), None);
    }

    #[test]
    fn cond_handle_accessors() {
        let count = count();
        let mut table = CondTable::new();
        let (slot, arc) = table.intern(Predicate::try_from_expr(count.ge(1)).unwrap());
        let cond = Cond::new(arc, slot, 7);
        assert_eq!(cond.slot(), slot);
        assert_eq!(cond.owner(), 7);
        assert_eq!(cond.clone().to_string(), "e0 >= 1");
        assert!(format!("{cond:?}").contains("Cond"));
        assert!(cond.predicate().key().is_some());
        assert!(Arc::ptr_eq(cond.predicate_arc(), table.get(slot)));
    }
}
