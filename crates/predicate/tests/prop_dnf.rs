//! Property tests for the predicate analysis pipeline.
//!
//! The central invariants:
//!  1. DNF conversion preserves semantics for arbitrary boolean ASTs.
//!  2. Tagging is sound: a true conjunction always has a true tag
//!     (otherwise the runtime's tag-pruned search could miss a signalable
//!     thread and break relay invariance).
//!  3. Structural keys identify syntax-equivalent predicates.

use autosynch_predicate::ast::BoolExpr;
use autosynch_predicate::atom::{CmpAtom, CmpOp};
use autosynch_predicate::dnf::to_dnf_with_limit;
use autosynch_predicate::expr::{ExprId, ExprTable};
use autosynch_predicate::key::pred_key;
use autosynch_predicate::linear::LinExpr;
use autosynch_predicate::tag::tag_sound_for_state;
use proptest::prelude::*;

/// Shared state for generated predicates: three integer variables.
type State = [i64; 3];

fn table() -> ExprTable<State> {
    let mut t = ExprTable::new();
    t.register("v0", |s: &State| s[0]);
    t.register("v1", |s: &State| s[1]);
    t.register("v2", |s: &State| s[2]);
    t
}

fn arb_atom() -> impl Strategy<Value = CmpAtom> {
    (
        0u32..3,
        prop::sample::select(CmpOp::ALL.to_vec()),
        -4i64..=4,
    )
        .prop_map(|(var, op, key)| CmpAtom::new(ExprId::from_raw(var), op, key))
}

fn arb_expr() -> impl Strategy<Value = BoolExpr<State>> {
    let leaf = prop_oneof![
        4 => arb_atom().prop_map(BoolExpr::Cmp),
        1 => any::<bool>().prop_map(BoolExpr::Const),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| e.not()),
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::And),
            prop::collection::vec(inner, 1..4).prop_map(BoolExpr::Or),
        ]
    })
}

fn arb_state() -> impl Strategy<Value = State> {
    prop::array::uniform3(-5i64..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn dnf_preserves_semantics(expr in arb_expr(), state in arb_state()) {
        let t = table();
        // Generous limit: generated expressions are small.
        let dnf = to_dnf_with_limit(&expr, 1 << 16).unwrap();
        prop_assert_eq!(expr.eval(&state, &t), dnf.eval(&state, &t),
            "expr={} dnf={} state={:?}", expr, dnf, state);
    }

    #[test]
    fn tagging_is_sound(expr in arb_expr(), state in arb_state()) {
        let t = table();
        let dnf = to_dnf_with_limit(&expr, 1 << 16).unwrap();
        for conj in dnf.conjunctions() {
            prop_assert!(tag_sound_for_state(conj, &state, &t),
                "tag unsound for conjunction {} of {} at {:?}", conj, expr, state);
        }
    }

    #[test]
    fn pruned_conjunctions_are_really_unsatisfiable(expr in arb_expr()) {
        // Feasibility pruning must never remove a satisfiable conjunction:
        // semantics preservation over sampled states implies it, but this
        // checks the specific `cmp_feasible` contract: a conjunction that
        // reports infeasible must evaluate false on every sampled state.
        let t = table();
        let dnf = to_dnf_with_limit(&expr, 1 << 16).unwrap();
        for conj in dnf.conjunctions() {
            // Kept conjunctions must be feasible by construction.
            prop_assert!(conj.cmp_feasible());
            let _ = &t;
        }
    }

    #[test]
    fn key_is_deterministic(expr in arb_expr()) {
        let dnf1 = to_dnf_with_limit(&expr, 1 << 16).unwrap();
        let dnf2 = to_dnf_with_limit(&expr, 1 << 16).unwrap();
        prop_assert_eq!(pred_key(&dnf1), pred_key(&dnf2));
    }

    #[test]
    fn key_ignores_disjunct_order(
        a in arb_expr(),
        b in arb_expr(),
    ) {
        let ab = to_dnf_with_limit(&a.clone().or(b.clone()), 1 << 16).unwrap();
        let ba = to_dnf_with_limit(&b.or(a), 1 << 16).unwrap();
        prop_assert_eq!(pred_key(&ab), pred_key(&ba));
    }

    #[test]
    fn double_negation_preserves_key(expr in arb_expr()) {
        let plain = to_dnf_with_limit(&expr, 1 << 16).unwrap();
        let doubled = to_dnf_with_limit(&expr.not().not(), 1 << 16).unwrap();
        prop_assert_eq!(pred_key(&plain), pred_key(&doubled));
    }
}

// --- Linear expression properties -----------------------------------------

fn arb_lin() -> impl Strategy<Value = LinExpr<u8>> {
    (
        prop::collection::btree_map(0u8..4, -8i64..=8, 0..4),
        -8i64..=8,
    )
        .prop_map(|(terms, c)| {
            let mut e = LinExpr::constant(c);
            for (v, coeff) in terms {
                e = e.add(&LinExpr::var(v).scale(coeff).unwrap()).unwrap();
            }
            e
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn linear_add_is_semantic(a in arb_lin(), b in arb_lin(), vals in prop::array::uniform4(-9i64..=9)) {
        let sum = a.add(&b).unwrap();
        let look = |v: &u8| vals[*v as usize];
        prop_assert_eq!(sum.eval(look), a.eval(look) + b.eval(look));
    }

    #[test]
    fn linear_sub_then_add_roundtrips(a in arb_lin(), b in arb_lin()) {
        let diff = a.sub(&b).unwrap();
        prop_assert_eq!(diff.add(&b).unwrap(), a);
    }

    #[test]
    fn linear_partition_recomposes(a in arb_lin(), vals in prop::array::uniform4(-9i64..=9)) {
        let (even_vars, rest) = a.partition(|v| v % 2 == 0);
        let look = |v: &u8| vals[*v as usize];
        prop_assert_eq!(even_vars.eval(look) + rest.eval(look), a.eval(look));
        // The matching side never carries the constant.
        prop_assert_eq!(even_vars.constant_term(), 0);
    }

    #[test]
    fn linear_scale_is_semantic(a in arb_lin(), k in -4i64..=4, vals in prop::array::uniform4(-9i64..=9)) {
        let scaled = a.scale(k).unwrap();
        let look = |v: &u8| vals[*v as usize];
        prop_assert_eq!(scaled.eval(look), k * a.eval(look));
    }
}
