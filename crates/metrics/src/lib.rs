//! Instrumentation substrate for the AutoSynch reproduction.
//!
//! The PLDI'13 paper evaluates signaling mechanisms along three observable
//! axes:
//!
//! * **Runtime** of saturation tests (Figs. 8–14) — measured by the harness
//!   with a wall clock; nothing to do here.
//! * **Context switches** (Fig. 15) — every voluntary context switch of a
//!   monitor thread corresponds to one return from `Condvar::wait`, so this
//!   crate counts *wakeups* and classifies them as productive or futile
//!   (woke up, predicate still false, went back to sleep). On Linux the
//!   [`ctx`] module can additionally sample the kernel's
//!   `voluntary_ctxt_switches` counter for calibration.
//! * **CPU-usage breakdown** (Table 1) — the paper used the YourKit
//!   profiler to attribute time to `await`, `lock`, `relaySignal` and tag
//!   management. The [`phase`] module reproduces that attribution with
//!   per-phase wall-clock accumulators maintained by the monitor runtime.
//!
//! The types here are deliberately free of any locking: everything is a
//! relaxed atomic counter, cheap enough to stay enabled in benchmarks, and
//! the crate has no dependencies outside `std`.
//!
//! # Examples
//!
//! ```
//! use autosynch_metrics::counters::SyncCounters;
//!
//! let counters = SyncCounters::default();
//! counters.record_signal();
//! counters.record_wakeup();
//! let snap = counters.snapshot();
//! assert_eq!(snap.signals, 1);
//! assert_eq!(snap.wakeups, 1);
//! assert_eq!(snap.futile_wakeups, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counters;
pub mod ctx;
pub mod ewma;
pub mod hist;
pub mod phase;
pub mod report;

pub use counters::{CounterSnapshot, SyncCounters};
pub use ewma::Ewma;
pub use hist::{HistSnapshot, LogLinearHist};
pub use phase::{Phase, PhaseSnapshot, PhaseTimes};
pub use report::Table;
