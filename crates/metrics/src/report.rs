//! Minimal aligned-text tables for the `reproduce` harness.
//!
//! Every figure and table of the paper is regenerated as a text series; this
//! module renders them with aligned columns so the output is directly
//! paste-able into `EXPERIMENTS.md`.

use std::fmt;

/// An aligned text table.
///
/// # Examples
///
/// ```
/// use autosynch_metrics::report::Table;
///
/// let mut t = Table::new(vec!["threads".into(), "explicit".into(), "autosynch".into()]);
/// t.row(vec!["2".into(), "1.23".into(), "1.31".into()]);
/// t.row(vec!["256".into(), "20.1".into(), "0.75".into()]);
/// let text = t.to_string();
/// assert!(text.contains("threads"));
/// assert!(text.lines().count() >= 4); // header + separator + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(columns: &[&str]) -> Self {
        Table::new(columns.iter().map(|c| (*c).to_owned()).collect())
    }

    /// Appends one row. Shorter rows are padded with empty cells; longer
    /// rows extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    fn write_row(f: &mut fmt::Formatter<'_>, cells: &[String], widths: &[usize]) -> fmt::Result {
        for (i, width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{cell:>width$}")?;
        }
        writeln!(f)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        Self::write_row(f, &self.header, &widths)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            Self::write_row(f, row, &widths)?;
        }
        Ok(())
    }
}

/// Formats a duration in seconds with three decimals (paper figures use
/// seconds on the y-axis).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a count in thousands, matching Fig. 15's "K times" axis.
pub fn kilo(n: u64) -> String {
    format!("{:.1}", n as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["n", "runtime"]);
        t.row(vec!["2".into(), "1.0".into()]);
        t.row(vec!["256".into(), "20.5".into()]);
        let text = t.to_string();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width (right-aligned padding).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::with_columns(&["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let text = t.to_string();
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn longer_rows_extend_columns() {
        let mut t = Table::with_columns(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
        assert!(t.to_string().contains('2'));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::with_columns(&["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn secs_formats_three_decimals() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn kilo_formats_thousands() {
        assert_eq!(kilo(2_700_000), "2700.0");
        assert_eq!(kilo(5440), "5.4");
    }
}
