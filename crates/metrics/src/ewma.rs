//! Exponentially weighted moving averages for windowed health signals.
//!
//! The watchtower samples counter deltas on a fixed cadence and smooths
//! each derived rate through an [`Ewma`] so one anomalous window cannot
//! arm a pathology detector (and one quiet window cannot clear it) —
//! the smoothing half of the detectors' hysteresis. Plain sequential
//! state: the sampler owns its watcher exclusively, so no atomics.

/// One exponentially weighted moving average: `v ← α·x + (1−α)·v`.
///
/// The first observation primes the average directly (no warm-up bias
/// toward zero).
///
/// # Examples
///
/// ```
/// use autosynch_metrics::ewma::Ewma;
///
/// let mut avg = Ewma::new(0.5);
/// assert_eq!(avg.update(4.0), 4.0); // first sample primes
/// assert_eq!(avg.update(0.0), 2.0);
/// assert_eq!(avg.value(), 2.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// Creates an average with smoothing factor `alpha` in `(0, 1]` —
    /// higher is twitchier. Out-of-range values are clamped.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: 0.0,
            primed: false,
        }
    }

    /// Folds in one observation and returns the updated average.
    /// Non-finite observations are ignored (a 0-duration window's rate
    /// must not poison the average).
    pub fn update(&mut self, x: f64) -> f64 {
        if x.is_finite() {
            if self.primed {
                self.value = self.alpha * x + (1.0 - self.alpha) * self.value;
            } else {
                self.value = x;
                self.primed = true;
            }
        }
        self.value
    }

    /// The current average (0 before any observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one observation has been folded in.
    pub fn is_primed(&self) -> bool {
        self.primed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_primes_without_zero_bias() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_primed());
        assert_eq!(e.update(100.0), 100.0);
        assert!(e.is_primed());
    }

    #[test]
    fn smooths_toward_new_observations() {
        let mut e = Ewma::new(0.25);
        e.update(0.0);
        e.update(8.0);
        assert_eq!(e.value(), 2.0);
        e.update(8.0);
        assert_eq!(e.value(), 3.5);
    }

    #[test]
    fn ignores_non_finite() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        e.update(f64::NAN);
        e.update(f64::INFINITY);
        assert_eq!(e.value(), 4.0);
    }

    #[test]
    fn alpha_is_clamped() {
        let mut e = Ewma::new(7.0); // clamps to 1.0: tracks exactly
        e.update(3.0);
        e.update(9.0);
        assert_eq!(e.value(), 9.0);
    }
}
