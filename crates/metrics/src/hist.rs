//! Log-linear (HDR-style) latency histograms.
//!
//! The paper-shaped harness reported means; production tail latency
//! lives in the quantiles, so this module provides a fixed-footprint
//! concurrent histogram with bounded relative error: values are bucketed
//! by power-of-two exponent, each exponent split into `2^SUB_BITS`
//! linear sub-buckets. With `SUB_BITS = 5` a bucket spans at most
//! `2^-5 ≈ 3.1%` of its value, so a reported p999 is within ~3.1% of
//! the true order statistic (and never *below* it — quantiles return
//! the bucket's upper bound).
//!
//! Recording is one `fetch_add` on the bucket plus two on the totals,
//! all `Relaxed`: no locks, no allocation, safe from any thread.
//!
//! # Examples
//!
//! ```
//! use autosynch_metrics::hist::LogLinearHist;
//!
//! let h = LogLinearHist::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! let snap = h.snapshot();
//! assert!(snap.quantile(0.5) >= 500);
//! assert!(snap.quantile(0.999) >= 999);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal buckets.
pub const SUB_BITS: u32 = 5;

const SUB_BUCKETS: usize = 1 << SUB_BITS; // 32

/// Total bucket count covering the full `u64` range: values below
/// `SUB_BUCKETS` get exact buckets, and each of the remaining
/// `64 - SUB_BITS` exponents contributes `SUB_BUCKETS` sub-buckets.
pub const BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1); // 1920

/// The bucket index for a value. Exact below `SUB_BUCKETS`; log-linear
/// above. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (exp - SUB_BITS)) as usize - SUB_BUCKETS;
        SUB_BUCKETS * (exp - SUB_BITS + 1) as usize + sub
    }
}

/// The largest value mapping to bucket `idx` — what quantiles report,
/// so a quantile estimate never under-states the true order statistic.
#[inline]
pub fn bucket_upper_bound(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let exp = (idx / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB_BUCKETS) as u64;
        // The top bucket's bound is u64::MAX: the shift wraps 2^64 to 0
        // and the decrement wraps to MAX.
        ((SUB_BUCKETS as u64 + sub + 1).wrapping_shl(exp - SUB_BITS)).wrapping_sub(1)
    }
}

/// A concurrent log-linear histogram over `u64` samples (nanoseconds,
/// in this workspace). Fixed footprint (`BUCKETS` words), lock-free
/// relaxed-atomic recording.
pub struct LogLinearHist {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl LogLinearHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LogLinearHist {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Captures a point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket to zero.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Atomically swaps every bucket to zero and returns what was
    /// accumulated — the reset-with-final-reading the harness's
    /// before/after pattern needs. A sample recorded concurrently with
    /// the drain lands in exactly one of {returned snapshot, remaining
    /// histogram}, never both and never neither (each increment is a
    /// single atomic swap-out); its bucket/count/sum components may
    /// split across the two sides, which only perturbs the boundary
    /// sample itself.
    pub fn drain(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.swap(0, Ordering::Relaxed))
                .collect(),
            count: self.count.swap(0, Ordering::Relaxed),
            sum: self.sum.swap(0, Ordering::Relaxed),
        }
    }
}

impl Default for LogLinearHist {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LogLinearHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogLinearHist")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of a [`LogLinearHist`].
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
}

impl HistSnapshot {
    /// Number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping at `u64`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `(0, 1]`), reported as the
    /// containing bucket's upper bound so it never under-states the
    /// true order statistic. `0` when the snapshot is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(idx);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Upper bound of the highest occupied bucket; `0` when empty.
    pub fn max_bound(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&n| n > 0)
            .map(bucket_upper_bound)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn index_is_monotone_and_bounds_cover() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < BUCKETS);
            assert!(bucket_upper_bound(idx) >= v, "bound below value at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width at exponent e is 2^(e - SUB_BITS); values are at
        // least 2^e, so the bound overshoot is at most 2^-SUB_BITS.
        for &v in &[100u64, 1000, 12_345, 1 << 30, (1 << 40) + 7] {
            let bound = bucket_upper_bound(bucket_index(v));
            let err = (bound - v) as f64 / v as f64;
            assert!(
                err <= 1.0 / (1 << SUB_BITS) as f64 + 1e-12,
                "err {err} at {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LogLinearHist::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        // Upper-bound reporting: each quantile is >= the exact order
        // statistic and within the 3.1% bucket width above it.
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (0.999, 9_990)] {
            let got = s.quantile(q);
            assert!(got >= exact, "q{q}: {got} < {exact}");
            assert!(
                got as f64 <= exact as f64 * 1.04,
                "q{q}: {got} too far above {exact}"
            );
        }
        assert!(s.max_bound() >= 10_000);
        assert!((s.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_hist_reports_zeros() {
        let h = LogLinearHist::new();
        assert!(h.is_empty());
        let s = h.snapshot();
        assert_eq!(s.quantile(0.999), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn drain_returns_totals_and_zeroes() {
        let h = LogLinearHist::new();
        h.record(10);
        h.record(20);
        let s = h.drain();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 30);
        assert!(h.is_empty());
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn reset_clears() {
        let h = LogLinearHist::new();
        h.record(99);
        h.reset();
        assert!(h.is_empty());
    }
}
