//! Event counters shared by every signaling mechanism.
//!
//! All four mechanisms of the paper (explicit, baseline, AutoSynch-T,
//! AutoSynch) are instrumented with the same counter set so their numbers
//! are directly comparable. Counters use relaxed atomics: they are
//! monotonically increasing event tallies, never used for synchronization.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic event counters for one monitor instance.
///
/// Increment methods are `record_*`; [`SyncCounters::snapshot`] captures a
/// consistent-enough copy for reporting (individual loads are relaxed, which
/// is fine for quiescent reads after a run has joined its threads).
///
/// # Examples
///
/// ```
/// use autosynch_metrics::counters::SyncCounters;
///
/// let c = SyncCounters::default();
/// c.record_wakeup();
/// c.record_futile_wakeup();
/// assert_eq!(c.snapshot().productive_wakeups(), 0);
/// ```
#[derive(Debug, Default)]
pub struct SyncCounters {
    enters: AtomicU64,
    waits: AtomicU64,
    signals: AtomicU64,
    broadcasts: AtomicU64,
    wakeups: AtomicU64,
    futile_wakeups: AtomicU64,
    timeouts: AtomicU64,
    pred_evals: AtomicU64,
    expr_evals: AtomicU64,
    tag_inserts: AtomicU64,
    tag_removes: AtomicU64,
    relay_calls: AtomicU64,
    relay_hits: AtomicU64,
    relay_skips: AtomicU64,
    probes_skipped: AtomicU64,
    unchanged_exprs: AtomicU64,
    cross_shard_preds: AtomicU64,
    batched_signals: AtomicU64,
    ring_retries: AtomicU64,
    unparks: AtomicU64,
    waiter_self_checks: AtomicU64,
    false_wakeups: AtomicU64,
    named_mutations: AtomicU64,
    routed_unparks: AtomicU64,
    token_forwards: AtomicU64,
    eq_routed_wakes: AtomicU64,
    ladder_skips: AtomicU64,
    cursor_resumes: AtomicU64,
    transient_cache_hits: AtomicU64,
    fast_path_enters: AtomicU64,
    combined_exits: AtomicU64,
    fc_publishes: AtomicU64,
}

macro_rules! counter_methods {
    ($($(#[$doc:meta])* $record:ident => $field:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $record(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )+
    };
}

impl SyncCounters {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    counter_methods! {
        /// A thread entered the monitor (acquired the lock from outside).
        record_enter => enters,
        /// A thread blocked in `waituntil` / `await` (one per actual block,
        /// not per re-check).
        record_wait => waits,
        /// The runtime issued a single-thread signal (`notify_one`).
        record_signal => signals,
        /// The runtime issued a broadcast (`notify_all` / `signalAll`).
        /// AutoSynch never increments this — that is the paper's claim.
        record_broadcast => broadcasts,
        /// A blocked thread returned from `Condvar::wait`. This is the
        /// context-switch proxy used for Fig. 15.
        record_wakeup => wakeups,
        /// A wakeup whose predicate was still false, forcing the thread
        /// back to sleep (the "redundant context switches" of §3).
        record_futile_wakeup => futile_wakeups,
        /// A timed wait elapsed without a signal.
        record_timeout => timeouts,
        /// One waiting-condition evaluation (a conjunction or whole
        /// predicate, depending on mechanism).
        record_pred_eval => pred_evals,
        /// One shared-expression evaluation during relay signaling.
        record_expr_eval => expr_evals,
        /// A tag was inserted into an index (hash table or heap).
        record_tag_insert => tag_inserts,
        /// A tag was removed from an index.
        record_tag_remove => tag_removes,
        /// One execution of the relay signaling rule.
        record_relay_call => relay_calls,
        /// A relay call that found and signaled a thread.
        record_relay_hit => relay_hits,
        /// A relay call the change-driven mode skipped outright: the
        /// state was unmutated since the last relay and every waiting
        /// conjunction was already known false.
        record_relay_skip => relay_skips,
        /// A tag-index candidate the change-driven probe skipped because
        /// none of its dependencies changed since the last relay.
        record_probe_skipped => probes_skipped,
        /// A snapshot-diff expression evaluation whose value matched the
        /// cached snapshot (no dependents need probing on its account).
        record_unchanged_expr => unchanged_exprs,
        /// A conjunction whose dependency set spans several shards (or is
        /// opaque) and therefore routed to the global shard (sharded mode).
        record_cross_shard_pred => cross_shard_preds,
        /// A signal issued beyond the first within a single batched relay
        /// pass (sharded mode with `relay_width > 1`).
        record_batched_signal => batched_signals,
        /// A lock-free snapshot-ring read whose seqlock validation failed
        /// and had to retry (a writer published mid-read).
        record_ring_retry => ring_retries,
        /// A parked waiter was unparked by a signaler's exit path (parked
        /// mode). Unlike `signals`, the signaler did not evaluate the
        /// waiter's predicate — the waiter re-checks it itself.
        record_unpark => unparks,
        /// A parked waiter re-evaluated its own predicate against the
        /// lock-free snapshot ring after an unpark (parked mode) — work
        /// that every other mode performs inside the signaler's critical
        /// section.
        record_waiter_self_check => waiter_self_checks,
        /// A waiter-side self-check concluded the predicate is still
        /// false, so the waiter re-parked without touching the monitor
        /// lock (the cheap cousin of a futile wakeup).
        record_false_wakeup => false_wakeups,
        /// An occupancy whose writes named their touched expressions —
        /// a tracked-cell drain or a `state_mut_touching` call — so the
        /// snapshot diff can skip every other expression.
        record_named_mutation => named_mutations,
        /// A *targeted* unpark in routed mode: the wake named one
        /// `Cond`-slot bucket (sweep start, token forward or baton
        /// re-injection) instead of broadcasting a whole gate. Every
        /// routed unpark is also counted in `unparks`.
        record_routed_unpark => routed_unparks,
        /// A sweep token handoff in routed mode: a waiter whose
        /// self-check came back false (or whose claim proved futile)
        /// passed the wake on to the next unobserved waiter of its
        /// bucket, or a claimer re-injected the baton at monitor exit.
        record_token_forward => token_forwards,
        /// A wake the routed relay resolved through the equivalence
        /// route: the published value of an eq-tagged expression named
        /// the single slot whose waiters can have flipped, so exactly
        /// one bucket was swept instead of the whole gate.
        record_eq_routed_wake => eq_routed_wakes,
        /// A threshold-ladder rung the routed relay proved false at the
        /// published value and skipped without waking: the rung's key
        /// sits above (min side) or below (max side) the fresh value,
        /// so its waiters' predicates cannot have become true.
        record_ladder_skip => ladder_skips,
        /// A token sweep that resumed from its bucket's saved cursor
        /// instead of rescanning from the FIFO head — the already-swept
        /// prefix of the bucket was skipped in O(1).
        record_cursor_resume => cursor_resumes,
        /// A transient (uncompiled) wait whose interned predicate
        /// already had a graduated per-predicate bucket in the gate's
        /// LRU: the waiter joined the targeted token-sweep discipline
        /// instead of the per-gate broadcast bucket.
        record_transient_cache_hit => transient_cache_hits,
        /// An enter that took the CAS lock-elision lane: the monitor
        /// word was fully quiescent (no occupant, no waiter, no pending
        /// relay work), so the occupancy ran without the mutex.
        record_fast_path_enter => fast_path_enters,
        /// A published enter/exit record a combiner adopted: the lock
        /// holder ran the occupancy on the publisher's behalf and folded
        /// its mutation diff into one batched relay pass.
        record_combined_exit => combined_exits,
        /// A contended `with`/`with_tracked` that published its
        /// occupancy into the flat-combining slab instead of queueing on
        /// the monitor mutex.
        record_fc_publish => fc_publishes,
    }

    /// Adds `n` predicate evaluations at once.
    #[inline]
    pub fn record_pred_evals(&self, n: u64) {
        self.pred_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` unparks at once (broadcast deliveries count their whole
    /// gate in one add).
    #[inline]
    pub fn record_unparks(&self, n: u64) {
        self.unparks.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` ladder skips at once (one relay probe prunes a whole
    /// suffix of provably-false rungs in one range count).
    #[inline]
    pub fn record_ladder_skips(&self, n: u64) {
        self.ladder_skips.fetch_add(n, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            enters: self.enters.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            signals: self.signals.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            futile_wakeups: self.futile_wakeups.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            pred_evals: self.pred_evals.load(Ordering::Relaxed),
            expr_evals: self.expr_evals.load(Ordering::Relaxed),
            tag_inserts: self.tag_inserts.load(Ordering::Relaxed),
            tag_removes: self.tag_removes.load(Ordering::Relaxed),
            relay_calls: self.relay_calls.load(Ordering::Relaxed),
            relay_hits: self.relay_hits.load(Ordering::Relaxed),
            relay_skips: self.relay_skips.load(Ordering::Relaxed),
            probes_skipped: self.probes_skipped.load(Ordering::Relaxed),
            unchanged_exprs: self.unchanged_exprs.load(Ordering::Relaxed),
            cross_shard_preds: self.cross_shard_preds.load(Ordering::Relaxed),
            batched_signals: self.batched_signals.load(Ordering::Relaxed),
            ring_retries: self.ring_retries.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            waiter_self_checks: self.waiter_self_checks.load(Ordering::Relaxed),
            false_wakeups: self.false_wakeups.load(Ordering::Relaxed),
            named_mutations: self.named_mutations.load(Ordering::Relaxed),
            routed_unparks: self.routed_unparks.load(Ordering::Relaxed),
            token_forwards: self.token_forwards.load(Ordering::Relaxed),
            eq_routed_wakes: self.eq_routed_wakes.load(Ordering::Relaxed),
            ladder_skips: self.ladder_skips.load(Ordering::Relaxed),
            cursor_resumes: self.cursor_resumes.load(Ordering::Relaxed),
            transient_cache_hits: self.transient_cache_hits.load(Ordering::Relaxed),
            fast_path_enters: self.fast_path_enters.load(Ordering::Relaxed),
            combined_exits: self.combined_exits.load(Ordering::Relaxed),
            fc_publishes: self.fc_publishes.load(Ordering::Relaxed),
        }
    }

    /// Atomically swaps every counter to zero and returns the final
    /// values — `reset` with a reading. Each field is drained by one
    /// atomic `swap`, so an event recorded concurrently lands in
    /// exactly one of {returned snapshot, post-drain counters}; the
    /// snapshot is per-field atomic, not globally consistent across
    /// fields (see `MonitorStats::reset` for the contract this backs).
    pub fn drain(&self) -> CounterSnapshot {
        CounterSnapshot {
            enters: self.enters.swap(0, Ordering::Relaxed),
            waits: self.waits.swap(0, Ordering::Relaxed),
            signals: self.signals.swap(0, Ordering::Relaxed),
            broadcasts: self.broadcasts.swap(0, Ordering::Relaxed),
            wakeups: self.wakeups.swap(0, Ordering::Relaxed),
            futile_wakeups: self.futile_wakeups.swap(0, Ordering::Relaxed),
            timeouts: self.timeouts.swap(0, Ordering::Relaxed),
            pred_evals: self.pred_evals.swap(0, Ordering::Relaxed),
            expr_evals: self.expr_evals.swap(0, Ordering::Relaxed),
            tag_inserts: self.tag_inserts.swap(0, Ordering::Relaxed),
            tag_removes: self.tag_removes.swap(0, Ordering::Relaxed),
            relay_calls: self.relay_calls.swap(0, Ordering::Relaxed),
            relay_hits: self.relay_hits.swap(0, Ordering::Relaxed),
            relay_skips: self.relay_skips.swap(0, Ordering::Relaxed),
            probes_skipped: self.probes_skipped.swap(0, Ordering::Relaxed),
            unchanged_exprs: self.unchanged_exprs.swap(0, Ordering::Relaxed),
            cross_shard_preds: self.cross_shard_preds.swap(0, Ordering::Relaxed),
            batched_signals: self.batched_signals.swap(0, Ordering::Relaxed),
            ring_retries: self.ring_retries.swap(0, Ordering::Relaxed),
            unparks: self.unparks.swap(0, Ordering::Relaxed),
            waiter_self_checks: self.waiter_self_checks.swap(0, Ordering::Relaxed),
            false_wakeups: self.false_wakeups.swap(0, Ordering::Relaxed),
            named_mutations: self.named_mutations.swap(0, Ordering::Relaxed),
            routed_unparks: self.routed_unparks.swap(0, Ordering::Relaxed),
            token_forwards: self.token_forwards.swap(0, Ordering::Relaxed),
            eq_routed_wakes: self.eq_routed_wakes.swap(0, Ordering::Relaxed),
            ladder_skips: self.ladder_skips.swap(0, Ordering::Relaxed),
            cursor_resumes: self.cursor_resumes.swap(0, Ordering::Relaxed),
            transient_cache_hits: self.transient_cache_hits.swap(0, Ordering::Relaxed),
            fast_path_enters: self.fast_path_enters.swap(0, Ordering::Relaxed),
            combined_exits: self.combined_exits.swap(0, Ordering::Relaxed),
            fc_publishes: self.fc_publishes.swap(0, Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (between benchmark iterations).
    pub fn reset(&self) {
        for field in [
            &self.enters,
            &self.waits,
            &self.signals,
            &self.broadcasts,
            &self.wakeups,
            &self.futile_wakeups,
            &self.timeouts,
            &self.pred_evals,
            &self.expr_evals,
            &self.tag_inserts,
            &self.tag_removes,
            &self.relay_calls,
            &self.relay_hits,
            &self.relay_skips,
            &self.probes_skipped,
            &self.unchanged_exprs,
            &self.cross_shard_preds,
            &self.batched_signals,
            &self.ring_retries,
            &self.unparks,
            &self.waiter_self_checks,
            &self.false_wakeups,
            &self.named_mutations,
            &self.routed_unparks,
            &self.token_forwards,
            &self.eq_routed_wakes,
            &self.ladder_skips,
            &self.cursor_resumes,
            &self.transient_cache_hits,
            &self.fast_path_enters,
            &self.combined_exits,
            &self.fc_publishes,
        ] {
            field.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`SyncCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // fields mirror the documented record_* methods
pub struct CounterSnapshot {
    pub enters: u64,
    pub waits: u64,
    pub signals: u64,
    pub broadcasts: u64,
    pub wakeups: u64,
    pub futile_wakeups: u64,
    pub timeouts: u64,
    pub pred_evals: u64,
    pub expr_evals: u64,
    pub tag_inserts: u64,
    pub tag_removes: u64,
    pub relay_calls: u64,
    pub relay_hits: u64,
    pub relay_skips: u64,
    pub probes_skipped: u64,
    pub unchanged_exprs: u64,
    pub cross_shard_preds: u64,
    pub batched_signals: u64,
    pub ring_retries: u64,
    pub unparks: u64,
    pub waiter_self_checks: u64,
    pub false_wakeups: u64,
    pub named_mutations: u64,
    pub routed_unparks: u64,
    pub token_forwards: u64,
    pub eq_routed_wakes: u64,
    pub ladder_skips: u64,
    pub cursor_resumes: u64,
    pub transient_cache_hits: u64,
    pub fast_path_enters: u64,
    pub combined_exits: u64,
    pub fc_publishes: u64,
}

impl CounterSnapshot {
    /// Wakeups whose predicate held, i.e. that led to progress.
    pub fn productive_wakeups(&self) -> u64 {
        self.wakeups.saturating_sub(self.futile_wakeups)
    }

    /// Fraction of wakeups that were futile, in `[0, 1]`; `0` when no
    /// wakeups occurred.
    pub fn futile_ratio(&self) -> f64 {
        if self.wakeups == 0 {
            0.0
        } else {
            self.futile_wakeups as f64 / self.wakeups as f64
        }
    }

    /// Counter-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            enters: self.enters.saturating_sub(earlier.enters),
            waits: self.waits.saturating_sub(earlier.waits),
            signals: self.signals.saturating_sub(earlier.signals),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            futile_wakeups: self.futile_wakeups.saturating_sub(earlier.futile_wakeups),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            pred_evals: self.pred_evals.saturating_sub(earlier.pred_evals),
            expr_evals: self.expr_evals.saturating_sub(earlier.expr_evals),
            tag_inserts: self.tag_inserts.saturating_sub(earlier.tag_inserts),
            tag_removes: self.tag_removes.saturating_sub(earlier.tag_removes),
            relay_calls: self.relay_calls.saturating_sub(earlier.relay_calls),
            relay_hits: self.relay_hits.saturating_sub(earlier.relay_hits),
            relay_skips: self.relay_skips.saturating_sub(earlier.relay_skips),
            probes_skipped: self.probes_skipped.saturating_sub(earlier.probes_skipped),
            unchanged_exprs: self.unchanged_exprs.saturating_sub(earlier.unchanged_exprs),
            cross_shard_preds: self
                .cross_shard_preds
                .saturating_sub(earlier.cross_shard_preds),
            batched_signals: self.batched_signals.saturating_sub(earlier.batched_signals),
            ring_retries: self.ring_retries.saturating_sub(earlier.ring_retries),
            unparks: self.unparks.saturating_sub(earlier.unparks),
            waiter_self_checks: self
                .waiter_self_checks
                .saturating_sub(earlier.waiter_self_checks),
            false_wakeups: self.false_wakeups.saturating_sub(earlier.false_wakeups),
            named_mutations: self.named_mutations.saturating_sub(earlier.named_mutations),
            routed_unparks: self.routed_unparks.saturating_sub(earlier.routed_unparks),
            token_forwards: self.token_forwards.saturating_sub(earlier.token_forwards),
            eq_routed_wakes: self.eq_routed_wakes.saturating_sub(earlier.eq_routed_wakes),
            ladder_skips: self.ladder_skips.saturating_sub(earlier.ladder_skips),
            cursor_resumes: self.cursor_resumes.saturating_sub(earlier.cursor_resumes),
            transient_cache_hits: self
                .transient_cache_hits
                .saturating_sub(earlier.transient_cache_hits),
            fast_path_enters: self
                .fast_path_enters
                .saturating_sub(earlier.fast_path_enters),
            combined_exits: self.combined_exits.saturating_sub(earlier.combined_exits),
            fc_publishes: self.fc_publishes.saturating_sub(earlier.fc_publishes),
        }
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "enters={} waits={} signals={} broadcasts={} wakeups={} \
             futile={} pred_evals={} expr_evals={} relay={}/{} \
             skipped={}p/{}r",
            self.enters,
            self.waits,
            self.signals,
            self.broadcasts,
            self.wakeups,
            self.futile_wakeups,
            self.pred_evals,
            self.expr_evals,
            self.relay_hits,
            self.relay_calls,
            self.probes_skipped,
            self.relay_skips,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_start_at_zero() {
        let snap = SyncCounters::new().snapshot();
        assert_eq!(snap, CounterSnapshot::default());
    }

    #[test]
    fn record_methods_increment_their_field() {
        let c = SyncCounters::new();
        c.record_enter();
        c.record_enter();
        c.record_wait();
        c.record_signal();
        c.record_broadcast();
        c.record_wakeup();
        c.record_futile_wakeup();
        c.record_timeout();
        c.record_pred_eval();
        c.record_expr_eval();
        c.record_tag_insert();
        c.record_tag_remove();
        c.record_relay_call();
        c.record_relay_hit();
        c.record_relay_skip();
        c.record_probe_skipped();
        c.record_unchanged_expr();
        c.record_cross_shard_pred();
        c.record_batched_signal();
        c.record_ring_retry();
        c.record_unpark();
        c.record_waiter_self_check();
        c.record_false_wakeup();
        c.record_named_mutation();
        c.record_routed_unpark();
        c.record_token_forward();
        c.record_eq_routed_wake();
        c.record_ladder_skip();
        c.record_cursor_resume();
        c.record_transient_cache_hit();
        c.record_fast_path_enter();
        c.record_combined_exit();
        c.record_fc_publish();
        let s = c.snapshot();
        assert_eq!(s.enters, 2);
        assert_eq!(s.waits, 1);
        assert_eq!(s.signals, 1);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.wakeups, 1);
        assert_eq!(s.futile_wakeups, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.pred_evals, 1);
        assert_eq!(s.expr_evals, 1);
        assert_eq!(s.tag_inserts, 1);
        assert_eq!(s.tag_removes, 1);
        assert_eq!(s.relay_calls, 1);
        assert_eq!(s.relay_hits, 1);
        assert_eq!(s.relay_skips, 1);
        assert_eq!(s.probes_skipped, 1);
        assert_eq!(s.unchanged_exprs, 1);
        assert_eq!(s.cross_shard_preds, 1);
        assert_eq!(s.batched_signals, 1);
        assert_eq!(s.ring_retries, 1);
        assert_eq!(s.unparks, 1);
        assert_eq!(s.waiter_self_checks, 1);
        assert_eq!(s.false_wakeups, 1);
        assert_eq!(s.named_mutations, 1);
        assert_eq!(s.routed_unparks, 1);
        assert_eq!(s.token_forwards, 1);
        assert_eq!(s.eq_routed_wakes, 1);
        assert_eq!(s.ladder_skips, 1);
        assert_eq!(s.cursor_resumes, 1);
        assert_eq!(s.transient_cache_hits, 1);
        assert_eq!(s.fast_path_enters, 1);
        assert_eq!(s.combined_exits, 1);
        assert_eq!(s.fc_publishes, 1);
    }

    #[test]
    fn bulk_ladder_skips() {
        let c = SyncCounters::new();
        c.record_ladder_skips(9);
        assert_eq!(c.snapshot().ladder_skips, 9);
    }

    #[test]
    fn bulk_pred_evals() {
        let c = SyncCounters::new();
        c.record_pred_evals(17);
        assert_eq!(c.snapshot().pred_evals, 17);
    }

    #[test]
    fn productive_wakeups_and_ratio() {
        let c = SyncCounters::new();
        for _ in 0..10 {
            c.record_wakeup();
        }
        for _ in 0..4 {
            c.record_futile_wakeup();
        }
        let s = c.snapshot();
        assert_eq!(s.productive_wakeups(), 6);
        assert!((s.futile_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn futile_ratio_zero_without_wakeups() {
        assert_eq!(CounterSnapshot::default().futile_ratio(), 0.0);
    }

    #[test]
    fn since_subtracts_saturating() {
        let mut a = CounterSnapshot::default();
        let mut b = CounterSnapshot::default();
        a.signals = 10;
        b.signals = 3;
        b.wakeups = 5; // b has more than a: saturates
        let d = a.since(&b);
        assert_eq!(d.signals, 7);
        assert_eq!(d.wakeups, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = SyncCounters::new();
        c.record_signal();
        c.record_wakeup();
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(SyncCounters::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_wakeup();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.snapshot().wakeups, 8000);
    }

    #[test]
    fn display_is_nonempty_and_mentions_counts() {
        let c = SyncCounters::new();
        c.record_signal();
        let text = c.snapshot().to_string();
        assert!(text.contains("signals=1"));
    }
}
