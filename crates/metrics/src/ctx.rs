//! Kernel context-switch sampling (Linux only).
//!
//! Fig. 15 of the paper plots OS context-switch counts. Our primary metric
//! is the wakeup counter in [`crate::counters`] (one wakeup = one voluntary
//! context switch of a blocked thread), but on Linux we can also read the
//! kernel's own `voluntary_ctxt_switches` from `/proc/thread-self/status`
//! to calibrate the proxy. On other platforms the readers return `None`
//! and the harness falls back to the proxy alone.

use std::fmt;

/// A per-thread context-switch sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtxSwitches {
    /// Voluntary context switches (blocking waits).
    pub voluntary: u64,
    /// Involuntary context switches (preemptions).
    pub involuntary: u64,
}

impl CtxSwitches {
    /// Difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &CtxSwitches) -> CtxSwitches {
        CtxSwitches {
            voluntary: self.voluntary.saturating_sub(earlier.voluntary),
            involuntary: self.involuntary.saturating_sub(earlier.involuntary),
        }
    }

    /// Sum of voluntary and involuntary switches.
    pub fn total(&self) -> u64 {
        self.voluntary + self.involuntary
    }
}

impl fmt::Display for CtxSwitches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "voluntary={} involuntary={}",
            self.voluntary, self.involuntary
        )
    }
}

/// Reads the calling thread's context-switch counters from the kernel.
///
/// Returns `None` when the platform has no `/proc/thread-self/status` or it
/// cannot be parsed.
pub fn current_thread() -> Option<CtxSwitches> {
    read_status_file("/proc/thread-self/status")
}

/// Reads the whole process's context-switch counters from the kernel.
pub fn current_process() -> Option<CtxSwitches> {
    read_status_file("/proc/self/status")
}

fn read_status_file(path: &str) -> Option<CtxSwitches> {
    let text = std::fs::read_to_string(path).ok()?;
    parse_status(&text)
}

/// Parses the `voluntary_ctxt_switches` / `nonvoluntary_ctxt_switches`
/// lines of a `/proc/*/status` document.
fn parse_status(text: &str) -> Option<CtxSwitches> {
    let mut voluntary = None;
    let mut involuntary = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("voluntary_ctxt_switches:") {
            voluntary = rest.trim().parse::<u64>().ok();
        } else if let Some(rest) = line.strip_prefix("nonvoluntary_ctxt_switches:") {
            involuntary = rest.trim().parse::<u64>().ok();
        }
    }
    Some(CtxSwitches {
        voluntary: voluntary?,
        involuntary: involuntary?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Name:\tcat
State:\tR (running)
voluntary_ctxt_switches:\t42
nonvoluntary_ctxt_switches:\t7
";

    #[test]
    fn parses_status_document() {
        let s = parse_status(SAMPLE).unwrap();
        assert_eq!(s.voluntary, 42);
        assert_eq!(s.involuntary, 7);
        assert_eq!(s.total(), 49);
    }

    #[test]
    fn missing_fields_yield_none() {
        assert_eq!(parse_status("Name: x\n"), None);
        assert_eq!(parse_status("voluntary_ctxt_switches: 3\n"), None);
    }

    #[test]
    fn malformed_numbers_yield_none() {
        let text = "voluntary_ctxt_switches: many\nnonvoluntary_ctxt_switches: 1\n";
        assert_eq!(parse_status(text), None);
    }

    #[test]
    fn since_saturates() {
        let a = CtxSwitches {
            voluntary: 10,
            involuntary: 1,
        };
        let b = CtxSwitches {
            voluntary: 4,
            involuntary: 5,
        };
        let d = a.since(&b);
        assert_eq!(d.voluntary, 6);
        assert_eq!(d.involuntary, 0);
    }

    #[test]
    fn blocking_increases_voluntary_switches_on_linux() {
        // Only meaningful where /proc exists; skip silently elsewhere.
        let Some(before) = current_thread() else {
            return;
        };
        // A sleep forces at least one voluntary switch.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let after = current_thread().unwrap();
        assert!(after.voluntary >= before.voluntary);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CtxSwitches {
            voluntary: 1,
            involuntary: 2,
        };
        assert!(s.to_string().contains("voluntary=1"));
    }
}
