//! Per-phase time attribution — the Table 1 substitute.
//!
//! The paper profiles CPU usage of the round-robin access pattern with
//! YourKit and attributes it to `await`, `lock`, `relaySignal`, tag
//! management and "others". We reproduce the attribution with wall-clock
//! accumulators: the monitor runtime brackets each activity with
//! [`PhaseTimes::start`]/[`PhaseGuard::finish`] (or the closure helper
//! [`PhaseTimes::time`]) and the harness renders the same five-column table.
//!
//! Accounting is optional: constructing the accumulator `disabled()` turns
//! every operation into a no-op branch so benchmark figures are not
//! distorted when the breakdown is not requested.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The activities distinguished by Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Blocked in `Condvar::wait` (the paper's `await` column).
    Await,
    /// Acquiring the monitor lock.
    Lock,
    /// Running the relay-signaling rule (deciding whom to signal).
    RelaySignal,
    /// Maintaining predicate tags (inserting/removing from indexes).
    TagManager,
    /// Diffing the shared-expression snapshot against fresh values to
    /// compute the changed set (change-driven relay only; an extension
    /// column beyond the paper's Table 1).
    SnapshotDiff,
    /// Routing conjunctions to shards and building the per-relay shard
    /// plan (sharded mode only; an extension column beyond the paper).
    ShardRoute,
    /// A parked waiter re-checking its own predicate against the
    /// lock-free snapshot ring (parked mode only) — the predicate work
    /// the parking subsystem moves *out* of the signaler's critical
    /// section and onto the waiter.
    ParkRecheck,
    /// Everything else spent inside monitor functions.
    Other,
}

impl Phase {
    /// All phases in Table 1 column order (with the change-driven
    /// snapshot-diff and sharded-routing extensions inserted before
    /// "others").
    pub const ALL: [Phase; 8] = [
        Phase::Await,
        Phase::Lock,
        Phase::RelaySignal,
        Phase::TagManager,
        Phase::SnapshotDiff,
        Phase::ShardRoute,
        Phase::ParkRecheck,
        Phase::Other,
    ];

    /// The paper's column header for this phase.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Await => "await",
            Phase::Lock => "lock",
            Phase::RelaySignal => "relaySignal",
            Phase::TagManager => "tagMgr",
            Phase::SnapshotDiff => "snapDiff",
            Phase::ShardRoute => "shardRoute",
            Phase::ParkRecheck => "parkRecheck",
            Phase::Other => "others",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Await => 0,
            Phase::Lock => 1,
            Phase::RelaySignal => 2,
            Phase::TagManager => 3,
            Phase::SnapshotDiff => 4,
            Phase::ShardRoute => 5,
            Phase::ParkRecheck => 6,
            Phase::Other => 7,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Atomic nanosecond accumulators, one per [`Phase`].
///
/// # Examples
///
/// ```
/// use autosynch_metrics::phase::{Phase, PhaseTimes};
///
/// let times = PhaseTimes::enabled();
/// times.time(Phase::RelaySignal, || std::thread::sleep(std::time::Duration::from_millis(1)));
/// assert!(times.snapshot().nanos(Phase::RelaySignal) > 0);
/// ```
#[derive(Debug)]
pub struct PhaseTimes {
    nanos: [AtomicU64; 8],
    enabled: AtomicBool,
}

impl Default for PhaseTimes {
    fn default() -> Self {
        Self::disabled()
    }
}

impl PhaseTimes {
    /// Creates an accumulator that records every phase.
    pub fn enabled() -> Self {
        Self {
            nanos: Default::default(),
            enabled: AtomicBool::new(true),
        }
    }

    /// Creates a no-op accumulator (every `start`/`time` is a cheap branch).
    pub fn disabled() -> Self {
        Self {
            nanos: Default::default(),
            enabled: AtomicBool::new(false),
        }
    }

    /// Whether timing is currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Starts timing `phase`; call [`PhaseGuard::finish`] (or drop the
    /// guard) to add the elapsed time.
    #[inline]
    pub fn start(&self, phase: Phase) -> PhaseGuard<'_> {
        let started = if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        PhaseGuard {
            times: self,
            phase,
            started,
        }
    }

    /// Times a closure and attributes it to `phase`.
    #[inline]
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let guard = self.start(phase);
        let r = f();
        guard.finish();
        r
    }

    /// Adds a pre-measured duration to `phase`.
    #[inline]
    pub fn add(&self, phase: Phase, elapsed: Duration) {
        if self.is_enabled() {
            self.nanos[phase.index()].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Captures the accumulated times.
    pub fn snapshot(&self) -> PhaseSnapshot {
        let mut nanos = [0u64; 8];
        for (slot, atomic) in nanos.iter_mut().zip(&self.nanos) {
            *slot = atomic.load(Ordering::Relaxed);
        }
        PhaseSnapshot { nanos }
    }

    /// Resets all accumulators to zero.
    pub fn reset(&self) {
        for atomic in &self.nanos {
            atomic.store(0, Ordering::Relaxed);
        }
    }

    /// Atomically swaps every accumulator to zero and returns the final
    /// values — `reset` with a reading. Per-phase atomic: a concurrent
    /// `add` lands in exactly one of {returned snapshot, post-drain
    /// accumulators}.
    pub fn drain(&self) -> PhaseSnapshot {
        let mut nanos = [0u64; 8];
        for (slot, atomic) in nanos.iter_mut().zip(&self.nanos) {
            *slot = atomic.swap(0, Ordering::Relaxed);
        }
        PhaseSnapshot { nanos }
    }
}

/// RAII guard returned by [`PhaseTimes::start`].
///
/// Dropping the guard records the elapsed time; [`PhaseGuard::finish`] does
/// the same but reads more clearly at call sites.
#[derive(Debug)]
#[must_use = "dropping immediately records ~0ns"]
pub struct PhaseGuard<'a> {
    times: &'a PhaseTimes,
    phase: Phase,
    started: Option<Instant>,
}

impl PhaseGuard<'_> {
    /// Stops the clock and records the elapsed time.
    #[inline]
    pub fn finish(self) {
        // Work happens in Drop.
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.times.add(self.phase, started.elapsed());
        }
    }
}

/// A point-in-time copy of [`PhaseTimes`], renderable as a Table 1 row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    nanos: [u64; 8],
}

impl PhaseSnapshot {
    /// Nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Duration attributed to `phase`.
    pub fn duration(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos(phase))
    }

    /// Sum over all phases (the paper's `total` column).
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Share of `phase` in the total, in `[0, 1]`; `0` for an empty total.
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / total as f64
        }
    }

    /// Phase-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        let mut nanos = [0u64; 8];
        for (i, slot) in nanos.iter_mut().enumerate() {
            *slot = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        PhaseSnapshot { nanos }
    }

    /// Renders a `label: T ms (p%)` sequence matching Table 1's layout.
    pub fn table_row(&self) -> String {
        let mut out = String::new();
        for phase in Phase::ALL {
            let ms = self.nanos(phase) as f64 / 1e6;
            let pct = self.share(phase) * 100.0;
            out.push_str(&format!("{}={ms:.1}ms({pct:.1}%) ", phase.label()));
        }
        out.push_str(&format!("total={:.1}ms", self.total_nanos() as f64 / 1e6));
        out
    }
}

impl fmt::Display for PhaseSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = PhaseTimes::disabled();
        t.time(Phase::Lock, || std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(t.snapshot().total_nanos(), 0);
    }

    #[test]
    fn enabled_records_elapsed_time() {
        let t = PhaseTimes::enabled();
        t.time(Phase::Await, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        let snap = t.snapshot();
        assert!(snap.nanos(Phase::Await) >= 1_000_000);
        assert_eq!(snap.nanos(Phase::Lock), 0);
    }

    #[test]
    fn add_accumulates_manually() {
        let t = PhaseTimes::enabled();
        t.add(Phase::TagManager, Duration::from_nanos(500));
        t.add(Phase::TagManager, Duration::from_nanos(250));
        assert_eq!(t.snapshot().nanos(Phase::TagManager), 750);
    }

    #[test]
    fn toggling_enabled_at_runtime() {
        let t = PhaseTimes::disabled();
        t.add(Phase::Other, Duration::from_nanos(10));
        assert_eq!(t.snapshot().total_nanos(), 0);
        t.set_enabled(true);
        t.add(Phase::Other, Duration::from_nanos(10));
        assert_eq!(t.snapshot().nanos(Phase::Other), 10);
    }

    #[test]
    fn shares_sum_to_one() {
        let t = PhaseTimes::enabled();
        t.add(Phase::Await, Duration::from_nanos(600));
        t.add(Phase::Lock, Duration::from_nanos(300));
        t.add(Phase::Other, Duration::from_nanos(100));
        let snap = t.snapshot();
        let sum: f64 = Phase::ALL.iter().map(|&p| snap.share(p)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_of_empty_total_is_zero() {
        let snap = PhaseSnapshot::default();
        assert_eq!(snap.share(Phase::Await), 0.0);
    }

    #[test]
    fn since_is_phase_wise() {
        let t = PhaseTimes::enabled();
        t.add(Phase::Lock, Duration::from_nanos(100));
        let first = t.snapshot();
        t.add(Phase::Lock, Duration::from_nanos(50));
        t.add(Phase::Await, Duration::from_nanos(70));
        let diff = t.snapshot().since(&first);
        assert_eq!(diff.nanos(Phase::Lock), 50);
        assert_eq!(diff.nanos(Phase::Await), 70);
    }

    #[test]
    fn reset_zeroes() {
        let t = PhaseTimes::enabled();
        t.add(Phase::Await, Duration::from_nanos(10));
        t.reset();
        assert_eq!(t.snapshot().total_nanos(), 0);
    }

    #[test]
    fn table_row_mentions_every_label() {
        let snap = PhaseTimes::enabled().snapshot();
        let row = snap.table_row();
        for phase in Phase::ALL {
            assert!(row.contains(phase.label()), "missing {}", phase.label());
        }
        assert!(row.contains("total="));
    }

    #[test]
    fn phase_labels_are_unique() {
        let mut labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::ALL.len());
    }
}
