//! Integration coverage for the metrics utilities that the bench
//! harness leans on: context-switch deltas, the runtime phase-timing
//! toggle, and — property-tested against a sorted-vector oracle — the
//! log-linear histogram's quantiles.

use std::time::Duration;

use autosynch_metrics::ctx::CtxSwitches;
use autosynch_metrics::hist::{bucket_index, bucket_upper_bound, LogLinearHist, SUB_BITS};
use autosynch_metrics::phase::{Phase, PhaseTimes};
use proptest::prelude::*;

#[test]
fn ctx_since_subtracts_component_wise_and_saturates() {
    let before = CtxSwitches {
        voluntary: 10,
        involuntary: 4,
    };
    let after = CtxSwitches {
        voluntary: 25,
        involuntary: 3, // e.g. a sample from a different thread
    };
    let delta = after.since(&before);
    assert_eq!(delta.voluntary, 15);
    assert_eq!(delta.involuntary, 0, "negative deltas clamp to zero");
    assert_eq!(delta.total(), 15);
    assert_eq!(before.total(), 14);
    assert_eq!(CtxSwitches::default().total(), 0);
}

#[test]
fn ctx_display_names_both_components() {
    let s = CtxSwitches {
        voluntary: 7,
        involuntary: 2,
    }
    .to_string();
    assert!(s.contains("voluntary=7"), "{s}");
    assert!(s.contains("involuntary=2"), "{s}");
}

#[test]
fn phase_toggle_gates_recording_at_runtime() {
    let phases = PhaseTimes::disabled();
    assert!(!phases.is_enabled());

    // Disabled: guards, closures and manual adds are all no-ops.
    phases.start(Phase::Lock).finish();
    phases.time(Phase::Await, std::thread::yield_now);
    phases.add(Phase::RelaySignal, Duration::from_micros(5));
    assert_eq!(phases.snapshot().total_nanos(), 0);

    // Flipped on mid-flight (the run_timed pattern): recording starts.
    phases.set_enabled(true);
    assert!(phases.is_enabled());
    phases.add(Phase::RelaySignal, Duration::from_micros(5));
    let snap = phases.snapshot();
    assert_eq!(snap.nanos(Phase::RelaySignal), 5_000);
    assert_eq!(snap.total_nanos(), 5_000);

    // Flipped back off: the accumulated total freezes.
    phases.set_enabled(false);
    phases.add(Phase::RelaySignal, Duration::from_micros(5));
    assert_eq!(phases.snapshot().nanos(Phase::RelaySignal), 5_000);

    // `drain` empties while preserving the final reading.
    phases.set_enabled(true);
    let last = phases.drain();
    assert_eq!(last.nanos(Phase::RelaySignal), 5_000);
    assert_eq!(phases.snapshot().total_nanos(), 0);
}

/// The oracle: exact nearest-rank quantile over the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hist_quantiles_bound_the_exact_order_statistic(
        samples in prop::collection::vec(0u64..2_000_000, 1..400),
        qi in 0usize..4,
    ) {
        let q = [0.50, 0.90, 0.99, 0.999][qi];
        let hist = LogLinearHist::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let reported = hist.snapshot().quantile(q);
        // Never under-reported: the histogram answers with its
        // bucket's upper bound...
        prop_assert!(reported >= exact, "q{q}: {reported} < exact {exact}");
        // ...and never past the exact value's own bucket bound, i.e.
        // within the log-linear relative-error envelope (~2^-SUB_BITS).
        prop_assert!(
            reported <= bucket_upper_bound(bucket_index(exact)),
            "q{q}: {reported} above the bucket bound of exact {exact}"
        );
    }

    #[test]
    fn hist_count_sum_and_max_match_the_samples(
        samples in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let hist = LogLinearHist::new();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum(), samples.iter().sum::<u64>());
        if let Some(&max) = samples.iter().max() {
            prop_assert!(snap.max_bound() >= max);
            prop_assert!(snap.max_bound() <= bucket_upper_bound(bucket_index(max)));
        }
    }
}

#[test]
fn hist_relative_error_envelope_is_tight() {
    // The documented accuracy claim, spelled out at one point: with
    // SUB_BITS=5, a bucket spans at most 1/32 of its value range.
    let v: u64 = 1_000_000;
    let bound = bucket_upper_bound(bucket_index(v));
    let width = (bound + 1) >> SUB_BITS.min(63);
    assert!(bound >= v);
    assert!(
        bound - v < width.max(1) * 2,
        "bound {bound} too far from {v}"
    );
}
