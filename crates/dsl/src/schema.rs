//! Shared-variable schemas and their runtime environments.
//!
//! In the paper the shared variables of an `AutoSynch class` are its Java
//! fields; here a [`Schema`] declares the named integer variables of a
//! monitor and an [`Env`] is the runtime state holding their values. The
//! schema is what lets the compiler classify a variable reference as
//! *shared* (in the schema) or *local* (bound at `waituntil` time) —
//! Defs. 1 and 5 of the paper.

use std::collections::HashMap;
use std::fmt;

/// The declaration of a monitor's shared integer variables.
///
/// # Examples
///
/// ```
/// use autosynch_dsl::schema::Schema;
///
/// let schema = Schema::new(&["count", "cap"]);
/// assert_eq!(schema.slot("count"), Some(0));
/// assert_eq!(schema.slot("num"), None); // a local, not shared
/// ```
#[derive(Debug, Clone)]
pub struct Schema {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Declares shared variables in slot order.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — a schema bug worth failing fast on.
    pub fn new(names: &[&str]) -> Self {
        let mut index = HashMap::new();
        for (i, name) in names.iter().enumerate() {
            let previous = index.insert((*name).to_owned(), i);
            assert!(previous.is_none(), "duplicate shared variable `{name}`");
        }
        Schema {
            names: names.iter().map(|n| (*n).to_owned()).collect(),
            index,
        }
    }

    /// The slot of a shared variable, or `None` when the name is not
    /// shared.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name stored in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Number of shared variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema declares no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(slot, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }

    /// Creates a zeroed environment for this schema.
    pub fn env(&self) -> Env {
        Env {
            values: vec![0; self.names.len()],
        }
    }
}

/// The runtime values of a schema's shared variables — the monitor state
/// of a [`crate::monitor::DslMonitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    values: Vec<i64>,
}

impl Env {
    /// Creates an environment with `len` zeroed slots.
    pub fn zeroed(len: usize) -> Self {
        Env {
            values: vec![0; len],
        }
    }

    /// Reads slot `slot` (0 when out of range, so expression closures
    /// never panic while the monitor lock is held).
    pub fn get(&self, slot: usize) -> i64 {
        self.values.get(slot).copied().unwrap_or(0)
    }

    /// Writes slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set(&mut self, slot: usize, value: i64) {
        self.values[slot] = value;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the environment has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_follow_declaration_order() {
        let s = Schema::new(&["a", "b", "c"]);
        assert_eq!(s.slot("a"), Some(0));
        assert_eq!(s.slot("c"), Some(2));
        assert_eq!(s.name(1), "b");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        Schema::new(&["x", "x"]);
    }

    #[test]
    fn env_read_write() {
        let s = Schema::new(&["x", "y"]);
        let mut env = s.env();
        assert_eq!(env.get(0), 0);
        env.set(1, 42);
        assert_eq!(env.get(1), 42);
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn env_get_out_of_range_is_zero() {
        let env = Env::zeroed(1);
        assert_eq!(env.get(99), 0);
    }

    #[test]
    fn iter_and_display() {
        let s = Schema::new(&["p", "q"]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(0, "p"), (1, "q")]);
        let mut env = s.env();
        env.set(0, 3);
        assert_eq!(env.to_string(), "[3, 0]");
    }
}
