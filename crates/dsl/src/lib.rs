//! A textual `waituntil` predicate compiler — the preprocessor half of
//! AutoSynch.
//!
//! The PLDI'13 system ships a JavaCC preprocessor that rewrites
//! `AutoSynch class` source: it parses each `waituntil(expr)` condition,
//! converts it to DNF, splits comparisons into *shared expression* vs
//! *local expression* (rearranging linear forms like `x − a == y + b`
//! into `x − y == a + b`), and registers the result with the condition
//! manager. This crate reproduces that pipeline for a small expression
//! language:
//!
//! ```text
//! expr  := or
//! or    := and ("||" and)*
//! and   := cmp ("&&" cmp)*
//! cmp   := sum (("=="|"!="|"<"|"<="|">"|">=") sum)?
//! sum   := prod (("+"|"-") prod)*
//! prod  := unary ("*" unary)*
//! unary := "-" unary | "!" unary | atom
//! atom  := INT | IDENT | "true" | "false" | "(" expr ")"
//! ```
//!
//! Stages: [`lexer`] → [`parser`] → [`analyze`] (int/bool typing,
//! shared/local variable classification against a [`schema::Schema`]) →
//! [`lower`] (linear canonicalization and lowering to the tagged
//! predicate representation of `autosynch-predicate`).
//!
//! The result plugs straight into the monitor: [`monitor::DslMonitor`]
//! wraps an [`autosynch::Monitor`] whose state is a [`schema::Env`] of
//! named integer variables, and its `wait_until` takes source text plus
//! local-variable bindings — the bindings are the globalization snapshot.
//!
//! Going further, [`class`] compiles whole `monitor Name { var ...;
//! method ...(..) { ... } }` declarations — the literal shape of the
//! paper's `AutoSynch class` (Fig. 1, right column) — and executes their
//! methods under the monitor with an interpreter for assignments,
//! `if`/`else` and `return`.
//!
//! # Examples
//!
//! ```
//! use autosynch_dsl::monitor::DslMonitor;
//! use autosynch_dsl::schema::Schema;
//!
//! let m = DslMonitor::new(Schema::new(&["count", "cap"]));
//! m.enter(|g| {
//!     g.set("cap", 64);
//!     g.set("count", 50);
//! });
//! // A consumer that needs 48 items: "count >= num" with num = 48.
//! m.enter(|g| {
//!     g.wait_until("count >= num", &[("num", 48)]).unwrap();
//!     let c = g.get("count");
//!     g.set("count", c - 48);
//! });
//! assert_eq!(m.enter(|g| g.get("count")), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod ast;
pub mod class;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod monitor;
pub mod parser;
pub mod schema;
pub mod token;

pub use class::{ClassDef, ClassMonitor};
pub use error::DslError;
pub use monitor::{DslGuard, DslMonitor};
pub use schema::{Env, Schema};
