//! `AutoSynch class` declarations — the full preprocessor analog.
//!
//! The paper's JavaCC preprocessor rewrites whole classes: the
//! `AutoSynch` modifier makes every member function mutually exclusive
//! and replaces each `waituntil(expr)` with condition-manager calls
//! (Figs. 5–6). This module provides the same surface for a small
//! statement language:
//!
//! ```text
//! monitor BoundedBuffer {
//!     var count, cap;
//!
//!     method init(capacity) {
//!         cap = capacity;
//!     }
//!
//!     method put(n) {
//!         waituntil(count + n <= cap);
//!         count = count + n;
//!     }
//!
//!     method take(n) {
//!         waituntil(count >= n);
//!         count = count - n;
//!         return count;
//!     }
//! }
//! ```
//!
//! The statement language covers `waituntil(cond);`, assignment to
//! shared variables, `if`/`else`, `while`, and `return`. A `waituntil`
//! inside a `while` releases the monitor while blocked, so other
//! threads can advance the loop condition — the building block for
//! drain-in-a-loop methods.
//!
//! [`parse_class`] produces a [`ClassDef`]; [`ClassMonitor::instantiate`]
//! validates it (unique names, assignable targets, well-typed
//! statements), builds the shared-variable [`Schema`], and pre-compiles
//! every `waituntil` body for each call's bindings. Every method call
//! runs under the monitor's mutual exclusion with its parameters as the
//! globalization snapshot — exactly the execution model of Fig. 1's
//! right-hand column.
//!
//! Lowered methods run on the v2 monitor API: each `waituntil` waits on
//! an interned compiled condition (one `Cond` per distinct structural
//! key, reused across calls), and each assignment names exactly the
//! shared expressions reading the assigned slot, keeping the
//! change-driven relay diffs precise with zero annotations in the class
//! source.
//!
//! # Examples
//!
//! ```
//! use autosynch_dsl::class::{parse_class, ClassMonitor};
//!
//! let class = parse_class(
//!     "monitor Cell {
//!          var value;
//!          method put(v) { waituntil(value == 0); value = v; }
//!          method take() { waituntil(value != 0); return value; }
//!      }",
//! ).unwrap();
//! let cell = ClassMonitor::instantiate(class).unwrap();
//! cell.call("put", &[42]).unwrap();
//! assert_eq!(cell.call("take", &[]).unwrap(), Some(42));
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::analyze::{infer, Ty};
use crate::ast::Expr;
use crate::error::DslError;
use crate::lexer::lex;
use crate::lower::{eval_bool, eval_int};
use crate::monitor::DslMonitor;
use crate::parser::Parser;
use crate::schema::Schema;
use crate::token::{Span, TokenKind};

/// A statement of a method body.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `waituntil(cond);` — the paper's blocking primitive.
    WaitUntil(Expr),
    /// `name = expr;` — assignment to a shared variable.
    Assign {
        /// The shared variable being assigned.
        target: String,
        /// Location of the target (for diagnostics).
        target_span: Span,
        /// The assigned value.
        value: Expr,
    },
    /// `if (cond) { ... } else { ... }` — the else branch may be empty.
    If {
        /// The branch condition.
        cond: Expr,
        /// Statements run when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements run otherwise.
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { ... }` — re-evaluates under the monitor each
    /// iteration; a `waituntil` in the body releases the monitor as
    /// usual, so other threads can change the loop condition.
    While {
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;` — ends the call with a value.
    Return(Expr),
}

/// One method of a monitor class.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// The method name.
    pub name: String,
    /// Parameter names — the method's local variables.
    pub params: Vec<String>,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A parsed `monitor` declaration.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// The class name.
    pub name: String,
    /// Declared shared variables, in declaration order.
    pub vars: Vec<String>,
    /// Declared methods.
    pub methods: Vec<MethodDef>,
}

/// Parses a `monitor` declaration.
///
/// # Errors
///
/// Lexer and parser diagnostics with spans into `source`.
pub fn parse_class(source: &str) -> Result<ClassDef, DslError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let class = parse_monitor(&mut parser)?;
    parser.expect_eof()?;
    Ok(class)
}

fn expect(parser: &mut Parser, kind: TokenKind, what: &'static str) -> Result<Span, DslError> {
    let t = parser.advance();
    if t.kind == kind {
        Ok(t.span)
    } else {
        Err(DslError::UnexpectedToken {
            found: t.kind.describe(),
            expected: what,
            span: t.span,
        })
    }
}

fn expect_ident(parser: &mut Parser, what: &'static str) -> Result<(String, Span), DslError> {
    let t = parser.advance();
    match t.kind {
        TokenKind::Ident(name) => Ok((name, t.span)),
        other => Err(DslError::UnexpectedToken {
            found: other.describe(),
            expected: what,
            span: t.span,
        }),
    }
}

fn parse_monitor(parser: &mut Parser) -> Result<ClassDef, DslError> {
    expect(parser, TokenKind::KwMonitor, "`monitor`")?;
    let (name, _) = expect_ident(parser, "a class name")?;
    expect(parser, TokenKind::LBrace, "`{`")?;
    let mut vars = Vec::new();
    let mut methods = Vec::new();
    loop {
        match parser.peek().kind {
            TokenKind::RBrace => {
                parser.advance();
                break;
            }
            TokenKind::KwVar => {
                parser.advance();
                loop {
                    let (var, _) = expect_ident(parser, "a variable name")?;
                    vars.push(var);
                    match parser.peek().kind {
                        TokenKind::Comma => {
                            parser.advance();
                        }
                        _ => break,
                    }
                }
                expect(parser, TokenKind::Semi, "`;`")?;
            }
            TokenKind::KwMethod => {
                methods.push(parse_method(parser)?);
            }
            _ => {
                let t = parser.advance();
                return Err(DslError::UnexpectedToken {
                    found: t.kind.describe(),
                    expected: "`var`, `method` or `}`",
                    span: t.span,
                });
            }
        }
    }
    Ok(ClassDef {
        name,
        vars,
        methods,
    })
}

fn parse_method(parser: &mut Parser) -> Result<MethodDef, DslError> {
    expect(parser, TokenKind::KwMethod, "`method`")?;
    let (name, _) = expect_ident(parser, "a method name")?;
    expect(parser, TokenKind::LParen, "`(`")?;
    let mut params = Vec::new();
    if parser.peek().kind != TokenKind::RParen {
        loop {
            let (param, _) = expect_ident(parser, "a parameter name")?;
            params.push(param);
            match parser.peek().kind {
                TokenKind::Comma => {
                    parser.advance();
                }
                _ => break,
            }
        }
    }
    expect(parser, TokenKind::RParen, "`)`")?;
    let body = parse_block(parser)?;
    Ok(MethodDef { name, params, body })
}

fn parse_block(parser: &mut Parser) -> Result<Vec<Stmt>, DslError> {
    expect(parser, TokenKind::LBrace, "`{`")?;
    let mut stmts = Vec::new();
    while parser.peek().kind != TokenKind::RBrace {
        stmts.push(parse_stmt(parser)?);
    }
    parser.advance(); // consume `}`
    Ok(stmts)
}

fn parse_stmt(parser: &mut Parser) -> Result<Stmt, DslError> {
    match parser.peek().kind.clone() {
        TokenKind::KwWaituntil => {
            parser.advance();
            expect(parser, TokenKind::LParen, "`(`")?;
            let cond = parser.parse_or()?;
            expect(parser, TokenKind::RParen, "`)`")?;
            expect(parser, TokenKind::Semi, "`;`")?;
            Ok(Stmt::WaitUntil(cond))
        }
        TokenKind::KwReturn => {
            parser.advance();
            let value = parser.parse_or()?;
            expect(parser, TokenKind::Semi, "`;`")?;
            Ok(Stmt::Return(value))
        }
        TokenKind::KwIf => {
            parser.advance();
            expect(parser, TokenKind::LParen, "`(`")?;
            let cond = parser.parse_or()?;
            expect(parser, TokenKind::RParen, "`)`")?;
            let then_branch = parse_block(parser)?;
            let else_branch = if parser.peek().kind == TokenKind::KwElse {
                parser.advance();
                parse_block(parser)?
            } else {
                Vec::new()
            };
            Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            })
        }
        TokenKind::KwWhile => {
            parser.advance();
            expect(parser, TokenKind::LParen, "`(`")?;
            let cond = parser.parse_or()?;
            expect(parser, TokenKind::RParen, "`)`")?;
            let body = parse_block(parser)?;
            Ok(Stmt::While { cond, body })
        }
        TokenKind::Ident(_) => {
            let (target, target_span) = expect_ident(parser, "an assignment target")?;
            expect(parser, TokenKind::Assign, "`=`")?;
            let value = parser.parse_or()?;
            expect(parser, TokenKind::Semi, "`;`")?;
            Ok(Stmt::Assign {
                target,
                target_span,
                value,
            })
        }
        other => {
            let span = parser.peek().span;
            parser.advance();
            Err(DslError::UnexpectedToken {
                found: other.describe(),
                expected: "a statement",
                span,
            })
        }
    }
}

// --- validation ------------------------------------------------------------

fn check_unique<'a>(
    what: &'static str,
    names: impl Iterator<Item = &'a str>,
) -> Result<(), DslError> {
    let mut seen = Vec::new();
    for name in names {
        if seen.contains(&name) {
            return Err(DslError::Duplicate {
                what,
                name: name.to_owned(),
                span: Span::new(0, 0),
            });
        }
        seen.push(name);
    }
    Ok(())
}

fn check_vars_known(expr: &Expr, schema: &Schema, params: &[String]) -> Result<(), DslError> {
    for name in expr.variables() {
        if schema.slot(name).is_none() && !params.iter().any(|p| p == name) {
            return Err(DslError::UnknownVariable {
                name: name.to_owned(),
                span: expr.span,
            });
        }
    }
    Ok(())
}

fn check_stmt(stmt: &Stmt, schema: &Schema, params: &[String]) -> Result<(), DslError> {
    match stmt {
        Stmt::WaitUntil(cond) => {
            check_vars_known(cond, schema, params)?;
            expect_ty(cond, Ty::Bool)
        }
        Stmt::Assign {
            target,
            target_span,
            value,
        } => {
            if schema.slot(target).is_none() {
                return Err(DslError::InvalidAssignTarget {
                    name: target.clone(),
                    span: *target_span,
                });
            }
            check_vars_known(value, schema, params)?;
            expect_ty(value, Ty::Int)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            check_vars_known(cond, schema, params)?;
            expect_ty(cond, Ty::Bool)?;
            for stmt in then_branch.iter().chain(else_branch) {
                check_stmt(stmt, schema, params)?;
            }
            Ok(())
        }
        Stmt::While { cond, body } => {
            check_vars_known(cond, schema, params)?;
            expect_ty(cond, Ty::Bool)?;
            for stmt in body {
                check_stmt(stmt, schema, params)?;
            }
            Ok(())
        }
        Stmt::Return(value) => {
            check_vars_known(value, schema, params)?;
            expect_ty(value, Ty::Int)
        }
    }
}

fn expect_ty(expr: &Expr, want: Ty) -> Result<(), DslError> {
    let got = infer(expr)?;
    if got == want {
        Ok(())
    } else {
        Err(DslError::TypeMismatch {
            expected: match want {
                Ty::Bool => "a boolean",
                Ty::Int => "an integer",
            },
            found: match got {
                Ty::Bool => "a boolean",
                Ty::Int => "an integer",
            },
            span: expr.span,
        })
    }
}

// --- runtime ---------------------------------------------------------------

/// Error from [`ClassMonitor::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// No method with that name.
    UnknownMethod(String),
    /// Wrong number of arguments.
    ArityMismatch {
        /// The method.
        method: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// A `waituntil` condition failed to compile at call time.
    Dsl(DslError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::UnknownMethod(name) => write!(f, "no method named `{name}`"),
            CallError::ArityMismatch {
                method,
                expected,
                found,
            } => write!(
                f,
                "method `{method}` takes {expected} arguments but {found} were supplied"
            ),
            CallError::Dsl(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<DslError> for CallError {
    fn from(err: DslError) -> Self {
        CallError::Dsl(err)
    }
}

/// A live monitor instance of a validated class.
#[derive(Debug)]
pub struct ClassMonitor {
    class: ClassDef,
    monitor: DslMonitor,
}

impl ClassMonitor {
    /// Validates the class and creates an instance with all shared
    /// variables zeroed.
    ///
    /// # Errors
    ///
    /// Duplicate definitions, unknown variables, non-assignable targets
    /// and type errors are reported with spans.
    pub fn instantiate(class: ClassDef) -> Result<Self, DslError> {
        check_unique("shared variable", class.vars.iter().map(String::as_str))?;
        check_unique("method", class.methods.iter().map(|m| m.name.as_str()))?;
        let var_names: Vec<&str> = class.vars.iter().map(String::as_str).collect();
        let schema = Schema::new(&var_names);
        for method in &class.methods {
            check_unique("parameter", method.params.iter().map(String::as_str))?;
            for param in &method.params {
                if schema.slot(param).is_some() {
                    return Err(DslError::Duplicate {
                        what: "parameter (shadows a shared variable)",
                        name: param.clone(),
                        span: Span::new(0, 0),
                    });
                }
            }
            for stmt in &method.body {
                check_stmt(stmt, &schema, &method.params)?;
            }
        }
        Ok(ClassMonitor {
            monitor: DslMonitor::new(schema),
            class,
        })
    }

    /// The class definition.
    pub fn class(&self) -> &ClassDef {
        &self.class
    }

    /// The underlying DSL monitor (stats, direct variable access).
    pub fn monitor(&self) -> &DslMonitor {
        &self.monitor
    }

    /// Calls a method under the monitor's mutual exclusion; `args` bind
    /// to the parameters and become the globalization snapshot of every
    /// `waituntil` in the body. Returns the method's `return` value, if
    /// it executed one.
    ///
    /// # Errors
    ///
    /// Unknown method, arity mismatch, or condition-compilation
    /// failures.
    pub fn call(&self, method: &str, args: &[i64]) -> Result<Option<i64>, CallError> {
        let def = self
            .class
            .methods
            .iter()
            .find(|m| m.name == method)
            .ok_or_else(|| CallError::UnknownMethod(method.to_owned()))?;
        if def.params.len() != args.len() {
            return Err(CallError::ArityMismatch {
                method: method.to_owned(),
                expected: def.params.len(),
                found: args.len(),
            });
        }
        let locals: HashMap<String, i64> = def
            .params
            .iter()
            .cloned()
            .zip(args.iter().copied())
            .collect();

        self.monitor.enter(|g| {
            let schema = self.monitor.schema();
            let mut result = None;
            for stmt in &def.body {
                if exec_stmt(stmt, schema, &locals, g, &self.monitor, &mut result)? {
                    break;
                }
            }
            Ok(result)
        })
    }
}

/// Executes one statement; returns `Ok(true)` when a `return` fired.
fn exec_stmt(
    stmt: &Stmt,
    schema: &Schema,
    locals: &HashMap<String, i64>,
    g: &mut crate::monitor::DslGuard<'_, '_>,
    monitor: &DslMonitor,
    result: &mut Option<i64>,
) -> Result<bool, CallError> {
    match stmt {
        Stmt::WaitUntil(cond) => {
            let pred = monitor.compile_ast(cond, locals)?;
            g.wait_until_compiled(pred);
            Ok(false)
        }
        Stmt::Assign { target, value, .. } => {
            let slot = schema.slot(target).expect("validated at instantiate");
            let v = g.with_env(|env| eval_int(value, schema, env, locals));
            g.set_slot(slot, v);
            Ok(false)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let taken = g.with_env(|env| eval_bool(cond, schema, env, locals));
            let branch = if taken { then_branch } else { else_branch };
            for stmt in branch {
                if exec_stmt(stmt, schema, locals, g, monitor, result)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Stmt::While { cond, body } => {
            while g.with_env(|env| eval_bool(cond, schema, env, locals)) {
                for stmt in body {
                    if exec_stmt(stmt, schema, locals, g, monitor, result)? {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
        Stmt::Return(value) => {
            *result = Some(g.with_env(|env| eval_int(value, schema, env, locals)));
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    const BOUNDED_BUFFER: &str = "
        monitor BoundedBuffer {
            var count, cap;

            method init(capacity) {
                cap = capacity;
            }

            method put(n) {
                waituntil(count + n <= cap);
                count = count + n;
            }

            method take(n) {
                waituntil(count >= n);
                count = count - n;
                return count;
            }
        }
    ";

    #[test]
    fn parses_the_bounded_buffer_class() {
        let class = parse_class(BOUNDED_BUFFER).unwrap();
        assert_eq!(class.name, "BoundedBuffer");
        assert_eq!(class.vars, ["count", "cap"]);
        assert_eq!(
            class
                .methods
                .iter()
                .map(|m| m.name.as_str())
                .collect::<Vec<_>>(),
            ["init", "put", "take"]
        );
        assert_eq!(class.methods[1].params, ["n"]);
    }

    #[test]
    fn sequential_calls_execute_statements() {
        let m = ClassMonitor::instantiate(parse_class(BOUNDED_BUFFER).unwrap()).unwrap();
        m.call("init", &[10]).unwrap();
        assert_eq!(m.call("put", &[4]).unwrap(), None);
        assert_eq!(m.call("take", &[3]).unwrap(), Some(1));
    }

    #[test]
    fn concurrent_producer_consumer_through_the_class() {
        let m = Arc::new(ClassMonitor::instantiate(parse_class(BOUNDED_BUFFER).unwrap()).unwrap());
        m.call("init", &[8]).unwrap();
        let producer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for round in 0..100i64 {
                    m.call("put", &[1 + round % 4]).unwrap();
                }
            })
        };
        let consumer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for round in 0..100i64 {
                    m.call("take", &[1 + round % 4]).unwrap();
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(m.monitor().enter(|g| g.get("count")), 0);
        assert_eq!(m.monitor().stats_snapshot().counters.broadcasts, 0);
    }

    #[test]
    fn if_else_and_return() {
        let class = parse_class(
            "monitor Clamp {
                var level;
                method add(n, max) {
                    if (level + n > max) { level = max; } else { level = level + n; }
                    return level;
                }
            }",
        )
        .unwrap();
        let m = ClassMonitor::instantiate(class).unwrap();
        assert_eq!(m.call("add", &[5, 10]).unwrap(), Some(5));
        assert_eq!(m.call("add", &[7, 10]).unwrap(), Some(10));
    }

    #[test]
    fn while_loop_executes_and_terminates() {
        let class = parse_class(
            "monitor Drain {
                var level, drained;
                method fill(n) { level = n; }
                method drain_by(step) {
                    while (level >= step) {
                        level = level - step;
                        drained = drained + step;
                    }
                    return drained;
                }
            }",
        )
        .unwrap();
        let m = ClassMonitor::instantiate(class).unwrap();
        m.call("fill", &[17]).unwrap();
        assert_eq!(m.call("drain_by", &[5]).unwrap(), Some(15));
        assert_eq!(m.monitor().enter(|g| g.get("level")), 2);
    }

    #[test]
    fn while_with_zero_iterations_skips_the_body() {
        let class = parse_class(
            "monitor Skip {
                var x;
                method run() {
                    while (x > 0) { x = x - 1; }
                    return x;
                }
            }",
        )
        .unwrap();
        let m = ClassMonitor::instantiate(class).unwrap();
        assert_eq!(m.call("run", &[]).unwrap(), Some(0));
    }

    #[test]
    fn return_inside_while_short_circuits() {
        let class = parse_class(
            "monitor FindMultiple {
                var probe;
                method first_multiple_of(k, limit) {
                    probe = k;
                    while (probe <= limit) {
                        if (probe >= 10) { return probe; }
                        probe = probe + k;
                    }
                    return 0 - 1;
                }
            }",
        )
        .unwrap();
        let m = ClassMonitor::instantiate(class).unwrap();
        assert_eq!(m.call("first_multiple_of", &[4, 100]).unwrap(), Some(12));
        assert_eq!(m.call("first_multiple_of", &[3, 5]).unwrap(), Some(-1));
    }

    #[test]
    fn waituntil_inside_while_releases_the_monitor() {
        // A consumer drains items one at a time in a loop, blocking
        // inside the loop body; a producer refills from outside. The
        // waituntil must release the monitor each iteration or the
        // producer could never run.
        let class = parse_class(
            "monitor Pipeline {
                var items, consumed;
                method produce() { items = items + 1; }
                method consume_n(n) {
                    while (consumed < n) {
                        waituntil(items > 0);
                        items = items - 1;
                        consumed = consumed + 1;
                    }
                    return consumed;
                }
            }",
        )
        .unwrap();
        let m = Arc::new(ClassMonitor::instantiate(class).unwrap());
        let consumer = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.call("consume_n", &[25]).unwrap())
        };
        for _ in 0..25 {
            m.call("produce", &[]).unwrap();
        }
        assert_eq!(consumer.join().unwrap(), Some(25));
        assert_eq!(m.monitor().enter(|g| g.get("items")), 0);
        assert_eq!(m.monitor().stats_snapshot().counters.broadcasts, 0);
    }

    #[test]
    fn while_condition_type_errors_are_caught() {
        let class =
            parse_class("monitor M { var a; method f() { while (a + 1) { a = 0; } } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(class),
            Err(DslError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn return_short_circuits() {
        let class = parse_class(
            "monitor Early {
                var x;
                method probe(n) {
                    if (n > 0) { return 1; }
                    x = 99;
                    return 2;
                }
            }",
        )
        .unwrap();
        let m = ClassMonitor::instantiate(class).unwrap();
        assert_eq!(m.call("probe", &[5]).unwrap(), Some(1));
        assert_eq!(m.monitor().enter(|g| g.get("x")), 0, "assignment skipped");
        assert_eq!(m.call("probe", &[0]).unwrap(), Some(2));
        assert_eq!(m.monitor().enter(|g| g.get("x")), 99);
    }

    #[test]
    fn duplicate_definitions_are_rejected() {
        let dup_var = parse_class("monitor M { var a, a; }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(dup_var),
            Err(DslError::Duplicate {
                what: "shared variable",
                ..
            })
        ));
        let dup_method = parse_class("monitor M { var a; method f() { } method f() { } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(dup_method),
            Err(DslError::Duplicate { what: "method", .. })
        ));
        let shadow = parse_class("monitor M { var a; method f(a) { } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(shadow),
            Err(DslError::Duplicate { .. })
        ));
    }

    #[test]
    fn assignment_targets_must_be_shared() {
        let class = parse_class("monitor M { var a; method f(p) { p = 1; } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(class),
            Err(DslError::InvalidAssignTarget { .. })
        ));
    }

    #[test]
    fn type_errors_are_caught_at_instantiation() {
        let class = parse_class("monitor M { var a; method f() { a = (a == 1); } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(class),
            Err(DslError::TypeMismatch { .. })
        ));
        let class = parse_class("monitor M { var a; method f() { waituntil(a + 1); } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(class),
            Err(DslError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_variables_are_caught_at_instantiation() {
        let class = parse_class("monitor M { var a; method f() { a = b; } }").unwrap();
        assert!(matches!(
            ClassMonitor::instantiate(class),
            Err(DslError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn call_errors() {
        let m = ClassMonitor::instantiate(parse_class(BOUNDED_BUFFER).unwrap()).unwrap();
        assert!(matches!(
            m.call("nope", &[]),
            Err(CallError::UnknownMethod(_))
        ));
        assert!(matches!(
            m.call("put", &[1, 2]),
            Err(CallError::ArityMismatch {
                expected: 1,
                found: 2,
                ..
            })
        ));
        assert!(m
            .call("nope", &[])
            .unwrap_err()
            .to_string()
            .contains("nope"));
    }

    #[test]
    fn parse_errors_have_spans() {
        for bad in [
            "monitor { }",
            "monitor M { var ; }",
            "monitor M { method f( { } }",
            "monitor M { method f() { waituntil(x) } }", // missing ;
            "monitor M { stray }",
        ] {
            let err = parse_class(bad).unwrap_err();
            assert!(err.span().is_some(), "{bad} should have a spanned error");
        }
    }

    #[test]
    fn multiple_waituntils_in_one_method() {
        let class = parse_class(
            "monitor TwoPhase {
                var a, b;
                method go() {
                    waituntil(a > 0);
                    b = b + 1;
                    waituntil(b >= 2);
                    return b;
                }
                method arm() { a = 1; }
                method boost() { b = b + 1; }
            }",
        )
        .unwrap();
        let m = Arc::new(ClassMonitor::instantiate(class).unwrap());
        let runner = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.call("go", &[]).unwrap())
        };
        thread::sleep(std::time::Duration::from_millis(20));
        m.call("arm", &[]).unwrap();
        thread::sleep(std::time::Duration::from_millis(20));
        m.call("boost", &[]).unwrap();
        let result = runner.join().unwrap();
        assert_eq!(result, Some(2));
    }
}
