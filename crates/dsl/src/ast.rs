//! The surface AST of the `waituntil` expression language.

use std::fmt;

use crate::token::Span;

/// Binary operators, arithmetic and boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether this is a comparison operator.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this is an arithmetic operator.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }

    /// The source-text symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Boolean negation `!`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The node's shape.
    pub kind: ExprKind,
    /// Its source location.
    pub span: Span,
}

/// The shape of an expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference (shared or local — resolved by analysis).
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Creates a node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Collects every variable name mentioned, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match &self.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) => {}
            ExprKind::Var(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            ExprKind::Unary(_, inner) => inner.collect_vars(out),
            ExprKind::Binary(_, lhs, rhs) => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Fully parenthesized pretty-printer; `parse(print(e))` is
    /// structurally `e` (modulo spans), which the round-trip property
    /// test exercises.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Int(v) => write!(f, "{v}"),
            ExprKind::Bool(b) => write!(f, "{b}"),
            ExprKind::Var(name) => f.write_str(name),
            ExprKind::Unary(op, inner) => write!(f, "{op}({inner})"),
            ExprKind::Binary(op, lhs, rhs) => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::new(0, 0)
    }

    #[test]
    fn variables_are_deduped_in_order() {
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::And,
                Box::new(Expr::new(
                    ExprKind::Binary(
                        BinOp::Lt,
                        Box::new(Expr::new(ExprKind::Var("b".into()), sp())),
                        Box::new(Expr::new(ExprKind::Var("a".into()), sp())),
                    ),
                    sp(),
                )),
                Box::new(Expr::new(
                    ExprKind::Binary(
                        BinOp::Gt,
                        Box::new(Expr::new(ExprKind::Var("a".into()), sp())),
                        Box::new(Expr::new(ExprKind::Int(0), sp())),
                    ),
                    sp(),
                )),
            ),
            sp(),
        );
        assert_eq!(e.variables(), vec!["b", "a"]);
    }

    #[test]
    fn classification_of_ops() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Eq.is_arithmetic());
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::And.is_comparison());
        assert!(!BinOp::And.is_arithmetic());
    }

    #[test]
    fn display_is_parenthesized() {
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::Ge,
                Box::new(Expr::new(ExprKind::Var("count".into()), sp())),
                Box::new(Expr::new(ExprKind::Int(48), sp())),
            ),
            sp(),
        );
        assert_eq!(e.to_string(), "(count >= 48)");
    }

    #[test]
    fn unary_display() {
        let e = Expr::new(
            ExprKind::Unary(UnOp::Not, Box::new(Expr::new(ExprKind::Bool(true), sp()))),
            sp(),
        );
        assert_eq!(e.to_string(), "!(true)");
    }
}
