//! The tokenizer for `waituntil` conditions.

use crate::error::DslError;
use crate::token::{Span, Token, TokenKind};

/// Tokenizes `source`, appending an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`DslError`] for unknown characters, lone `&`/`|`/`=`, and
/// integer literals that overflow `i64`.
pub fn lex(source: &str) -> Result<Vec<Token>, DslError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| DslError::IntOverflow {
                    span: Span::new(start, i),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: Span::new(start, i),
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = match text {
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "monitor" => TokenKind::KwMonitor,
                    "var" => TokenKind::KwVar,
                    "method" => TokenKind::KwMethod,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "return" => TokenKind::KwReturn,
                    "waituntil" => TokenKind::KwWaituntil,
                    "while" => TokenKind::KwWhile,
                    _ => TokenKind::Ident(text.to_owned()),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
            '&' | '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == bytes[i] {
                    let kind = if c == '&' {
                        TokenKind::AndAnd
                    } else {
                        TokenKind::OrOr
                    };
                    tokens.push(Token {
                        kind,
                        span: Span::new(start, i + 2),
                    });
                    i += 2;
                } else {
                    return Err(DslError::IncompleteOperator {
                        found: c,
                        span: Span::new(start, start + 1),
                    });
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        span: Span::new(start, i + 2),
                    });
                    i += 2;
                } else {
                    // A single `=` is assignment in method bodies; the
                    // condition parser rejects it with a hint.
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        span: Span::new(start, i + 1),
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::BangEq,
                        span: Span::new(start, i + 2),
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        span: Span::new(start, i + 1),
                    });
                    i += 1;
                }
            }
            '<' | '>' => {
                let (strict, relaxed) = if c == '<' {
                    (TokenKind::Lt, TokenKind::Le)
                } else {
                    (TokenKind::Gt, TokenKind::Ge)
                };
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: relaxed,
                        span: Span::new(start, i + 2),
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: strict,
                        span: Span::new(start, i + 1),
                    });
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    span: Span::new(start, i + 1),
                });
                i += 1;
            }
            other => {
                return Err(DslError::UnexpectedChar {
                    found: other,
                    span: Span::new(start, start + other.len_utf8()),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_bounded_buffer_condition() {
        use TokenKind::*;
        assert_eq!(
            kinds("count + n <= cap"),
            vec![
                Ident("count".into()),
                Plus,
                Ident("n".into()),
                Le,
                Ident("cap".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_all_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("== != < <= > >= && || ! + - * ( )"),
            vec![
                EqEq, BangEq, Lt, Le, Gt, Ge, AndAnd, OrOr, Bang, Plus, Minus, Star, LParen,
                RParen, Eof
            ]
        );
    }

    #[test]
    fn keywords_and_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("true false truex _x x_1"),
            vec![
                True,
                False,
                Ident("truex".into()),
                Ident("_x".into()),
                Ident("x_1".into()),
                Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("0 42 007"), {
            use TokenKind::*;
            vec![Int(0), Int(42), Int(7), Eof]
        });
    }

    #[test]
    fn int_overflow_is_reported() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(matches!(err, DslError::IntOverflow { .. }));
    }

    #[test]
    fn lone_amp_and_pipe_are_errors() {
        for src in ["a & b", "a | b"] {
            let err = lex(src).unwrap_err();
            assert!(
                matches!(err, DslError::IncompleteOperator { .. }),
                "{src} should be an incomplete operator"
            );
        }
    }

    #[test]
    fn single_eq_lexes_as_assignment() {
        assert_eq!(
            kinds("a = b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn statement_tokens_and_keywords() {
        use TokenKind::*;
        assert_eq!(
            kinds("monitor var method if else return waituntil while { } ; ,"),
            vec![
                KwMonitor,
                KwVar,
                KwMethod,
                KwIf,
                KwElse,
                KwReturn,
                KwWaituntil,
                KwWhile,
                LBrace,
                RBrace,
                Semi,
                Comma,
                Eof
            ]
        );
    }

    #[test]
    fn unknown_character_is_reported_with_span() {
        let err = lex("count ? 1").unwrap_err();
        match err {
            DslError::UnexpectedChar { found, span } => {
                assert_eq!(found, '?');
                assert_eq!(span.start, 6);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn spans_point_at_the_right_text() {
        let tokens = lex("count >= 48").unwrap();
        assert_eq!(tokens[0].span.slice("count >= 48"), "count");
        assert_eq!(tokens[1].span.slice("count >= 48"), ">=");
        assert_eq!(tokens[2].span.slice("count >= 48"), "48");
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(kinds("a&&b"), kinds("  a  &&\n\tb  "));
    }

    #[test]
    fn eof_is_always_last() {
        let tokens = lex("").unwrap();
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].kind, TokenKind::Eof);
    }
}
