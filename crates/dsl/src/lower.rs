//! Lowering: from surface syntax to tagged predicates.
//!
//! This is the paper's preprocessing step (§5.1) in compiler form. For a
//! comparison `lhs op rhs` the goal is the shape `SE op LE`:
//!
//! 1. Both sides are put in **linear form** `Σ aᵢ·xᵢ + c` when possible;
//!    the difference `lhs − rhs` is then **partitioned** into shared and
//!    local terms (the paper's `x − a = y + b` → `x − y = a + b`
//!    rearrangement), the local part is evaluated against the bindings
//!    (globalization), and a taggable
//!    [`CmpAtom`](autosynch_predicate::atom::CmpAtom)-based predicate comes
//!    out. The shared linear form is canonicalized (terms in slot order,
//!    leading coefficient positive) and interned by name, so `cap − count
//!    >= n` and `count − cap <= −n` share one shared expression.
//! 2. A non-linear comparison still lowers to `SE op LE` when one side
//!    mentions only shared variables and the other only locals/constants.
//! 3. Anything else becomes a keyed custom closure that interprets the
//!    AST — semantically exact, tagged `None` (exhaustive search), which
//!    is precisely the paper's fallback.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use autosynch_predicate::ast::BoolExpr;
use autosynch_predicate::atom::CmpOp;
use autosynch_predicate::custom::CustomPred;
use autosynch_predicate::expr::{ExprHandle, ExprTable};
use autosynch_predicate::linear::LinExpr;
use autosynch_predicate::predicate::Predicate;

use crate::analyze::check_condition;
use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::error::DslError;
use crate::schema::{Env, Schema};

/// Where lowered shared expressions get registered. Implemented by
/// [`crate::monitor::DslMonitor`] (interning into its monitor's
/// expression table) and by [`TableSink`] for standalone use.
pub trait SharedExprSink {
    /// Interns `f` under `name`, returning the existing handle when the
    /// name was registered before. `reads` lists the schema slots the
    /// expression evaluates — the lowering knows them exactly, and the
    /// v2 runtime uses them to name mutations per written slot (a write
    /// to slot `k` touches precisely the expressions that read `k`).
    fn intern(
        &self,
        name: &str,
        f: Box<dyn Fn(&Env) -> i64 + Send + Sync>,
        reads: &[usize],
    ) -> ExprHandle<Env>;
}

/// A standalone sink over a plain [`ExprTable`], for tests and tools.
#[derive(Debug, Default)]
pub struct TableSink {
    table: parking_lot_free::Mutex<ExprTable<Env>>,
}

/// A tiny shim so this crate does not need parking_lot: std Mutex with
/// panic-on-poison semantics is fine for a test utility.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

impl TableSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with the accumulated expression table.
    pub fn with_table<R>(&self, f: impl FnOnce(&ExprTable<Env>) -> R) -> R {
        f(&self.table.lock().expect("table poisoned"))
    }
}

impl SharedExprSink for TableSink {
    fn intern(
        &self,
        name: &str,
        f: Box<dyn Fn(&Env) -> i64 + Send + Sync>,
        _reads: &[usize],
    ) -> ExprHandle<Env> {
        self.table
            .lock()
            .expect("table poisoned")
            .register_or_get(name, move |env: &Env| f(env))
    }
}

/// Compiles a checked condition into a [`Predicate`], registering shared
/// expressions through `sink`. `locals` is the globalization snapshot.
///
/// # Errors
///
/// Type errors, unknown variables, linear-canonicalization overflow, or
/// DNF overflow.
pub fn lower(
    expr: &Expr,
    schema: &Arc<Schema>,
    locals: &HashMap<String, i64>,
    sink: &dyn SharedExprSink,
) -> Result<Predicate<Env>, DslError> {
    check_condition(expr, schema, locals)?;
    let ast = lower_bool(expr, schema, locals, sink)?;
    Predicate::try_from_expr(ast).map_err(|e| DslError::DnfOverflow { limit: e.limit })
}

fn lower_bool(
    expr: &Expr,
    schema: &Arc<Schema>,
    locals: &HashMap<String, i64>,
    sink: &dyn SharedExprSink,
) -> Result<BoolExpr<Env>, DslError> {
    match &expr.kind {
        ExprKind::Bool(b) => Ok(BoolExpr::Const(*b)),
        ExprKind::Unary(UnOp::Not, inner) => Ok(lower_bool(inner, schema, locals, sink)?.not()),
        ExprKind::Binary(BinOp::And, lhs, rhs) => {
            Ok(lower_bool(lhs, schema, locals, sink)?.and(lower_bool(rhs, schema, locals, sink)?))
        }
        ExprKind::Binary(BinOp::Or, lhs, rhs) => {
            Ok(lower_bool(lhs, schema, locals, sink)?.or(lower_bool(rhs, schema, locals, sink)?))
        }
        ExprKind::Binary(op, lhs, rhs) if op.is_comparison() => {
            lower_cmp(expr, *op, lhs, rhs, schema, locals, sink)
        }
        // Unreachable after type checking; fail loudly in debug builds.
        _ => unreachable!("lower_bool on a non-boolean node: {expr}"),
    }
}

/// Variable reference in linear forms: shared slot or local name.
/// `Shared` sorts before `Local`, so the leading term of a mixed form is
/// the lowest shared slot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum VarRef {
    Shared(usize),
    Local(String),
}

fn cmp_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        other => unreachable!("not a comparison: {other}"),
    }
}

fn lower_cmp(
    whole: &Expr,
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    schema: &Arc<Schema>,
    locals: &HashMap<String, i64>,
    sink: &dyn SharedExprSink,
) -> Result<BoolExpr<Env>, DslError> {
    let op = cmp_op(op);

    // Path 1: both sides linear → canonical SE op LE via partitioning.
    if let (Some(llin), Some(rlin)) = (
        linearize(lhs, schema, locals)?,
        linearize(rhs, schema, locals)?,
    ) {
        let diff = llin
            .sub(&rlin)
            .map_err(|_| DslError::LinearOverflow { span: whole.span })?;
        let (shared, local) = diff.partition(|v| matches!(v, VarRef::Shared(_)));
        // lhs op rhs  ⇔  diff op 0  ⇔  shared op -(local)
        let local_value = local.eval(|v| match v {
            VarRef::Local(name) => locals.get(name).copied().unwrap_or(0),
            VarRef::Shared(_) => unreachable!("shared var in local part"),
        });
        if shared.is_constant() {
            // No shared variables at all: the condition is a constant.
            return Ok(BoolExpr::Const(op.eval(0, -local_value)));
        }
        let mut shared = shared;
        let mut op = op;
        let mut key = local_value.checked_neg();
        // Canonical sign: make the leading coefficient positive so that
        // `cap - count >= n` and `count - cap <= -n` intern identically.
        let leading_negative = shared.terms().next().is_some_and(|(_, coeff)| coeff < 0);
        if leading_negative {
            if let (Ok(negated), Some(k)) = (shared.neg(), key) {
                if let Some(nk) = k.checked_neg() {
                    shared = negated;
                    op = op.flipped();
                    key = Some(nk);
                }
            }
        }
        let Some(key) = key else {
            // -(i64::MIN) does not exist; fall back to the custom path.
            return Ok(custom_comparison(whole, schema, locals));
        };
        let name = shared_name(&shared, schema);
        let terms: Vec<(usize, i64)> = shared
            .terms()
            .map(|(v, c)| match v {
                VarRef::Shared(slot) => (*slot, c),
                VarRef::Local(_) => unreachable!("local var in shared part"),
            })
            .collect();
        let reads: Vec<usize> = terms.iter().map(|&(slot, _)| slot).collect();
        let handle = sink.intern(
            &name,
            Box::new(move |env: &Env| {
                terms.iter().fold(0i64, |acc, &(slot, coeff)| {
                    acc.wrapping_add(coeff.wrapping_mul(env.get(slot)))
                })
            }),
            &reads,
        );
        return Ok(handle.cmp(op, key));
    }

    // Path 2: non-linear but cleanly split — one side purely shared, the
    // other purely local/constant → still SE op LE.
    let l_shared = uses_only_shared(lhs, schema);
    let l_local = uses_only_locals(lhs, schema);
    let r_shared = uses_only_shared(rhs, schema);
    let r_local = uses_only_locals(rhs, schema);
    if l_shared && r_local {
        return Ok(opaque_shared_cmp(lhs, op, rhs, schema, locals, sink));
    }
    if l_local && r_shared {
        return Ok(opaque_shared_cmp(
            rhs,
            op.flipped(),
            lhs,
            schema,
            locals,
            sink,
        ));
    }

    // Path 3: mixed non-linear → keyed custom closure, `None` tag.
    Ok(custom_comparison(whole, schema, locals))
}

/// Registers `shared_side` as an opaque shared expression and compares it
/// against the evaluated `local_side`.
fn opaque_shared_cmp(
    shared_side: &Expr,
    op: CmpOp,
    local_side: &Expr,
    schema: &Arc<Schema>,
    locals: &HashMap<String, i64>,
    sink: &dyn SharedExprSink,
) -> BoolExpr<Env> {
    let key = eval_int(local_side, schema, &Env::zeroed(0), locals);
    let name = shared_side.to_string();
    let ast = shared_side.clone();
    let reads: Vec<usize> = shared_side
        .variables()
        .iter()
        .filter_map(|v| schema.slot(v))
        .collect();
    let schema = Arc::clone(schema);
    let empty: HashMap<String, i64> = HashMap::new();
    let handle = sink.intern(
        &name,
        Box::new(move |env: &Env| eval_int(&ast, &schema, env, &empty)),
        &reads,
    );
    handle.cmp(op, key)
}

/// Fallback: interpret the whole comparison at evaluation time. Keyed by
/// a hash of the source shape and the globalized locals, so repeated
/// `waituntil`s with identical conditions still share a condition
/// variable.
fn custom_comparison(
    whole: &Expr,
    schema: &Arc<Schema>,
    locals: &HashMap<String, i64>,
) -> BoolExpr<Env> {
    let name = whole.to_string();
    let used = whole.variables();
    let captured: HashMap<String, i64> = locals
        .iter()
        .filter(|(k, _)| used.contains(&k.as_str()))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let mut sorted: Vec<_> = captured.iter().collect();
    sorted.sort();
    sorted.hash(&mut hasher);
    let key = hasher.finish();
    let ast = whole.clone();
    let schema = Arc::clone(schema);
    BoolExpr::Custom(
        CustomPred::new(name, move |env: &Env| {
            eval_bool(&ast, &schema, env, &captured)
        })
        .with_key(key),
    )
}

fn linearize(
    expr: &Expr,
    schema: &Schema,
    locals: &HashMap<String, i64>,
) -> Result<Option<LinExpr<VarRef>>, DslError> {
    let overflow = |_| DslError::LinearOverflow { span: expr.span };
    match &expr.kind {
        ExprKind::Int(v) => Ok(Some(LinExpr::constant(*v))),
        ExprKind::Var(name) => {
            let var = match schema.slot(name) {
                Some(slot) => VarRef::Shared(slot),
                None => {
                    debug_assert!(locals.contains_key(name), "checked earlier");
                    VarRef::Local(name.clone())
                }
            };
            Ok(Some(LinExpr::var(var)))
        }
        ExprKind::Unary(UnOp::Neg, inner) => Ok(match linearize(inner, schema, locals)? {
            Some(lin) => Some(lin.neg().map_err(overflow)?),
            None => None,
        }),
        ExprKind::Binary(BinOp::Add, lhs, rhs) => {
            match (
                linearize(lhs, schema, locals)?,
                linearize(rhs, schema, locals)?,
            ) {
                (Some(a), Some(b)) => Ok(Some(a.add(&b).map_err(overflow)?)),
                _ => Ok(None),
            }
        }
        ExprKind::Binary(BinOp::Sub, lhs, rhs) => {
            match (
                linearize(lhs, schema, locals)?,
                linearize(rhs, schema, locals)?,
            ) {
                (Some(a), Some(b)) => Ok(Some(a.sub(&b).map_err(overflow)?)),
                _ => Ok(None),
            }
        }
        ExprKind::Binary(BinOp::Mul, lhs, rhs) => {
            match (
                linearize(lhs, schema, locals)?,
                linearize(rhs, schema, locals)?,
            ) {
                (Some(a), Some(b)) if a.is_constant() => {
                    Ok(Some(b.scale(a.constant_term()).map_err(overflow)?))
                }
                (Some(a), Some(b)) if b.is_constant() => {
                    Ok(Some(a.scale(b.constant_term()).map_err(overflow)?))
                }
                _ => Ok(None), // genuinely non-linear (var * var)
            }
        }
        // Boolean nodes cannot appear inside arithmetic after typing.
        _ => Ok(None),
    }
}

/// Canonical display name of a shared linear form, e.g. `count - 2*done`.
fn shared_name(shared: &LinExpr<VarRef>, schema: &Schema) -> String {
    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone)]
    struct SlotName(usize, String);
    impl std::fmt::Display for SlotName {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.1)
        }
    }
    let mut named: LinExpr<SlotName> = LinExpr::constant(shared.constant_term());
    for (v, c) in shared.terms() {
        let VarRef::Shared(slot) = v else {
            unreachable!("local var in shared part")
        };
        let var = LinExpr::var(SlotName(*slot, schema.name(*slot).to_owned()));
        named = named
            .add(&var.scale(c).expect("coefficient already validated"))
            .expect("recombination cannot overflow");
    }
    named.to_string()
}

fn uses_only_shared(expr: &Expr, schema: &Schema) -> bool {
    expr.variables()
        .iter()
        .all(|name| schema.slot(name).is_some())
        && !expr.variables().is_empty()
}

fn uses_only_locals(expr: &Expr, schema: &Schema) -> bool {
    expr.variables()
        .iter()
        .all(|name| schema.slot(name).is_none())
}

/// Runtime interpreter for integer expressions (wrapping arithmetic, like
/// Java's). Also used by the class interpreter ([`crate::class`]) for
/// assignments and return values.
pub fn eval_int(expr: &Expr, schema: &Schema, env: &Env, locals: &HashMap<String, i64>) -> i64 {
    match &expr.kind {
        ExprKind::Int(v) => *v,
        ExprKind::Var(name) => match schema.slot(name) {
            Some(slot) => env.get(slot),
            None => locals.get(name).copied().unwrap_or(0),
        },
        ExprKind::Unary(UnOp::Neg, inner) => eval_int(inner, schema, env, locals).wrapping_neg(),
        ExprKind::Binary(BinOp::Add, a, b) => {
            eval_int(a, schema, env, locals).wrapping_add(eval_int(b, schema, env, locals))
        }
        ExprKind::Binary(BinOp::Sub, a, b) => {
            eval_int(a, schema, env, locals).wrapping_sub(eval_int(b, schema, env, locals))
        }
        ExprKind::Binary(BinOp::Mul, a, b) => {
            eval_int(a, schema, env, locals).wrapping_mul(eval_int(b, schema, env, locals))
        }
        other => unreachable!("eval_int on a boolean node: {other:?}"),
    }
}

/// Runtime interpreter for boolean expressions. Used by the custom
/// fallback closures and the class interpreter's `if` statements.
pub fn eval_bool(expr: &Expr, schema: &Schema, env: &Env, locals: &HashMap<String, i64>) -> bool {
    match &expr.kind {
        ExprKind::Bool(b) => *b,
        ExprKind::Unary(UnOp::Not, inner) => !eval_bool(inner, schema, env, locals),
        ExprKind::Binary(BinOp::And, a, b) => {
            eval_bool(a, schema, env, locals) && eval_bool(b, schema, env, locals)
        }
        ExprKind::Binary(BinOp::Or, a, b) => {
            eval_bool(a, schema, env, locals) || eval_bool(b, schema, env, locals)
        }
        ExprKind::Binary(op, a, b) if op.is_comparison() => cmp_op(*op).eval(
            eval_int(a, schema, env, locals),
            eval_int(b, schema, env, locals),
        ),
        other => unreachable!("eval_bool on a non-boolean node: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use autosynch_predicate::tag::{Tag, ThresholdOp};

    fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
    }

    fn compile(src: &str, schema: &[&str], locals: &[(&str, i64)]) -> (Predicate<Env>, TableSink) {
        let schema = Arc::new(Schema::new(schema));
        let sink = TableSink::new();
        let pred = lower(&parse(src).unwrap(), &schema, &bind(locals), &sink).unwrap();
        (pred, sink)
    }

    #[test]
    fn simple_threshold_lowering() {
        let (pred, sink) = compile("count >= num", &["count"], &[("num", 48)]);
        assert_eq!(
            pred.tags(),
            &[Tag::Threshold {
                expr: sink.with_table(|t| t.lookup("count").unwrap().id()),
                key: 48,
                op: ThresholdOp::Ge
            }]
        );
    }

    #[test]
    fn paper_rearrangement_x_minus_a_eq_y_plus_b() {
        // x - a == y + b  →  (x - y) == a + b, an equivalence tag.
        let (pred, sink) = compile("x - a == y + b", &["x", "y"], &[("a", 11), ("b", 2)]);
        let expr_id = sink.with_table(|t| t.lookup("x - y").unwrap().id());
        assert_eq!(
            pred.tags(),
            &[Tag::Equivalence {
                expr: expr_id,
                key: 13
            }]
        );
        // Semantics: x - y == 13.
        let schema = Schema::new(&["x", "y"]);
        let mut env = schema.env();
        env.set(0, 20);
        env.set(1, 7);
        sink.with_table(|t| assert!(pred.eval(&env, t)));
        env.set(1, 8);
        sink.with_table(|t| assert!(!pred.eval(&env, t)));
    }

    #[test]
    fn paper_threshold_x_plus_b_gt_2y_plus_a() {
        // x + b > 2*y + a with a=11, b=2 → (Threshold, x − 2y, 9, >).
        let (pred, sink) = compile("x + b > 2*y + a", &["x", "y"], &[("a", 11), ("b", 2)]);
        let expr_id = sink.with_table(|t| t.lookup("x - 2*y").unwrap().id());
        assert_eq!(
            pred.tags(),
            &[Tag::Threshold {
                expr: expr_id,
                key: 9,
                op: ThresholdOp::Gt
            }]
        );
    }

    #[test]
    fn sign_canonicalization_interns_both_spellings() {
        let schema = Arc::new(Schema::new(&["count", "cap"]));
        let sink = TableSink::new();
        let a = lower(
            &parse("cap - count >= n").unwrap(),
            &schema,
            &bind(&[("n", 3)]),
            &sink,
        )
        .unwrap();
        let b = lower(
            &parse("count - cap <= 0 - n").unwrap(),
            &schema,
            &bind(&[("n", 3)]),
            &sink,
        )
        .unwrap();
        assert_eq!(
            sink.with_table(|t| t.len()),
            1,
            "both spellings intern one shared expression"
        );
        assert_eq!(a.key(), b.key(), "and produce syntax-equivalent predicates");
    }

    #[test]
    fn constant_conditions_fold() {
        let (pred, _) = compile("n > 3", &["count"], &[("n", 5)]);
        assert!(pred.is_trivially_true());
        let (pred, _) = compile("n > 3", &["count"], &[("n", 2)]);
        assert!(pred.is_trivially_false());
        let (pred, _) = compile("true", &["count"], &[]);
        assert!(pred.is_trivially_true());
    }

    #[test]
    fn shared_nonlinear_side_is_opaque_but_tagged() {
        // count*count is non-linear but purely shared → SE op LE holds.
        let (pred, sink) = compile("count * count >= n", &["count"], &[("n", 9)]);
        assert!(matches!(
            pred.tags(),
            [Tag::Threshold {
                key: 9,
                op: ThresholdOp::Ge,
                ..
            }]
        ));
        let schema = Schema::new(&["count"]);
        let mut env = schema.env();
        env.set(0, 3);
        sink.with_table(|t| assert!(pred.eval(&env, t)));
        env.set(0, 2);
        sink.with_table(|t| assert!(!pred.eval(&env, t)));
    }

    #[test]
    fn local_nonlinear_side_flips() {
        let (pred, _) = compile("n * n <= count", &["count"], &[("n", 3)]);
        // count >= 9.
        assert!(matches!(
            pred.tags(),
            [Tag::Threshold {
                key: 9,
                op: ThresholdOp::Ge,
                ..
            }]
        ));
    }

    #[test]
    fn mixed_nonlinear_falls_back_to_custom() {
        // count * n == total mixes shared and local in one product.
        let (pred, sink) = compile("count * n == total", &["count", "total"], &[("n", 4)]);
        assert_eq!(pred.tags(), &[Tag::None]);
        let schema = Schema::new(&["count", "total"]);
        let mut env = schema.env();
        env.set(0, 5);
        env.set(1, 20);
        sink.with_table(|t| assert!(pred.eval(&env, t)));
        env.set(1, 21);
        sink.with_table(|t| assert!(!pred.eval(&env, t)));
    }

    #[test]
    fn custom_fallback_is_keyed_for_dedup() {
        let schema = Arc::new(Schema::new(&["count", "total"]));
        let sink = TableSink::new();
        let mk = || {
            lower(
                &parse("count * n == total").unwrap(),
                &schema,
                &bind(&[("n", 4)]),
                &sink,
            )
            .unwrap()
        };
        assert_eq!(mk().key(), mk().key());
        // Different local value → different key.
        let other = lower(
            &parse("count * n == total").unwrap(),
            &schema,
            &bind(&[("n", 5)]),
            &sink,
        )
        .unwrap();
        assert_ne!(mk().key(), other.key());
    }

    #[test]
    fn boolean_structure_lowers_to_dnf() {
        let (pred, _) = compile(
            "count == 0 || count >= n && cap - count >= 0",
            &["count", "cap"],
            &[("n", 10)],
        );
        assert_eq!(pred.dnf().len(), 2);
        assert!(matches!(pred.tags()[0], Tag::Equivalence { key: 0, .. }));
        assert!(matches!(pred.tags()[1], Tag::Threshold { .. }));
    }

    #[test]
    fn negation_is_pushed_through() {
        let (pred, _) = compile("!(count < n)", &["count"], &[("n", 7)]);
        assert_eq!(
            pred.tags(),
            &[Tag::Threshold {
                expr: pred.dnf().conjunctions()[0].literals()[0]
                    .as_cmp()
                    .unwrap()
                    .expr,
                key: 7,
                op: ThresholdOp::Ge
            }]
        );
    }

    #[test]
    fn shared_vars_in_both_sides_combine() {
        // count + n <= cap  →  count - cap <= -n  →  cap - count >= n.
        let (pred, sink) = compile("count + n <= cap", &["count", "cap"], &[("n", 5)]);
        let schema = Schema::new(&["count", "cap"]);
        let mut env = schema.env();
        env.set(0, 10);
        env.set(1, 15);
        sink.with_table(|t| assert!(pred.eval(&env, t))); // 10 + 5 <= 15
        env.set(0, 11);
        sink.with_table(|t| assert!(!pred.eval(&env, t)));
        assert!(matches!(pred.tags(), [Tag::Threshold { .. }]));
    }

    #[test]
    fn semantic_agreement_with_interpreter() {
        // The lowered predicate and the direct interpreter must agree on
        // a grid of states.
        let sources = [
            ("count >= n", vec![("n", 3)]),
            ("count + n <= cap", vec![("n", 2)]),
            ("count == 0 || cap - count > n", vec![("n", 1)]),
            ("!(count == n) && cap >= 0", vec![("n", 2)]),
            ("2*count - 3 != cap - n", vec![("n", 4)]),
        ];
        let schema = Arc::new(Schema::new(&["count", "cap"]));
        for (src, locals) in sources {
            let sink = TableSink::new();
            let ast = parse(src).unwrap();
            let bound = bind(&locals);
            let pred = lower(&ast, &schema, &bound, &sink).unwrap();
            for count in -2..=6 {
                for cap in -2..=6 {
                    let mut env = schema.env();
                    env.set(0, count);
                    env.set(1, cap);
                    let direct = eval_bool(&ast, &schema, &env, &bound);
                    let lowered = sink.with_table(|t| pred.eval(&env, t));
                    assert_eq!(
                        direct, lowered,
                        "{src} disagrees at count={count} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_variable_errors_propagate() {
        let schema = Arc::new(Schema::new(&["count"]));
        let err = lower(
            &parse("count >= n").unwrap(),
            &schema,
            &bind(&[]),
            &TableSink::new(),
        )
        .unwrap_err();
        assert!(matches!(err, DslError::UnknownVariable { .. }));
    }
}
