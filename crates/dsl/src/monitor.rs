//! `DslMonitor`: an AutoSynch monitor driven by textual `waituntil`
//! conditions.
//!
//! This is the end-to-end analog of an `AutoSynch class`: the schema
//! plays the role of the class's shared fields, `enter` is a synchronized
//! member function, and `wait_until("count >= num", &[("num", 48)])` is
//! `waituntil(count >= num)` with the local `num` globalized at call
//! time. Parsed conditions are cached per source string — the
//! "preprocessing once" of the paper — and shared expressions are
//! interned into the underlying monitor's expression table.
//!
//! v2 integration: every keyed lowered condition is compiled into the
//! monitor's interned [`Cond`] table on first use and reused by key
//! afterwards, and every variable write names exactly the shared
//! expressions that read its slot (recorded during lowering) — the DSL
//! gets compiled conditions and tracked mutations without user
//! annotations.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use autosynch::config::MonitorConfig;
use autosynch::monitor::{Monitor, MonitorGuard};
use autosynch::stats::StatsSnapshot;
use autosynch_predicate::cond::Cond;
use autosynch_predicate::expr::{ExprHandle, ExprId};
use autosynch_predicate::key::PredKey;
use autosynch_predicate::predicate::Predicate;
use parking_lot::{Mutex, RwLock};

use crate::ast::Expr;
use crate::error::DslError;
use crate::lower::{lower, SharedExprSink};
use crate::parser::parse;
use crate::schema::{Env, Schema};

/// A monitor whose waiting conditions are source text over a schema of
/// named integer variables.
///
/// # Examples
///
/// ```
/// use autosynch_dsl::monitor::DslMonitor;
/// use autosynch_dsl::schema::Schema;
///
/// // The bounded buffer, DSL-style.
/// let m = DslMonitor::new(Schema::new(&["count", "cap"]));
/// m.enter(|g| g.set("cap", 16));
/// m.enter(|g| {
///     g.wait_until("count < cap", &[]).unwrap();
///     let c = g.get("count");
///     g.set("count", c + 1);
/// });
/// assert_eq!(m.enter(|g| g.get("count")), 1);
/// ```
pub struct DslMonitor {
    monitor: Monitor<Env>,
    schema: Arc<Schema>,
    templates: Mutex<HashMap<String, Arc<Expr>>>,
    /// Compiled-condition cache keyed by structural [`PredKey`]: a
    /// repeated `waituntil` (same source shape, same globalized locals)
    /// waits on its pinned [`Cond`] instead of re-registering.
    conds: Mutex<HashMap<PredKey, Cond<Env>>>,
    /// Slot → shared expressions that read it, recorded at interning
    /// time from the lowering's exact term lists. Writes to a slot name
    /// precisely these expressions (the v2 tracked-mutation contract).
    slot_deps: RwLock<Vec<Vec<ExprId>>>,
}

impl std::fmt::Debug for DslMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DslMonitor")
            .field("schema", &self.schema)
            .finish()
    }
}

impl DslMonitor {
    /// Upper bound on pinned compiled conditions: beyond this many
    /// distinct keys, further `waituntil`s register transiently
    /// (per-wait analysis, LRU-evictable) instead of pinning — so
    /// one-shot key streams (tickets, generations) cannot leak
    /// persistent entries through the DSL.
    pub const COND_CACHE_CAP: usize = 256;

    /// Creates a monitor with all shared variables zeroed.
    pub fn new(schema: Schema) -> Self {
        Self::with_config(schema, MonitorConfig::default())
    }

    /// Creates a monitor with an explicit runtime configuration.
    pub fn with_config(schema: Schema, config: MonitorConfig) -> Self {
        let env = schema.env();
        let slots = schema.len();
        DslMonitor {
            monitor: Monitor::with_config(env, config),
            schema: Arc::new(schema),
            templates: Mutex::new(HashMap::new()),
            conds: Mutex::new(HashMap::new()),
            slot_deps: RwLock::new(vec![Vec::new(); slots]),
        }
    }

    /// The variable schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying automatic-signal monitor (stats, configuration).
    pub fn monitor(&self) -> &Monitor<Env> {
        &self.monitor
    }

    /// A snapshot of the monitor's instrumentation.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.monitor.stats_snapshot()
    }

    /// Compiles `source` with the given local bindings into a predicate —
    /// parse results are cached per source string.
    ///
    /// # Errors
    ///
    /// Any [`DslError`] from lexing through lowering.
    pub fn compile(
        &self,
        source: &str,
        locals: &[(&str, i64)],
    ) -> Result<Predicate<Env>, DslError> {
        let ast = {
            let mut cache = self.templates.lock();
            match cache.get(source) {
                Some(ast) => Arc::clone(ast),
                None => {
                    let ast = Arc::new(parse(source)?);
                    cache.insert(source.to_owned(), Arc::clone(&ast));
                    ast
                }
            }
        };
        let bound: HashMap<String, i64> = locals
            .iter()
            .map(|(name, value)| ((*name).to_owned(), *value))
            .collect();
        lower(&ast, &self.schema, &bound, self)
    }

    /// Compiles an already parsed condition (the class interpreter's
    /// path — it holds ASTs, not source strings).
    ///
    /// # Errors
    ///
    /// Any [`DslError`] from checking or lowering.
    pub fn compile_ast(
        &self,
        ast: &crate::ast::Expr,
        locals: &HashMap<String, i64>,
    ) -> Result<Predicate<Env>, DslError> {
        lower(ast, &self.schema, locals, self)
    }

    /// Enters the monitor and runs `f` under mutual exclusion.
    pub fn enter<R>(&self, f: impl FnOnce(&mut DslGuard<'_, '_>) -> R) -> R {
        self.monitor.enter(|guard| {
            let mut g = DslGuard { owner: self, guard };
            f(&mut g)
        })
    }

    fn slot(&self, name: &str) -> usize {
        self.schema
            .slot(name)
            .unwrap_or_else(|| panic!("`{name}` is not a shared variable of this monitor"))
    }
}

impl SharedExprSink for DslMonitor {
    fn intern(
        &self,
        name: &str,
        f: Box<dyn Fn(&Env) -> i64 + Send + Sync>,
        reads: &[usize],
    ) -> ExprHandle<Env> {
        let handle = self
            .monitor
            .register_expr_or_get(name, move |env: &Env| f(env));
        let mut deps = self.slot_deps.write();
        for &slot in reads {
            if slot < deps.len() && !deps[slot].contains(&handle.id()) {
                deps[slot].push(handle.id());
            }
        }
        handle
    }
}

/// The in-monitor view for [`DslMonitor::enter`] closures.
pub struct DslGuard<'a, 'b> {
    owner: &'b DslMonitor,
    guard: &'b mut MonitorGuard<'a, Env>,
}

impl std::fmt::Debug for DslGuard<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DslGuard").finish_non_exhaustive()
    }
}

impl DslGuard<'_, '_> {
    /// Reads shared variable `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not in the schema.
    pub fn get(&self, name: &str) -> i64 {
        self.guard.state().get(self.owner.slot(name))
    }

    /// Writes shared variable `name`. The write **names** exactly the
    /// shared expressions reading this slot (recorded at lowering
    /// time), so the change-driven diff stays precise without any
    /// caller annotation.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not in the schema.
    pub fn set(&mut self, name: &str, value: i64) {
        let slot = self.owner.slot(name);
        self.set_slot(slot, value);
    }

    /// Adds `delta` to shared variable `name` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not in the schema.
    pub fn add(&mut self, name: &str, delta: i64) -> i64 {
        let slot = self.owner.slot(name);
        let new = self.get_slot(slot).wrapping_add(delta);
        self.set_slot(slot, new);
        new
    }

    /// `waituntil(source)` with `locals` as the globalization snapshot.
    /// Keyed conditions compile through the monitor's interned
    /// condition table (one compiled `Cond` per distinct structural
    /// key, reused forever after); keyless ones fall back to a
    /// transient per-wait registration.
    ///
    /// # Errors
    ///
    /// Compilation errors are returned before any waiting happens.
    pub fn wait_until(&mut self, source: &str, locals: &[(&str, i64)]) -> Result<(), DslError> {
        let pred = self.owner.compile(source, locals)?;
        self.wait_until_compiled(pred);
        Ok(())
    }

    /// Resolves a lowered predicate to a cached compiled condition, or
    /// hands it back for a transient wait when it cannot (keyless
    /// closures) or should not (cache full) be pinned.
    ///
    /// The cap matters: compiled conditions are pinned for the
    /// monitor's lifetime, and DSL locals can be one-shot (ticket
    /// numbers). Bounding the cache keeps the compiled fast path for
    /// the first [`DslMonitor::COND_CACHE_CAP`] distinct condition
    /// shapes — every realistic repeating workload — while unbounded
    /// key streams degrade to the per-wait, LRU-evictable path instead
    /// of leaking persistent entries.
    fn resolve_cond(&mut self, pred: Predicate<Env>) -> Result<Cond<Env>, Predicate<Env>> {
        let Some(key) = pred.key().cloned() else {
            return Err(pred);
        };
        {
            let conds = self.owner.conds.lock();
            if let Some(cond) = conds.get(&key) {
                return Ok(cond.clone());
            }
            if conds.len() >= DslMonitor::COND_CACHE_CAP {
                return Err(pred);
            }
        }
        let cond = self.guard.compile(pred);
        self.owner.conds.lock().insert(key, cond.clone());
        Ok(cond)
    }

    /// `waituntil` on a pre-lowered predicate (the class interpreter's
    /// path): waits on the interned compiled condition, falling back to
    /// a transient registration for keyless predicates or once the
    /// compiled cache is full.
    pub fn wait_until_compiled(&mut self, pred: Predicate<Env>) {
        match self.resolve_cond(pred) {
            Ok(cond) => self.guard.wait(&cond),
            Err(pred) => self.guard.wait_transient(pred),
        }
    }

    /// Reads a shared variable by slot (class interpreter fast path).
    pub fn get_slot(&self, slot: usize) -> i64 {
        self.guard.state().get(slot)
    }

    /// Writes a shared variable by slot (class interpreter fast path),
    /// naming the expressions that read the slot.
    pub fn set_slot(&mut self, slot: usize, value: i64) {
        let deps = self.owner.slot_deps.read();
        let touched: &[ExprId] = deps.get(slot).map_or(&[], |v| v.as_slice());
        self.guard.state_mut_touching(touched).set(slot, value);
    }

    /// Runs `f` with the raw environment (read-only).
    pub fn with_env<R>(&self, f: impl FnOnce(&Env) -> R) -> R {
        f(self.guard.state())
    }

    /// Timed `waituntil`; `Ok(true)` when the condition held in time.
    ///
    /// # Errors
    ///
    /// Compilation errors are returned before any waiting happens.
    pub fn wait_until_timeout(
        &mut self,
        source: &str,
        locals: &[(&str, i64)],
        timeout: Duration,
    ) -> Result<bool, DslError> {
        let pred = self.owner.compile(source, locals)?;
        Ok(match self.resolve_cond(pred) {
            Ok(cond) => self.guard.wait_timeout(&cond, timeout),
            Err(pred) => self.guard.wait_transient_timeout(pred, timeout),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_get_add() {
        let m = DslMonitor::new(Schema::new(&["x"]));
        m.enter(|g| {
            g.set("x", 5);
            assert_eq!(g.get("x"), 5);
            assert_eq!(g.add("x", 3), 8);
        });
        assert_eq!(m.enter(|g| g.get("x")), 8);
    }

    #[test]
    fn wait_until_blocks_and_wakes() {
        let m = Arc::new(DslMonitor::new(Schema::new(&["count"])));
        let m2 = Arc::clone(&m);
        let consumer = thread::spawn(move || {
            m2.enter(|g| {
                g.wait_until("count >= num", &[("num", 3)]).unwrap();
                g.add("count", -3)
            })
        });
        thread::sleep(Duration::from_millis(20));
        for _ in 0..3 {
            m.enter(|g| {
                g.add("count", 1);
            });
        }
        assert_eq!(consumer.join().unwrap(), 0);
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.broadcasts, 0);
        assert!(snap.counters.signals >= 1);
    }

    #[test]
    fn compile_errors_are_reported_not_panicked() {
        let m = DslMonitor::new(Schema::new(&["count"]));
        let err = m.enter(|g| g.wait_until("count >= ", &[]).unwrap_err());
        assert!(matches!(err, DslError::UnexpectedToken { .. }));
        let err = m.enter(|g| g.wait_until("count >= zzz", &[]).unwrap_err());
        assert!(matches!(err, DslError::UnknownVariable { .. }));
    }

    #[test]
    fn timeout_variant() {
        let m = DslMonitor::new(Schema::new(&["count"]));
        let ok = m
            .enter(|g| g.wait_until_timeout("count >= 1", &[], Duration::from_millis(30)))
            .unwrap();
        assert!(!ok);
        m.enter(|g| g.set("count", 1));
        let ok = m
            .enter(|g| g.wait_until_timeout("count >= 1", &[], Duration::from_millis(30)))
            .unwrap();
        assert!(ok);
    }

    #[test]
    fn cond_cache_is_capped_so_one_shot_keys_cannot_pin_unboundedly() {
        // Ticket-style conditions (a fresh globalized key per wait)
        // must not grow the pinned compiled-condition table without
        // bound: beyond the cap, waits fall back to the transient,
        // LRU-evictable path and still work.
        let m = DslMonitor::new(Schema::new(&["count"]));
        m.enter(|g| g.set("count", 1_000_000));
        let overshoot = DslMonitor::COND_CACHE_CAP + 50;
        for ticket in 0..overshoot as i64 {
            // Always true, so nothing blocks; resolution still runs.
            m.enter(|g| g.wait_until("count >= t", &[("t", ticket)]).unwrap());
        }
        assert_eq!(m.conds.lock().len(), DslMonitor::COND_CACHE_CAP);
        let counts = m.monitor().counts();
        assert_eq!(counts.compiled, DslMonitor::COND_CACHE_CAP);
        // Waits beyond the cap still behave (transient path).
        m.enter(|g| g.wait_until("count >= t", &[("t", 5)]).unwrap());
    }

    #[test]
    fn template_cache_parses_once() {
        let m = DslMonitor::new(Schema::new(&["count"]));
        m.enter(|g| g.set("count", 10));
        for n in 0..5 {
            m.enter(|g| g.wait_until("count >= num", &[("num", n)]).unwrap());
        }
        assert_eq!(m.templates.lock().len(), 1);
    }

    #[test]
    fn distinct_locals_create_distinct_predicates_one_expr() {
        let m = DslMonitor::new(Schema::new(&["count"]));
        m.enter(|g| g.set("count", 100));
        m.enter(|g| g.wait_until("count >= num", &[("num", 1)]).unwrap());
        m.enter(|g| g.wait_until("count >= num", &[("num", 2)]).unwrap());
        // One interned shared expression ("count"), two predicates.
        let counts = m.monitor().counts();
        assert!(counts.entries <= 2, "entries = {}", counts.entries);
        assert_eq!(counts.compiled, 2, "one compiled cond per distinct key");
    }

    #[test]
    #[should_panic(expected = "not a shared variable")]
    fn unknown_get_panics() {
        let m = DslMonitor::new(Schema::new(&["x"]));
        m.enter(|g| g.get("y"));
    }

    #[test]
    fn concurrent_producers_consumers_dsl_end_to_end() {
        let m = Arc::new(DslMonitor::new(Schema::new(&["count", "cap"])));
        m.enter(|g| g.set("cap", 4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let producer = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                let m = producer;
                for _ in 0..50 {
                    m.enter(|g| {
                        g.wait_until("count < cap", &[]).unwrap();
                        g.add("count", 1);
                    });
                }
            }));
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    m.enter(|g| {
                        g.wait_until("count > 0", &[]).unwrap();
                        g.add("count", -1);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.enter(|g| g.get("count")), 0);
    }
}
