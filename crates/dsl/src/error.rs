//! Compiler diagnostics for the `waituntil` expression language.

use std::fmt;

use crate::token::Span;

/// Any error produced while compiling a `waituntil` condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// The lexer met a character it does not know.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Its location.
        span: Span,
    },
    /// A numeric literal does not fit in `i64`.
    IntOverflow {
        /// The literal's location.
        span: Span,
    },
    /// A lone `&`, `|` or `=` (the language only has the doubled forms).
    IncompleteOperator {
        /// The single character found.
        found: char,
        /// Its location.
        span: Span,
    },
    /// The parser met an unexpected token.
    UnexpectedToken {
        /// Description of the token found.
        found: String,
        /// What the parser was looking for.
        expected: &'static str,
        /// Its location.
        span: Span,
    },
    /// Comparison chaining like `a < b < c` is not supported.
    ChainedComparison {
        /// Location of the second comparison operator.
        span: Span,
    },
    /// An operator was applied to the wrong type.
    TypeMismatch {
        /// What the context required.
        expected: &'static str,
        /// What the expression actually is.
        found: &'static str,
        /// The mistyped expression.
        span: Span,
    },
    /// A variable is neither in the shared schema nor bound as a local.
    UnknownVariable {
        /// The variable name.
        name: String,
        /// Its location.
        span: Span,
    },
    /// Integer overflow while canonicalizing a linear form.
    LinearOverflow {
        /// The expression that overflowed.
        span: Span,
    },
    /// The condition's DNF exceeded the conjunction limit.
    DnfOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// A class declares the same name twice (variable, parameter or
    /// method).
    Duplicate {
        /// What kind of definition collided.
        what: &'static str,
        /// The colliding name.
        name: String,
        /// Location of the second definition.
        span: Span,
    },
    /// An assignment targets something that is not a shared variable.
    InvalidAssignTarget {
        /// The target name.
        name: String,
        /// Its location.
        span: Span,
    },
}

impl DslError {
    /// The source location of the error, when it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            DslError::UnexpectedChar { span, .. }
            | DslError::IntOverflow { span }
            | DslError::IncompleteOperator { span, .. }
            | DslError::UnexpectedToken { span, .. }
            | DslError::ChainedComparison { span }
            | DslError::TypeMismatch { span, .. }
            | DslError::UnknownVariable { span, .. }
            | DslError::LinearOverflow { span }
            | DslError::Duplicate { span, .. }
            | DslError::InvalidAssignTarget { span, .. } => Some(*span),
            DslError::DnfOverflow { .. } => None,
        }
    }

    /// Renders the error with a caret line pointing into `source`.
    pub fn render(&self, source: &str) -> String {
        match self.span() {
            None => format!("error: {self}"),
            Some(span) => {
                let caret_len = (span.end - span.start).max(1);
                format!(
                    "error: {self}\n  | {source}\n  | {}{}",
                    " ".repeat(span.start),
                    "^".repeat(caret_len)
                )
            }
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::UnexpectedChar { found, span } => {
                write!(f, "unexpected character `{found}` at {span}")
            }
            DslError::IntOverflow { span } => {
                write!(f, "integer literal at {span} does not fit in i64")
            }
            DslError::IncompleteOperator { found, span } => write!(
                f,
                "single `{found}` at {span}; did you mean `{found}{found}`?"
            ),
            DslError::UnexpectedToken {
                found,
                expected,
                span,
            } => write!(f, "expected {expected} but found {found} at {span}"),
            DslError::ChainedComparison { span } => write!(
                f,
                "chained comparisons are not supported (at {span}); use `&&`"
            ),
            DslError::TypeMismatch {
                expected,
                found,
                span,
            } => write!(f, "expected {expected} but this is {found} (at {span})"),
            DslError::UnknownVariable { name, span } => write!(
                f,
                "variable `{name}` at {span} is neither a shared variable nor a bound local"
            ),
            DslError::LinearOverflow { span } => {
                write!(f, "arithmetic overflow while canonicalizing {span}")
            }
            DslError::DnfOverflow { limit } => {
                write!(f, "condition exceeds the DNF limit of {limit} conjunctions")
            }
            DslError::Duplicate { what, name, span } => {
                write!(f, "duplicate {what} `{name}` at {span}")
            }
            DslError::InvalidAssignTarget { name, span } => write!(
                f,
                "cannot assign to `{name}` at {span}: only shared variables are assignable"
            ),
        }
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        let e = DslError::UnknownVariable {
            name: "frob".into(),
            span: Span::new(3, 7),
        };
        let text = e.to_string();
        assert!(text.contains("frob"));
        assert!(text.contains("3..7"));
    }

    #[test]
    fn render_draws_a_caret() {
        let e = DslError::UnexpectedChar {
            found: '?',
            span: Span::new(6, 7),
        };
        let rendered = e.render("count ? 3");
        assert!(rendered.contains("count ? 3"));
        assert!(rendered.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn render_without_span() {
        let e = DslError::DnfOverflow { limit: 512 };
        assert!(e.render("x").starts_with("error:"));
    }

    #[test]
    fn span_accessor() {
        assert!(DslError::DnfOverflow { limit: 1 }.span().is_none());
        assert_eq!(
            DslError::IntOverflow {
                span: Span::new(1, 2)
            }
            .span(),
            Some(Span::new(1, 2))
        );
    }
}
