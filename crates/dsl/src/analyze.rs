//! Type checking and variable classification.
//!
//! The language has two types — integers and booleans — and a condition
//! must be a boolean. Variables are integers; they are *shared* when the
//! schema declares them and *local* when the caller binds them at
//! `waituntil` time (anything else is an error). This classification is
//! exactly Def. 1/Def. 5 of the paper: it decides which side of a
//! comparison becomes the shared expression and which globalizes into
//! the tag key.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::error::DslError;
use crate::schema::Schema;

/// The two types of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integers.
    Int,
    /// Booleans.
    Bool,
}

impl Ty {
    fn describe(self) -> &'static str {
        match self {
            Ty::Int => "an integer",
            Ty::Bool => "a boolean",
        }
    }
}

/// Infers the type of `expr`, reporting the first ill-typed node.
///
/// # Errors
///
/// Returns [`DslError::TypeMismatch`] with the span of the offending
/// subexpression.
pub fn infer(expr: &Expr) -> Result<Ty, DslError> {
    match &expr.kind {
        ExprKind::Int(_) | ExprKind::Var(_) => Ok(Ty::Int),
        ExprKind::Bool(_) => Ok(Ty::Bool),
        ExprKind::Unary(UnOp::Neg, inner) => {
            expect(inner, Ty::Int)?;
            Ok(Ty::Int)
        }
        ExprKind::Unary(UnOp::Not, inner) => {
            expect(inner, Ty::Bool)?;
            Ok(Ty::Bool)
        }
        ExprKind::Binary(op, lhs, rhs) => {
            if op.is_arithmetic() {
                expect(lhs, Ty::Int)?;
                expect(rhs, Ty::Int)?;
                Ok(Ty::Int)
            } else if op.is_comparison() {
                expect(lhs, Ty::Int)?;
                expect(rhs, Ty::Int)?;
                Ok(Ty::Bool)
            } else {
                debug_assert!(matches!(op, BinOp::And | BinOp::Or));
                expect(lhs, Ty::Bool)?;
                expect(rhs, Ty::Bool)?;
                Ok(Ty::Bool)
            }
        }
    }
}

fn expect(expr: &Expr, want: Ty) -> Result<(), DslError> {
    let got = infer(expr)?;
    if got == want {
        Ok(())
    } else {
        Err(DslError::TypeMismatch {
            expected: want.describe(),
            found: got.describe(),
            span: expr.span,
        })
    }
}

/// Checks that `expr` is a boolean condition and that every variable is
/// either shared (in `schema`) or bound in `locals`.
///
/// # Errors
///
/// Returns [`DslError::TypeMismatch`] for ill-typed expressions (or a
/// non-boolean top level) and [`DslError::UnknownVariable`] for unbound
/// names.
pub fn check_condition(
    expr: &Expr,
    schema: &Schema,
    locals: &HashMap<String, i64>,
) -> Result<(), DslError> {
    let ty = infer(expr)?;
    if ty != Ty::Bool {
        return Err(DslError::TypeMismatch {
            expected: "a boolean condition",
            found: ty.describe(),
            span: expr.span,
        });
    }
    check_vars(expr, schema, locals)
}

fn check_vars(expr: &Expr, schema: &Schema, locals: &HashMap<String, i64>) -> Result<(), DslError> {
    match &expr.kind {
        ExprKind::Int(_) | ExprKind::Bool(_) => Ok(()),
        ExprKind::Var(name) => {
            if schema.slot(name).is_some() || locals.contains_key(name) {
                Ok(())
            } else {
                Err(DslError::UnknownVariable {
                    name: name.clone(),
                    span: expr.span,
                })
            }
        }
        ExprKind::Unary(_, inner) => check_vars(inner, schema, locals),
        ExprKind::Binary(_, lhs, rhs) => {
            check_vars(lhs, schema, locals)?;
            check_vars(rhs, schema, locals)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn locals(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
    }

    #[test]
    fn well_typed_conditions() {
        let schema = Schema::new(&["count", "cap"]);
        for src in [
            "count >= num",
            "count + num <= cap",
            "true",
            "count == 0 || cap - count > num",
            "!(count == 0) && true",
        ] {
            let e = parse(src).unwrap();
            check_condition(&e, &schema, &locals(&[("num", 1)]))
                .unwrap_or_else(|err| panic!("{src}: {err}"));
        }
    }

    #[test]
    fn arithmetic_condition_is_rejected() {
        let e = parse("count + 1").unwrap();
        let err = check_condition(&e, &Schema::new(&["count"]), &locals(&[])).unwrap_err();
        assert!(matches!(
            err,
            DslError::TypeMismatch {
                expected: "a boolean condition",
                ..
            }
        ));
    }

    #[test]
    fn bool_in_arithmetic_is_rejected() {
        let e = parse("true + 1 == 2").unwrap();
        assert!(matches!(infer(&e), Err(DslError::TypeMismatch { .. })));
    }

    #[test]
    fn int_under_not_is_rejected() {
        let e = parse("!count == 1").unwrap(); // parses as (!count) == 1
        assert!(matches!(infer(&e), Err(DslError::TypeMismatch { .. })));
    }

    #[test]
    fn bool_under_neg_is_rejected() {
        let e = parse("-(count == 1) == 0").unwrap();
        assert!(matches!(infer(&e), Err(DslError::TypeMismatch { .. })));
    }

    #[test]
    fn and_of_ints_is_rejected() {
        let e = parse("count && 1").unwrap();
        assert!(matches!(infer(&e), Err(DslError::TypeMismatch { .. })));
    }

    #[test]
    fn unknown_variable_is_reported() {
        let schema = Schema::new(&["count"]);
        let e = parse("count >= num").unwrap();
        let err = check_condition(&e, &schema, &locals(&[])).unwrap_err();
        match err {
            DslError::UnknownVariable { name, .. } => assert_eq!(name, "num"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn locals_make_variables_known() {
        let schema = Schema::new(&["count"]);
        let e = parse("count >= num").unwrap();
        assert!(check_condition(&e, &schema, &locals(&[("num", 5)])).is_ok());
    }

    #[test]
    fn error_span_points_at_the_variable() {
        let src = "count >= missing";
        let e = parse(src).unwrap();
        let err = check_condition(&e, &Schema::new(&["count"]), &locals(&[])).unwrap_err();
        assert_eq!(err.span().unwrap().slice(src), "missing");
    }
}
