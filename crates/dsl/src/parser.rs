//! Recursive-descent parser for `waituntil` conditions.
//!
//! Precedence (loosest to tightest): `||`, `&&`, comparisons
//! (non-associative), `+`/`-`, `*`, unary `-`/`!`, atoms. This matches
//! Java's precedence for the operators the language supports, since the
//! paper's preprocessor parses Java conditions.

use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::error::DslError;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a condition into an AST.
///
/// # Errors
///
/// Returns any lexer error, plus parse errors for malformed input
/// (unexpected tokens, unbalanced parentheses, chained comparisons).
pub fn parse(source: &str) -> Result<Expr, DslError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.parse_or()?;
    parser.expect_eof()?;
    Ok(expr)
}

/// Token cursor shared between the condition parser and the class
/// parser ([`crate::class`]).
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    pub(crate) fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn expect_eof(&mut self) -> Result<(), DslError> {
        let t = self.peek();
        if t.kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(DslError::UnexpectedToken {
                found: t.kind.describe(),
                expected: "end of input",
                span: t.span,
            })
        }
    }

    pub(crate) fn parse_or(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_and()?;
        while self.peek().kind == TokenKind::OrOr {
            self.advance();
            let rhs = self.parse_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek().kind == TokenKind::AndAnd {
            self.advance();
            let rhs = self.parse_cmp()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn comparison_op(kind: &TokenKind) -> Option<BinOp> {
        match kind {
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::BangEq => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr, DslError> {
        let lhs = self.parse_sum()?;
        let Some(op) = Self::comparison_op(&self.peek().kind) else {
            return Ok(lhs);
        };
        self.advance();
        let rhs = self.parse_sum()?;
        // Reject `a < b < c` with a dedicated diagnostic.
        if Self::comparison_op(&self.peek().kind).is_some() {
            return Err(DslError::ChainedComparison {
                span: self.peek().span,
            });
        }
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn parse_sum(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_prod()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_prod()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn parse_prod(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_unary()?;
        while self.peek().kind == TokenKind::Star {
            self.advance();
            let rhs = self.parse_unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Mul, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, DslError> {
        match self.peek().kind {
            TokenKind::Minus => {
                let start = self.advance().span;
                let inner = self.parse_unary()?;
                let span = start.to(inner.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(inner)), span))
            }
            TokenKind::Bang => {
                let start = self.advance().span;
                let inner = self.parse_unary()?;
                let span = start.to(inner.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(inner)), span))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, DslError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Int(v), t.span)),
            TokenKind::True => Ok(Expr::new(ExprKind::Bool(true), t.span)),
            TokenKind::False => Ok(Expr::new(ExprKind::Bool(false), t.span)),
            TokenKind::Ident(name) => Ok(Expr::new(ExprKind::Var(name), t.span)),
            TokenKind::LParen => {
                let inner = self.parse_or()?;
                let close = self.advance();
                if close.kind != TokenKind::RParen {
                    return Err(DslError::UnexpectedToken {
                        found: close.kind.describe(),
                        expected: "`)`",
                        span: close.span,
                    });
                }
                Ok(Expr::new(inner.kind, t.span.to(close.span)))
            }
            other => Err(DslError::UnexpectedToken {
                found: other.describe(),
                expected: "an expression",
                span: t.span,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(source: &str) -> String {
        parse(source).unwrap().to_string()
    }

    #[test]
    fn precedence_of_bool_operators() {
        assert_eq!(
            p("a == 1 && b == 2 || c == 3"),
            "(((a == 1) && (b == 2)) || (c == 3))"
        );
        assert_eq!(
            p("a == 1 || b == 2 && c == 3"),
            "((a == 1) || ((b == 2) && (c == 3)))"
        );
    }

    #[test]
    fn precedence_of_arithmetic() {
        assert_eq!(p("a + b * c == 0"), "((a + (b * c)) == 0)");
        assert_eq!(p("a * b + c == 0"), "(((a * b) + c) == 0)");
        assert_eq!(p("a - b - c == 0"), "(((a - b) - c) == 0)");
    }

    #[test]
    fn parentheses_override() {
        assert_eq!(p("(a + b) * c == 0"), "(((a + b) * c) == 0)");
        assert_eq!(
            p("(a == 1 || b == 2) && c == 3"),
            "(((a == 1) || (b == 2)) && (c == 3))"
        );
    }

    #[test]
    fn unary_operators() {
        assert_eq!(p("-a < 3"), "(-(a) < 3)");
        assert_eq!(p("--a < 3"), "(-(-(a)) < 3)");
        assert_eq!(p("!(a < 3)"), "!((a < 3))");
        assert_eq!(p("!!(a < 3)"), "!(!((a < 3)))");
    }

    #[test]
    fn the_paper_conditions_parse() {
        // Fig. 1 and §4.3 examples.
        assert_eq!(p("count + n <= cap"), "((count + n) <= cap)");
        assert_eq!(p("count >= num"), "(count >= num)");
        assert_eq!(p("x - a == y + b"), "((x - a) == (y + b))");
        assert_eq!(p("x + b > 2*y + a"), "((x + b) > ((2 * y) + a))");
        assert_eq!(
            p("x == 1 && y == 6 || z != 8"),
            "(((x == 1) && (y == 6)) || (z != 8))"
        );
    }

    #[test]
    fn boolean_literals() {
        assert_eq!(p("true || x == 1"), "(true || (x == 1))");
    }

    #[test]
    fn chained_comparison_is_rejected() {
        let err = parse("a < b < c").unwrap_err();
        assert!(matches!(err, DslError::ChainedComparison { .. }));
    }

    #[test]
    fn unbalanced_paren_is_rejected() {
        let err = parse("(a == 1").unwrap_err();
        assert!(matches!(
            err,
            DslError::UnexpectedToken {
                expected: "`)`",
                ..
            }
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse("a == 1 b").unwrap_err();
        assert!(matches!(
            err,
            DslError::UnexpectedToken {
                expected: "end of input",
                ..
            }
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn lexer_errors_propagate() {
        assert!(matches!(
            parse("a ? b"),
            Err(DslError::UnexpectedChar { .. })
        ));
    }

    #[test]
    fn spans_cover_subexpressions() {
        let e = parse("count >= 48").unwrap();
        assert_eq!(e.span.slice("count >= 48"), "count >= 48");
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        for src in [
            "count >= num",
            "a + b * c - 2 == -d",
            "!(x == 1) && (y < 2 || z >= 3)",
            "true && false || ticket != served",
        ] {
            let once = parse(src).unwrap();
            let twice = parse(&once.to_string()).unwrap();
            // Compare shapes by re-printing (spans differ).
            assert_eq!(once.to_string(), twice.to_string());
        }
    }
}
