//! Tokens and source spans for the `waituntil` expression language.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both operands.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The spanned slice of `source`.
    pub fn slice(self, source: &str) -> &str {
        &source[self.start..self.end.min(source.len())]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier (shared or local variable).
    Ident(String),
    /// `true`
    True,
    /// `false`
    False,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{` (class declarations only)
    LBrace,
    /// `}` (class declarations only)
    RBrace,
    /// `;` (class declarations only)
    Semi,
    /// `,` (class declarations only)
    Comma,
    /// `=` — assignment in method bodies; a type error inside
    /// conditions (use `==`).
    Assign,
    /// `monitor` keyword.
    KwMonitor,
    /// `var` keyword.
    KwVar,
    /// `method` keyword.
    KwMethod,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `return` keyword.
    KwReturn,
    /// `waituntil` keyword.
    KwWaituntil,
    /// `while` keyword.
    KwWhile,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::BangEq => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::KwMonitor => "`monitor`".into(),
            TokenKind::KwVar => "`var`".into(),
            TokenKind::KwMethod => "`method`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::KwReturn => "`return`".into(),
            TokenKind::KwWaituntil => "`waituntil`".into(),
            TokenKind::KwWhile => "`while`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union_and_slice() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(Span::new(0, 5).slice("count >= 3"), "count");
    }

    #[test]
    fn slice_clamps_to_source_length() {
        assert_eq!(Span::new(0, 99).slice("abc"), "abc");
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(TokenKind::Int(42).describe(), "integer `42`");
        assert_eq!(TokenKind::Ident("n".into()).describe(), "identifier `n`");
        assert_eq!(TokenKind::Ge.describe(), "`>=`");
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
