//! Property tests for the DSL pipeline.
//!
//! 1. Pretty-print/parse round-trips preserve structure.
//! 2. Lowered predicates agree with direct AST interpretation on random
//!    states and bindings (the compiler is semantics-preserving).
//! 3. Well-typed random conditions always compile.

use std::collections::HashMap;
use std::sync::Arc;

use autosynch_dsl::ast::{BinOp, Expr, ExprKind, UnOp};
use autosynch_dsl::lower::{lower, TableSink};
use autosynch_dsl::parser::parse;
use autosynch_dsl::schema::Schema;
use autosynch_dsl::token::Span;
use proptest::prelude::*;

const SHARED: [&str; 3] = ["s0", "s1", "s2"];
const LOCALS: [&str; 2] = ["l0", "l1"];

fn sp() -> Span {
    Span::new(0, 0)
}

fn expr(kind: ExprKind) -> Expr {
    Expr::new(kind, sp())
}

/// Random integer-typed expressions over shared and local variables.
fn arb_int_expr() -> impl Strategy<Value = Expr> {
    // Literals are non-negative: `-7` prints as `-7` but reparses as
    // Neg(7), which would break string-stability; negation is covered
    // by an explicit Neg arm instead.
    let leaf = prop_oneof![
        (0i64..=20).prop_map(|v| expr(ExprKind::Int(v))),
        prop::sample::select(SHARED.to_vec()).prop_map(|name| expr(ExprKind::Var(name.to_owned()))),
        prop::sample::select(LOCALS.to_vec()).prop_map(|name| expr(ExprKind::Var(name.to_owned()))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| expr(ExprKind::Binary(
                BinOp::Add,
                Box::new(a),
                Box::new(b)
            ))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| expr(ExprKind::Binary(
                BinOp::Sub,
                Box::new(a),
                Box::new(b)
            ))),
            inner
                .clone()
                .prop_map(|a| expr(ExprKind::Unary(UnOp::Neg, Box::new(a)))),
            // Keep one side a small constant so products stay linear
            // often; non-linear cases exercise the fallback paths.
            (inner.clone(), 0i64..=3).prop_map(|(a, k)| expr(ExprKind::Binary(
                BinOp::Mul,
                Box::new(a),
                Box::new(expr(ExprKind::Int(k)))
            ))),
            (inner.clone(), inner).prop_map(|(a, b)| expr(ExprKind::Binary(
                BinOp::Mul,
                Box::new(a),
                Box::new(b)
            ))),
        ]
    })
}

/// Random boolean-typed conditions.
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let cmp = (
        arb_int_expr(),
        prop::sample::select(vec![
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ]),
        arb_int_expr(),
    )
        .prop_map(|(a, op, b)| expr(ExprKind::Binary(op, Box::new(a), Box::new(b))));
    let leaf = prop_oneof![
        6 => cmp,
        1 => any::<bool>().prop_map(|b| expr(ExprKind::Bool(b))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| expr(ExprKind::Binary(
                BinOp::And,
                Box::new(a),
                Box::new(b)
            ))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| expr(ExprKind::Binary(
                BinOp::Or,
                Box::new(a),
                Box::new(b)
            ))),
            inner.prop_map(|a| expr(ExprKind::Unary(UnOp::Not, Box::new(a)))),
        ]
    })
}

/// Direct reference interpretation of a boolean condition.
fn interp_bool(e: &Expr, shared: &[i64; 3], locals: &HashMap<String, i64>) -> bool {
    match &e.kind {
        ExprKind::Bool(b) => *b,
        ExprKind::Unary(UnOp::Not, inner) => !interp_bool(inner, shared, locals),
        ExprKind::Binary(BinOp::And, a, b) => {
            interp_bool(a, shared, locals) && interp_bool(b, shared, locals)
        }
        ExprKind::Binary(BinOp::Or, a, b) => {
            interp_bool(a, shared, locals) || interp_bool(b, shared, locals)
        }
        ExprKind::Binary(op, a, b) => {
            let lhs = interp_int(a, shared, locals);
            let rhs = interp_int(b, shared, locals);
            match op {
                BinOp::Eq => lhs == rhs,
                BinOp::Ne => lhs != rhs,
                BinOp::Lt => lhs < rhs,
                BinOp::Le => lhs <= rhs,
                BinOp::Gt => lhs > rhs,
                BinOp::Ge => lhs >= rhs,
                other => unreachable!("{other}"),
            }
        }
        other => unreachable!("{other:?}"),
    }
}

fn interp_int(e: &Expr, shared: &[i64; 3], locals: &HashMap<String, i64>) -> i64 {
    match &e.kind {
        ExprKind::Int(v) => *v,
        ExprKind::Var(name) => match SHARED.iter().position(|s| s == name) {
            Some(slot) => shared[slot],
            None => locals[name],
        },
        ExprKind::Unary(UnOp::Neg, inner) => interp_int(inner, shared, locals).wrapping_neg(),
        ExprKind::Binary(BinOp::Add, a, b) => {
            interp_int(a, shared, locals).wrapping_add(interp_int(b, shared, locals))
        }
        ExprKind::Binary(BinOp::Sub, a, b) => {
            interp_int(a, shared, locals).wrapping_sub(interp_int(b, shared, locals))
        }
        ExprKind::Binary(BinOp::Mul, a, b) => {
            interp_int(a, shared, locals).wrapping_mul(interp_int(b, shared, locals))
        }
        other => unreachable!("{other:?}"),
    }
}

fn bindings(l0: i64, l1: i64) -> HashMap<String, i64> {
    HashMap::from([("l0".to_owned(), l0), ("l1".to_owned(), l1)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_print_parse_roundtrip(e in arb_bool_expr()) {
        let printed = e.to_string();
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn lowering_agrees_with_interpretation(
        e in arb_bool_expr(),
        shared in prop::array::uniform3(-10i64..=10),
        l0 in -10i64..=10,
        l1 in -10i64..=10,
    ) {
        let schema = Arc::new(Schema::new(&SHARED));
        let sink = TableSink::new();
        let locals = bindings(l0, l1);
        // Coefficients stay tiny, so LinearOverflow is impossible here;
        // any other error is a bug.
        let pred = lower(&e, &schema, &locals, &sink).unwrap();

        let mut env = schema.env();
        for (slot, value) in shared.iter().enumerate() {
            env.set(slot, *value);
        }
        let lowered = sink.with_table(|t| pred.eval(&env, t));
        let direct = interp_bool(&e, &shared, &locals);
        prop_assert_eq!(lowered, direct, "{} at shared={:?} l0={} l1={}", e, shared, l0, l1);
    }

    #[test]
    fn parse_of_printed_lowers_identically(
        e in arb_bool_expr(),
        shared in prop::array::uniform3(-6i64..=6),
    ) {
        // print → parse → lower must agree with lower of the original.
        let schema = Arc::new(Schema::new(&SHARED));
        let locals = bindings(2, -3);
        let sink = TableSink::new();
        let direct = lower(&e, &schema, &locals, &sink).unwrap();
        let reparsed = parse(&e.to_string()).unwrap();
        let roundtrip = lower(&reparsed, &schema, &locals, &sink).unwrap();

        let mut env = schema.env();
        for (slot, value) in shared.iter().enumerate() {
            env.set(slot, *value);
        }
        let a = sink.with_table(|t| direct.eval(&env, t));
        let b = sink.with_table(|t| roundtrip.eval(&env, t));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn equivalent_spellings_share_keys(
        a in -8i64..=8,
        b in -8i64..=8,
    ) {
        // s0 - a == s1 + b  must intern like  s0 - s1 == a + b.
        let schema = Arc::new(Schema::new(&SHARED));
        let sink = TableSink::new();
        let locals = bindings(a, b);
        let left = lower(
            &parse("s0 - l0 == s1 + l1").unwrap(),
            &schema, &locals, &sink,
        ).unwrap();
        let right = lower(
            &parse("s0 - s1 == l0 + l1").unwrap(),
            &schema, &locals, &sink,
        ).unwrap();
        prop_assert_eq!(left.key(), right.key());
        prop_assert!(left.key().is_some());
    }
}
