//! Regenerates every figure and table of the AutoSynch paper as text
//! series.
//!
//! ```text
//! cargo run --release -p autosynch-bench --bin reproduce -- all
//! cargo run --release -p autosynch-bench --bin reproduce -- fig14 fig15
//! AUTOSYNCH_FULL=1 cargo run --release -p autosynch-bench --bin reproduce -- all
//! ```
//!
//! Cells are runtime seconds unless the figure says otherwise. The
//! paper's absolute numbers came from a 16-socket Xeon with multi-second
//! runs; the comparison target here is each curve's *shape*.

use std::time::Instant;

use autosynch_bench::figures;
use autosynch_bench::sweep;
use autosynch_metrics::report::Table;

struct Experiment {
    id: &'static str,
    title: &'static str,
    expectation: &'static str,
    run: fn() -> Table,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "fig8",
        title: "Fig. 8 — bounded buffer (runtime, seconds)",
        expectation: "baseline slowest; explicit ≈ AutoSynch-T ≈ AutoSynch",
        run: figures::fig8,
    },
    Experiment {
        id: "fig8x",
        title: "Fig. 8 supplement — signaling counters, bounded buffer",
        expectation: "baseline: zero signals, all broadcasts, high futile ratio",
        run: figures::fig8_counters,
    },
    Experiment {
        id: "fig9",
        title: "Fig. 9 — H2O (runtime, seconds)",
        expectation: "baseline slowest; the other three comparable",
        run: figures::fig9,
    },
    Experiment {
        id: "fig10",
        title: "Fig. 10 — sleeping barber (runtime, seconds)",
        expectation: "all four comparable (broadcasts are not wasted here)",
        run: figures::fig10,
    },
    Experiment {
        id: "fig11",
        title: "Fig. 11 — round-robin access pattern (runtime, seconds)",
        expectation: "explicit flat; AutoSynch within ~1.2-2.6x; AutoSynch-T grows with threads",
        run: figures::fig11,
    },
    Experiment {
        id: "fig12",
        title: "Fig. 12 — readers/writers (runtime, seconds)",
        expectation: "explicit flat; AutoSynch close; AutoSynch-T degrades as threads grow",
        run: figures::fig12,
    },
    Experiment {
        id: "fig13",
        title: "Fig. 13 — dining philosophers (runtime, seconds)",
        expectation: "explicit does not outrun the automatic monitors by much",
        run: figures::fig13,
    },
    Experiment {
        id: "fig14",
        title: "Fig. 14 — parameterized bounded buffer (runtime, seconds)",
        expectation: "explicit degrades with consumers; AutoSynch flat and far faster at scale",
        run: figures::fig14,
    },
    Experiment {
        id: "fig15",
        title: "Fig. 15 — context switches for the Fig. 14 runs (thousands)",
        expectation: "explicit grows into the millions; AutoSynch stays in the thousands",
        run: figures::fig15,
    },
    Experiment {
        id: "table1",
        title: "Table 1 — CPU-usage breakdown, round-robin",
        expectation: "tagging cuts relaySignal time ~95% for a small tagMgr cost",
        run: figures::table1,
    },
    Experiment {
        id: "relay",
        title: "Extension — relay-cost accounting incl. change-driven and sharded modes",
        expectation: "AutoSynch-Shard: fewer pred evals than AutoSynch-CD at equal outcomes; emits BENCH_shard.json",
        run: figures::relay_cost,
    },
    Experiment {
        id: "park",
        title: "Extension — signaler-lock hold time: parked vs sharded vs change-driven",
        expectation: "AutoSynch-Park: lower hold time (waiters self-check via the ring); emits BENCH_park.json",
        run: figures::park_hold,
    },
    Experiment {
        id: "wake",
        title: "Extension — wake precision: routed vs parked unparks and self-checks",
        expectation: "AutoSynch-Route: ~1 unpark/relay on fig11, ladder skips on fig14, transient cache hits on the mix — strictly fewer self-checks and unparks/relay than Park throughout; emits BENCH_wake.json",
        run: figures::wake_routing,
    },
    Experiment {
        id: "extstorm",
        title: "Extension — wake storm: K hot expressions x N waiters (runtime, seconds)",
        expectation: "adversarial signal order; routing shines where broadcast parking herds",
        run: figures::ext_wake_storm,
    },
    Experiment {
        id: "api",
        title: "Extension — v2 API cost: compile-once Cond waits vs per-call analysis",
        expectation: "v2 per-wait setup strictly below v1 on every shape; emits BENCH_api.json",
        run: figures::api_cost,
    },
    Experiment {
        id: "extshardq",
        title: "Extension — sharded queues: N independent queues, one monitor (runtime, seconds)",
        expectation: "disequality (None-tag) predicates; sharding confines each relay to one shard",
        run: figures::ext_sharded_queues,
    },
    Experiment {
        id: "extshardqx",
        title: "Extension supplement — sharded-queues probe counters",
        expectation: "AutoSynch-Shard undercuts AutoSynch-CD on pred_evals at identical outcomes",
        run: figures::ext_sharded_queues_counters,
    },
    Experiment {
        id: "extbarrier",
        title: "Extension — cyclic barrier (runtime, seconds)",
        expectation: "a second signalAll-bound family: explicit broadcasts per generation, AutoSynch relays",
        run: figures::ext_barrier,
    },
    Experiment {
        id: "extbarrierx",
        title: "Extension supplement — barrier signaling counters",
        expectation: "explicit: one signalAll per generation; AutoSynch: zero broadcasts",
        run: figures::ext_barrier_counters,
    },
    Experiment {
        id: "obs",
        title: "Extension — observability: wait-latency percentiles + flight recorder",
        expectation: "finite p999 per mode on every shape; trace captures >= 6 event kinds; \
                      telemetry-off elided latency matches the api fast_path row",
        run: figures::obs,
    },
    Experiment {
        id: "async",
        title: "Extension — async waiters: 100k-waiter scale proof + thread equivalence",
        expectation: "100,000+ concurrent wait_async registrations at the hold-off release \
                      with finite wait percentiles; async == threaded outcomes at equal ops",
        run: figures::async_waiters,
    },
    Experiment {
        id: "watch",
        title: "Extension — watchtower: wait-span attribution + live pathology detectors",
        expectation: "stitched phase attributions reconcile with the monitors' own wait \
                      totals; each engineered pathology cell arms its detector while its \
                      control twin stays silent; watching costs the elided lane nothing",
        run: figures::watch,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&Experiment> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        let mut chosen = Vec::new();
        for arg in &args {
            match EXPERIMENTS.iter().find(|e| e.id == arg) {
                Some(e) => chosen.push(e),
                None => {
                    eprintln!(
                        "unknown experiment `{arg}`; available: {} all",
                        EXPERIMENTS
                            .iter()
                            .map(|e| e.id)
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    std::process::exit(2);
                }
            }
        }
        chosen
    };

    println!(
        "AutoSynch reproduction — {} mode (ops budget {} per point{})",
        if sweep::full_scale() {
            "FULL paper-grid"
        } else {
            "quick"
        },
        sweep::ops_budget(),
        if sweep::full_scale() {
            ""
        } else {
            "; set AUTOSYNCH_FULL=1 for the 2..256 grid"
        }
    );
    println!();

    for experiment in selected {
        let started = Instant::now();
        let table = (experiment.run)();
        println!("## {}", experiment.title);
        println!("   paper shape: {}", experiment.expectation);
        println!();
        print!("{table}");
        println!("   [swept in {:.1}s]", started.elapsed().as_secs_f64());
        println!();
    }
}
