//! The benchmark harness regenerating every table and figure of the
//! AutoSynch paper's evaluation (§6.4).
//!
//! Two entry points share the definitions in [`figures`]:
//!
//! * `cargo bench -p autosynch-bench` — Criterion benches, one per
//!   runtime figure, for statistically careful per-point timing.
//! * `cargo run --release -p autosynch-bench --bin reproduce` — one-shot
//!   sweeps that print each figure as a text series in the paper's
//!   layout (including Fig. 15's context-switch counts and Table 1's
//!   CPU breakdown, which are not timing benchmarks).
//!
//! Scale: the paper ran 25 repetitions on a 16-socket Xeon with thread
//! counts up to 256 and multi-second runs. Default parameters here are
//! scaled down so a full `reproduce all` takes minutes on a laptop;
//! `AUTOSYNCH_FULL=1` restores the paper's thread grid (at laptop-scale
//! op counts). Absolute seconds are not the reproduction target — the
//! *shape* of each curve is.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod sweep;
pub mod trace;
