//! Sweep parameters: thread grids and operation counts.
//!
//! The paper's x-axes double from 2 to 256 threads. A full grid at
//! meaningful op counts is minutes of wall clock; the default grid is a
//! subset unless `AUTOSYNCH_FULL=1` is set.

/// The paper's thread grid (Figs. 8–11, 13–15).
pub const PAPER_GRID: [usize; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// The reduced default grid.
pub const QUICK_GRID: [usize; 4] = [2, 8, 32, 128];

/// Writers/readers pairs of Fig. 12 (readers = 5 × writers).
pub const PAPER_RW_GRID: [(usize, usize); 6] =
    [(2, 10), (4, 20), (8, 40), (16, 80), (32, 160), (64, 320)];

/// The reduced Fig. 12 grid.
pub const QUICK_RW_GRID: [(usize, usize); 3] = [(2, 10), (8, 40), (32, 160)];

/// Whether `AUTOSYNCH_FULL=1` requests the paper grid.
pub fn full_scale() -> bool {
    std::env::var("AUTOSYNCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The active thread grid.
pub fn thread_grid() -> Vec<usize> {
    if full_scale() {
        PAPER_GRID.to_vec()
    } else {
        QUICK_GRID.to_vec()
    }
}

/// The active writers/readers grid.
pub fn rw_grid() -> Vec<(usize, usize)> {
    if full_scale() {
        PAPER_RW_GRID.to_vec()
    } else {
        QUICK_RW_GRID.to_vec()
    }
}

/// Work budget per figure point: total monitor operations across all
/// threads. Keeping the *total* fixed as threads grow (rather than
/// per-thread counts) keeps every point's wall clock in the same ballpark
/// and matches how the harness divides work.
pub fn ops_budget() -> usize {
    match std::env::var("AUTOSYNCH_OPS") {
        Ok(v) => v.parse().unwrap_or(20_000),
        Err(_) => 20_000,
    }
}

/// Per-thread ops for `n` threads under the shared budget (at least 1).
pub fn ops_per_thread(n: usize) -> usize {
    (ops_budget() / n.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_ascending() {
        assert!(PAPER_GRID.windows(2).all(|w| w[0] < w[1]));
        assert!(QUICK_GRID.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quick_grid_is_subset_of_paper_grid() {
        assert!(QUICK_GRID.iter().all(|n| PAPER_GRID.contains(n)));
    }

    #[test]
    fn rw_pairs_keep_five_to_one() {
        for (w, r) in PAPER_RW_GRID {
            assert_eq!(r, 5 * w);
        }
    }

    #[test]
    fn ops_split_is_positive() {
        for n in PAPER_GRID {
            assert!(ops_per_thread(n) >= 1);
        }
    }
}
