//! One runner per paper figure/table, shared by the Criterion benches
//! and the `reproduce` binary.
//!
//! Each `figN` function performs the full x-axis sweep for its figure
//! and returns an aligned text table whose columns are the paper's
//! legend entries and whose cells are runtime seconds (or counts, for
//! Fig. 15 and Table 1).

use std::sync::Arc;

use autosynch::Monitor;
use autosynch_metrics::phase::Phase;
use autosynch_metrics::report::{kilo, secs, Table};
use autosynch_problems::asynch::{self, AsyncQueuesConfig, AsyncStormConfig};
use autosynch_problems::bounded_buffer::{self, BoundedBufferConfig};
use autosynch_problems::cyclic_barrier::{self, BarrierConfig};
use autosynch_problems::dining::{self, DiningConfig};
use autosynch_problems::h2o::{self, H2oConfig};
use autosynch_problems::mechanism::{timed_run, Mechanism, RunReport};
use autosynch_problems::param_bounded_buffer::{self, ParamBoundedBufferConfig};
use autosynch_problems::readers_writers::{self, ReadersWritersConfig};
use autosynch_problems::round_robin::{self, RoundRobinConfig};
use autosynch_problems::sharded_queues::{self, ShardedQueuesConfig};
use autosynch_problems::sleeping_barber::{self, SleepingBarberConfig};
use autosynch_problems::wake_storm::{self, WakeStormConfig};

use crate::sweep;

fn runtime_row(x_label: String, reports: &[RunReport]) -> Vec<String> {
    let mut row = vec![x_label];
    row.extend(reports.iter().map(|r| secs(r.elapsed)));
    row
}

fn header(x: &str, mechanisms: &[Mechanism]) -> Vec<String> {
    let mut columns = vec![x.to_owned()];
    columns.extend(mechanisms.iter().map(|m| m.label().to_owned()));
    columns
}

/// Fig. 8: bounded buffer, runtime vs #producers (= #consumers).
pub fn fig8() -> Table {
    let mechanisms = Mechanism::ALL;
    let mut table = Table::new(header("producers/consumers", &mechanisms));
    for n in sweep::thread_grid() {
        let pairs = (n / 2).max(1);
        let config = BoundedBufferConfig {
            producers: pairs,
            consumers: pairs,
            ops_per_thread: sweep::ops_per_thread(pairs * 2),
            capacity: 16,
        };
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| bounded_buffer::run(m, config))
            .collect();
        table.row(runtime_row(n.to_string(), &reports));
    }
    table
}

/// Fig. 9: H2O, runtime vs #H-atom threads (one O thread).
pub fn fig9() -> Table {
    let mechanisms = Mechanism::ALL;
    let mut table = Table::new(header("H-atoms", &mechanisms));
    for n in sweep::thread_grid() {
        let h_threads = n.max(2);
        let mut events = sweep::ops_per_thread(h_threads);
        if (h_threads * events) % 2 == 1 {
            events += 1; // stoichiometry needs an even total
        }
        let config = H2oConfig {
            h_threads,
            events_per_h: events,
        };
        let reports: Vec<RunReport> = mechanisms.iter().map(|&m| h2o::run(m, config)).collect();
        table.row(runtime_row(h_threads.to_string(), &reports));
    }
    table
}

/// Fig. 10: sleeping barber, runtime vs #customers.
pub fn fig10() -> Table {
    let mechanisms = Mechanism::ALL;
    let mut table = Table::new(header("customers", &mechanisms));
    for n in sweep::thread_grid() {
        let config = SleepingBarberConfig {
            customers: n,
            visits_per_customer: sweep::ops_per_thread(n),
            chairs: 8,
        };
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| sleeping_barber::run(m, config).report)
            .collect();
        table.row(runtime_row(n.to_string(), &reports));
    }
    table
}

/// Fig. 11: round-robin access pattern, runtime vs #threads (explicit,
/// AutoSynch-T, AutoSynch — the baseline is off the chart in the paper).
pub fn fig11() -> Table {
    let mechanisms = Mechanism::WITHOUT_BASELINE;
    let mut table = Table::new(header("threads", &mechanisms));
    for n in sweep::thread_grid() {
        let config = RoundRobinConfig {
            threads: n,
            rounds: sweep::ops_per_thread(n),
        };
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| round_robin::run(m, config))
            .collect();
        table.row(runtime_row(n.to_string(), &reports));
    }
    table
}

/// Fig. 12: ticketed readers/writers, runtime vs writers/readers pairs.
pub fn fig12() -> Table {
    let mechanisms = Mechanism::WITHOUT_BASELINE;
    let mut table = Table::new(header("writers/readers", &mechanisms));
    for (writers, readers) in sweep::rw_grid() {
        let config = ReadersWritersConfig {
            writers,
            readers,
            ops_per_thread: sweep::ops_per_thread(writers + readers),
        };
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| readers_writers::run(m, config))
            .collect();
        table.row(runtime_row(format!("{writers}/{readers}"), &reports));
    }
    table
}

/// Fig. 13: dining philosophers, runtime vs #philosophers.
pub fn fig13() -> Table {
    let mechanisms = Mechanism::WITHOUT_BASELINE;
    let mut table = Table::new(header("philosophers", &mechanisms));
    for n in sweep::thread_grid() {
        let philosophers = n.max(2);
        let config = DiningConfig {
            philosophers,
            meals_per_philosopher: sweep::ops_per_thread(philosophers),
        };
        let reports: Vec<RunReport> = mechanisms.iter().map(|&m| dining::run(m, config)).collect();
        table.row(runtime_row(philosophers.to_string(), &reports));
    }
    table
}

fn fig14_config(consumers: usize) -> ParamBoundedBufferConfig {
    ParamBoundedBufferConfig {
        consumers,
        takes_per_consumer: (sweep::ops_budget() / 8 / consumers).max(4),
        max_items: 128,
        capacity: 256,
        seed: 0x5EED,
    }
}

/// Fig. 14: parameterized bounded buffer, runtime vs #consumers
/// (explicit vs AutoSynch).
pub fn fig14() -> Table {
    let mechanisms = [Mechanism::Explicit, Mechanism::AutoSynch];
    let mut table = Table::new(header("consumers", &mechanisms));
    for n in sweep::thread_grid() {
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| param_bounded_buffer::run(m, fig14_config(n)))
            .collect();
        table.row(runtime_row(n.to_string(), &reports));
    }
    table
}

/// Fig. 15: context switches for the Fig. 14 runs, in thousands.
///
/// Primary metric: wakeups (every return from a blocked wait is one
/// voluntary context switch). The kernel's process-wide voluntary
/// counter is shown alongside when `/proc` is available.
pub fn fig15() -> Table {
    let mut table = Table::with_columns(&[
        "consumers",
        "explicit (K wakeups)",
        "AutoSynch (K wakeups)",
        "explicit (K kernel)",
        "AutoSynch (K kernel)",
    ]);
    for n in sweep::thread_grid() {
        let explicit = param_bounded_buffer::run(Mechanism::Explicit, fig14_config(n));
        let auto = param_bounded_buffer::run(Mechanism::AutoSynch, fig14_config(n));
        let kernel = |r: &RunReport| {
            r.ctx
                .map(|c| kilo(c.voluntary))
                .unwrap_or_else(|| "n/a".into())
        };
        table.row(vec![
            n.to_string(),
            kilo(explicit.stats.counters.wakeups),
            kilo(auto.stats.counters.wakeups),
            kernel(&explicit),
            kernel(&auto),
        ]);
    }
    table
}

/// Supplement to Fig. 8: the signaling counters behind the curves.
/// `parking_lot`'s wait morphing mutes the *runtime* cost of the
/// baseline's broadcasts on this problem; the counters show the
/// mechanism anyway (broadcasts instead of signals, far more futile
/// wakeups).
pub fn fig8_counters() -> Table {
    let mut table = Table::with_columns(&[
        "mechanism",
        "signals",
        "signalAll",
        "wakeups",
        "futile",
        "futile%",
    ]);
    let pairs = if sweep::full_scale() { 64 } else { 16 };
    let config = BoundedBufferConfig {
        producers: pairs,
        consumers: pairs,
        ops_per_thread: sweep::ops_per_thread(pairs * 2),
        capacity: 16,
    };
    for mechanism in Mechanism::ALL {
        let report = bounded_buffer::run(mechanism, config);
        let c = report.stats.counters;
        table.row(vec![
            mechanism.label().to_owned(),
            c.signals.to_string(),
            c.broadcasts.to_string(),
            c.wakeups.to_string(),
            c.futile_wakeups.to_string(),
            format!("{:.1}", c.futile_ratio() * 100.0),
        ]);
    }
    table
}

/// Table 1: CPU-usage breakdown for the round-robin pattern at 128
/// threads (or the largest grid point in quick mode).
pub fn table1() -> Table {
    let threads = if sweep::full_scale() { 128 } else { 32 };
    // 4x the figure budget: the AutoSynch-T relay scan is O(waiters)
    // per call, so longer runs sharpen the contrast the paper measured
    // over multi-minute profiles.
    let config = RoundRobinConfig {
        threads,
        rounds: sweep::ops_per_thread(threads) * 4,
    };
    let mut table = Table::with_columns(&[
        "mechanism",
        "await(ms)",
        "%",
        "lock(ms)",
        "%",
        "relaySignal(ms)",
        "%",
        "tagMgr(ms)",
        "%",
        "others(ms)",
        "total(ms)",
    ]);
    for mechanism in Mechanism::WITHOUT_BASELINE {
        let report = round_robin::run_timed(mechanism, config);
        let phases = report.stats.phases;
        let ms = |p: Phase| format!("{:.1}", phases.nanos(p) as f64 / 1e6);
        let pct = |p: Phase| format!("{:.2}", phases.share(p) * 100.0);
        table.row(vec![
            mechanism.label().to_owned(),
            ms(Phase::Await),
            pct(Phase::Await),
            ms(Phase::Lock),
            pct(Phase::Lock),
            ms(Phase::RelaySignal),
            pct(Phase::RelaySignal),
            ms(Phase::TagManager),
            pct(Phase::TagManager),
            ms(Phase::Other),
            format!("{:.1}", phases.total_nanos() as f64 / 1e6),
        ]);
    }
    table
}

/// Extension: relay-cost accounting across every mechanism (including
/// the change-driven and sharded extensions) on the Fig. 14
/// parameterized bounded buffer, the Fig. 11 round robin, and the
/// many-queue sharding showcase. Besides the text table, the series is
/// written to `BENCH_shard.json` (the successor of `BENCH_relay.json`,
/// now carrying the `AutoSynch-Shard` mechanism rows and the
/// `sharded_queues` workload) so later optimization PRs have a
/// machine-readable perf trajectory to diff against.
pub fn relay_cost() -> Table {
    let mut table = Table::with_columns(&[
        "workload",
        "mechanism",
        "elapsed(s)",
        "expr_evals",
        "pred_evals",
        "probes_skipped",
        "relay_skips",
        "unchanged_exprs",
        "relay_calls",
        "signals",
        "wakeups",
    ]);
    let consumers = if sweep::full_scale() { 64 } else { 16 };
    let rr_threads = if sweep::full_scale() { 64 } else { 16 };
    let rr_config = RoundRobinConfig {
        threads: rr_threads,
        rounds: sweep::ops_per_thread(rr_threads),
    };
    let mut entries = String::new();
    let mut record = |workload: &str, report: &RunReport| {
        let c = report.stats.counters;
        table.row(vec![
            workload.to_owned(),
            report.mechanism.label().to_owned(),
            secs(report.elapsed),
            c.expr_evals.to_string(),
            c.pred_evals.to_string(),
            c.probes_skipped.to_string(),
            c.relay_skips.to_string(),
            c.unchanged_exprs.to_string(),
            c.relay_calls.to_string(),
            c.signals.to_string(),
            c.wakeups.to_string(),
        ]);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"mechanism\": \"{}\", \
             \"elapsed_s\": {:.6}, \"expr_evals\": {}, \"pred_evals\": {}, \
             \"probes_skipped\": {}, \"relay_skips\": {}, \
             \"unchanged_exprs\": {}, \"relay_calls\": {}, \"signals\": {}, \
             \"wakeups\": {}, \"futile_wakeups\": {}, \"broadcasts\": {}}}",
            report.mechanism.label(),
            report.elapsed.as_secs_f64(),
            c.expr_evals,
            c.pred_evals,
            c.probes_skipped,
            c.relay_skips,
            c.unchanged_exprs,
            c.relay_calls,
            c.signals,
            c.wakeups,
            c.futile_wakeups,
            c.broadcasts,
        ));
    };
    for mechanism in Mechanism::ALL {
        let report = param_bounded_buffer::run(mechanism, fig14_config(consumers));
        record("fig14_param_bounded_buffer", &report);
    }
    for mechanism in Mechanism::ALL {
        let report = round_robin::run(mechanism, rr_config);
        record("fig11_round_robin", &report);
    }
    for mechanism in Mechanism::ALL {
        let report = sharded_queues::run(mechanism, shard_queues_config(consumers / 2));
        record("ext_sharded_queues", &report);
    }
    let json = format!("{{\n  \"benchmarks\": [\n{entries}\n  ]\n}}\n");
    let path = "BENCH_shard.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [relay-cost series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

/// Extension: signaler-lock hold time, parked vs sharded vs
/// change-driven, on the three workloads where shrinking the signaler's
/// critical section matters most (Fig. 11 round robin, Fig. 14
/// parameterized buffer, and the many-queue showcase). Timing is
/// enabled, so the `hold` stat records the in-lock duration of every
/// relay; the parked column should undercut the sharded one because a
/// parked relay neither probes indexes nor evaluates waiters'
/// predicates — the waiters self-check against the snapshot ring
/// (`waiter_self_checks` / `false_wakeups`). The series is written to
/// `BENCH_park.json` for the perf trajectory.
pub fn park_hold() -> Table {
    let mut table = Table::with_columns(&[
        "workload",
        "mechanism",
        "elapsed(s)",
        "hold(ms)",
        "hold/relay(ns)",
        "self_checks",
        "false_wakeups",
        "futile",
        "unparks",
        "named_muts",
        "pred_evals",
    ]);
    let mechanisms = [
        Mechanism::AutoSynchCD,
        Mechanism::AutoSynchShard,
        Mechanism::AutoSynchPark,
    ];
    let consumers = if sweep::full_scale() { 64 } else { 16 };
    let rr_threads = if sweep::full_scale() { 64 } else { 16 };
    let rr_config = RoundRobinConfig {
        threads: rr_threads,
        rounds: sweep::ops_per_thread(rr_threads),
    };
    let queues_config = shard_queues_config(consumers / 2);
    let mut entries = String::new();
    let mut record = |workload: &str, report: &RunReport| {
        let c = report.stats.counters;
        let hold = report.stats.hold;
        table.row(vec![
            workload.to_owned(),
            report.mechanism.label().to_owned(),
            secs(report.elapsed),
            format!("{:.2}", hold.nanos as f64 / 1e6),
            format!("{:.0}", hold.mean_nanos()),
            c.waiter_self_checks.to_string(),
            c.false_wakeups.to_string(),
            c.futile_wakeups.to_string(),
            c.unparks.to_string(),
            c.named_mutations.to_string(),
            c.pred_evals.to_string(),
        ]);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"mechanism\": \"{}\", \
             \"elapsed_s\": {:.6}, \"hold_ns\": {}, \"relay_calls\": {}, \
             \"hold_per_relay_ns\": {:.1}, \"waiter_self_checks\": {}, \
             \"false_wakeups\": {}, \"futile_wakeups\": {}, \"unparks\": {}, \
             \"named_mutations\": {}, \"pred_evals\": {}, \"expr_evals\": {}, \
             \"wakeups\": {}, \"broadcasts\": {}}}",
            report.mechanism.label(),
            report.elapsed.as_secs_f64(),
            hold.nanos,
            c.relay_calls,
            hold.mean_nanos(),
            c.waiter_self_checks,
            c.false_wakeups,
            c.futile_wakeups,
            c.unparks,
            c.named_mutations,
            c.pred_evals,
            c.expr_evals,
            c.wakeups,
            c.broadcasts,
        ));
    };
    for mechanism in mechanisms {
        let report = param_bounded_buffer::run_timed(mechanism, fig14_config(consumers));
        record("fig14_param_bounded_buffer", &report);
    }
    for mechanism in mechanisms {
        let report = round_robin::run_timed(mechanism, rr_config);
        record("fig11_round_robin", &report);
    }
    for mechanism in mechanisms {
        let report = sharded_queues::run_timed(mechanism, queues_config);
        record("ext_sharded_queues", &report);
    }
    let json = format!("{{\n  \"benchmarks\": [\n{entries}\n  ]\n}}\n");
    let path = "BENCH_park.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [park hold-time series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

/// A mixed compiled/transient bounded buffer: producers wait on
/// compiled `free >= put` conditions (slot buckets, ladder rungs),
/// consumers on per-call `wait_transient(level >= take)` predicates
/// with only three distinct take shapes — the repeating-but-uncompiled
/// pattern the bounded transient LRU graduates off the per-gate
/// broadcast bucket (visible as `transient_cache_hits` under Route).
fn transient_mix_run(mechanism: Mechanism, pairs: usize, ops: usize) -> RunReport {
    struct Buf {
        level: i64,
        cap: i64,
    }
    let config = mechanism
        .monitor_config()
        .expect("transient mix runs automatic mechanisms only");
    let monitor = Arc::new(Monitor::with_config(Buf { level: 0, cap: 8 }, config));
    let level = monitor.register_expr("level", |b: &Buf| b.level);
    let free = monitor.register_expr("free", |b: &Buf| b.cap - b.level);
    let (elapsed, ctx) = timed_run(pairs * 2, |i| {
        let amount = 1 + ((i / 2) as i64 % 3);
        if i % 2 == 0 {
            let has_room = monitor.compile(free.ge(amount));
            for _ in 0..ops {
                monitor.enter(|g| {
                    g.wait(&has_room);
                    g.state_mut().level += amount;
                });
            }
        } else {
            for _ in 0..ops {
                monitor.enter(|g| {
                    g.wait_transient(level.ge(amount));
                    g.state_mut().level -= amount;
                });
            }
        }
    });
    assert_eq!(
        monitor.with(|b| b.level),
        0,
        "transient mix did not balance"
    );
    RunReport {
        mechanism,
        threads: pairs * 2,
        elapsed,
        stats: monitor.stats_snapshot(),
        ctx,
    }
}

/// Extension: wake precision — routed vs parked (vs sharded for
/// context) on the four workloads spanning the tag families: fig11's
/// round robin (N waiters, one hot equivalence expression), the wake
/// storm (K hot expressions × N waiters, adversarial signal order),
/// fig14's parameterized bounded buffer (threshold-shaped `count >=
/// num` conditions — the ladder's target), and the sharded-queues
/// showcase (mixed/None-tagged footprints), plus a bespoke
/// compiled/transient mix for the LRU graduation path. Records
/// per-relay unparks, waiter self-checks, end-to-end time and the
/// precision counters (`ladder_skips`, `cursor_resumes`,
/// `transient_cache_hits`); the routed rows should show `unparks/relay
/// ≈ 1` on fig11 against the parked mode's per-gate herd, and strictly
/// fewer self-checks everywhere — including fig14, where PR 5's
/// eq-only routing still herd-woke every rung. The series is written
/// to `BENCH_wake.json`; CI asserts the fig11 and fig14 margins.
pub fn wake_routing() -> Table {
    let mut table = Table::with_columns(&[
        "workload",
        "mechanism",
        "elapsed(s)",
        "unparks",
        "unparks/relay",
        "self_checks",
        "false_wakeups",
        "eq_routed",
        "token_fwds",
        "routed_unparks",
        "ladder_skips",
        "cursor_resumes",
        "transient_hits",
    ]);
    let mechanisms = [
        Mechanism::AutoSynchShard,
        Mechanism::AutoSynchPark,
        Mechanism::AutoSynchRoute,
    ];
    let rr_threads = if sweep::full_scale() { 64 } else { 16 };
    let rr_config = RoundRobinConfig {
        threads: rr_threads,
        rounds: sweep::ops_per_thread(rr_threads),
    };
    let storm_config = wake_storm_config();
    let mut entries = String::new();
    let mut record = |workload: &str, report: &RunReport| {
        let c = report.stats.counters;
        let per_relay = if c.relay_calls == 0 {
            0.0
        } else {
            c.unparks as f64 / c.relay_calls as f64
        };
        table.row(vec![
            workload.to_owned(),
            report.mechanism.label().to_owned(),
            secs(report.elapsed),
            c.unparks.to_string(),
            format!("{per_relay:.3}"),
            c.waiter_self_checks.to_string(),
            c.false_wakeups.to_string(),
            c.eq_routed_wakes.to_string(),
            c.token_forwards.to_string(),
            c.routed_unparks.to_string(),
            c.ladder_skips.to_string(),
            c.cursor_resumes.to_string(),
            c.transient_cache_hits.to_string(),
        ]);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"mechanism\": \"{}\", \
             \"elapsed_s\": {:.6}, \"relay_calls\": {}, \"unparks\": {}, \
             \"unparks_per_relay\": {per_relay:.4}, \"waiter_self_checks\": {}, \
             \"false_wakeups\": {}, \"futile_wakeups\": {}, \
             \"eq_routed_wakes\": {}, \"token_forwards\": {}, \
             \"routed_unparks\": {}, \"ladder_skips\": {}, \
             \"cursor_resumes\": {}, \"transient_cache_hits\": {}, \
             \"wakeups\": {}, \"broadcasts\": {}}}",
            report.mechanism.label(),
            report.elapsed.as_secs_f64(),
            c.relay_calls,
            c.unparks,
            c.waiter_self_checks,
            c.false_wakeups,
            c.futile_wakeups,
            c.eq_routed_wakes,
            c.token_forwards,
            c.routed_unparks,
            c.ladder_skips,
            c.cursor_resumes,
            c.transient_cache_hits,
            c.wakeups,
            c.broadcasts,
        ));
    };
    for mechanism in mechanisms {
        let report = round_robin::run_timed(mechanism, rr_config);
        record("fig11_round_robin", &report);
    }
    for mechanism in mechanisms {
        let report = wake_storm::run_timed(mechanism, storm_config);
        record("ext_wake_storm", &report);
    }
    let consumers = if sweep::full_scale() { 64 } else { 16 };
    for mechanism in mechanisms {
        let report = param_bounded_buffer::run_timed(mechanism, fig14_config(consumers));
        record("fig14_param_bounded_buffer", &report);
    }
    for mechanism in mechanisms {
        let report = sharded_queues::run_timed(mechanism, shard_queues_config(consumers / 2));
        record("ext_sharded_queues", &report);
    }
    let mix_pairs = if sweep::full_scale() { 8 } else { 4 };
    let mix_ops = (sweep::ops_budget() / 16 / mix_pairs).max(64);
    for mechanism in mechanisms {
        let report = transient_mix_run(mechanism, mix_pairs, mix_ops);
        record("ext_transient_mix", &report);
    }
    let json = format!("{{\n  \"benchmarks\": [\n{entries}\n  ]\n}}\n");
    let path = "BENCH_wake.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [wake-routing series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

fn wake_storm_config() -> WakeStormConfig {
    let (channels, waiters) = if sweep::full_scale() { (8, 8) } else { (4, 4) };
    WakeStormConfig {
        channels,
        waiters,
        rounds: (sweep::ops_budget() / 8 / (channels * waiters)).max(16),
    }
}

/// Extension: the wake storm end to end — K independent round-robin
/// channels behind one monitor, runtime vs channel count. The
/// automatic family's interesting contrast is Park (gate broadcast
/// herds) vs Route (eq-directed single unparks).
pub fn ext_wake_storm() -> Table {
    let mechanisms = Mechanism::WITHOUT_BASELINE;
    let mut table = Table::new(header("channels", &mechanisms));
    for n in sweep::thread_grid() {
        let channels = (n / 4).clamp(2, 16);
        let config = WakeStormConfig {
            channels,
            waiters: 4,
            rounds: (sweep::ops_budget() / 8 / (channels * 4)).max(8),
        };
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| wake_storm::run(m, config))
            .collect();
        table.row(runtime_row(channels.to_string(), &reports));
    }
    table
}

/// Extension: the v2 API's compile-once-wait-many cost accounting plus
/// the uncontended fast-path latency rows.
///
/// Measurements written to `BENCH_api.json`:
///
/// * **Per-wait setup** — a single-threaded saturation loop of waits on
///   an already-true condition, so the measured cost is exactly the
///   wait-path overhead: a transient wait re-runs the predicate
///   analysis (DNF conversion, tagging, dependency extraction, key
///   computation, table hashing) on every call, while a compiled
///   [`Cond`](autosynch::Cond) wait does none of it. The compiled
///   number must be strictly below per-call on every shape — CI asserts
///   it for the fig11 and fig14 shapes.
/// * **End-to-end delta** — the same concurrent workload shape run
///   per-call vs compiled vs compiled-with-the-fast-path-off (fig11
///   round robin: per-thread equivalence conditions; fig14
///   parameterized buffer: bounded threshold keys; sharded queues:
///   disequality conditions + tracked writes), at identical outcomes.
///   CI asserts the fast path never slows the contended e2e shapes
///   beyond noise.
/// * **Enter/exit latency** — an uncontended single-thread row and a
///   contended multi-thread row, fast path on vs the mutex-only
///   ablation (`AUTOSYNCH_NO_FAST_PATH=1` spelled as a config knob).
///   The `setup(ns/wait)` column carries the mean enter→exit occupancy
///   latency from the `enter_exit` stat; CI asserts the uncontended
///   fast row elides (`fast_path_enters > 0`) and undercuts the
///   ablation.
pub fn api_cost() -> Table {
    use autosynch::config::MonitorConfig;
    use autosynch::tracked::{Tracked, TrackedCell, TrackedState};
    use autosynch::Monitor;
    use std::sync::Arc;
    use std::time::Instant;

    let mut table = Table::with_columns(&[
        "workload",
        "api",
        "setup(ns/wait)",
        "elapsed(s)",
        "waits",
        "signals",
        "named_muts",
    ]);
    let mut entries = String::new();
    let mut record = |workload: &str,
                      api: &str,
                      setup_ns: f64,
                      elapsed_s: f64,
                      c: &autosynch_metrics::counters::CounterSnapshot| {
        table.row(vec![
            workload.to_owned(),
            api.to_owned(),
            format!("{setup_ns:.1}"),
            format!("{elapsed_s:.6}"),
            c.waits.to_string(),
            c.signals.to_string(),
            c.named_mutations.to_string(),
        ]);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"api\": \"{api}\", \
             \"setup_ns_per_wait\": {setup_ns:.2}, \"elapsed_s\": {elapsed_s:.6}, \
             \"waits\": {}, \"signals\": {}, \"wakeups\": {}, \
             \"named_mutations\": {}, \"broadcasts\": {}, \
             \"fast_path_enters\": {}, \"combined_exits\": {}}}",
            c.waits,
            c.signals,
            c.wakeups,
            c.named_mutations,
            c.broadcasts,
            c.fast_path_enters,
            c.combined_exits,
        ));
    };

    struct One {
        v: Tracked<i64>,
    }
    impl TrackedState for One {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.v);
        }
    }

    // --- per-wait setup: always-true waits, single thread -----------------
    let setup_iters: u32 = if sweep::full_scale() { 200_000 } else { 40_000 };
    // One representative condition shape per workload family: fig11's
    // equivalence (`turn == id`), fig14's threshold (`count >= n`), and
    // the sharded queues' disequality (`items != 0`).
    use autosynch_predicate::atom::CmpOp;
    let shapes: [(&str, CmpOp); 3] = [
        ("fig11_round_robin", CmpOp::Eq),
        ("fig14_param_bounded_buffer", CmpOp::Ge),
        ("ext_sharded_queues", CmpOp::Ne),
    ];
    for (workload, op) in shapes {
        let m = Monitor::new(One { v: Tracked::new(7) });
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        // `7 op key` chosen true for each op so the wait never blocks.
        let key = match op {
            CmpOp::Eq => 7,
            _ => 0, // 7 >= 0 and 7 != 0 both hold
        };
        // Per-call: the analysis re-runs inside every single wait call.
        let start = Instant::now();
        for _ in 0..setup_iters {
            m.enter(|g| g.wait_transient(v.cmp(op, key)));
        }
        let percall_ns = start.elapsed().as_nanos() as f64 / f64::from(setup_iters);
        let percall_counters = m.stats_snapshot().counters;
        record(
            workload,
            "transient_percall_setup",
            percall_ns,
            0.0,
            &percall_counters,
        );

        // v2: compiled once, the loop only evaluates.
        let m = Monitor::new(One { v: Tracked::new(7) });
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        let cond = m.compile(v.cmp(op, key));
        let start = Instant::now();
        for _ in 0..setup_iters {
            m.enter(|g| g.wait(&cond));
        }
        let v2_ns = start.elapsed().as_nanos() as f64 / f64::from(setup_iters);
        let v2_counters = m.stats_snapshot().counters;
        record(workload, "v2_compiled_setup", v2_ns, 0.0, &v2_counters);
    }

    // --- end-to-end: fig11 shape, v1 shim vs v2 compiled ------------------
    struct Turn {
        turn: Tracked<i64>,
    }
    impl TrackedState for Turn {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.turn);
        }
    }
    let threads = if sweep::full_scale() { 16 } else { 8 };
    let rounds = sweep::ops_per_thread(threads);
    for api in ["transient_percall", "v2_compiled", "v2_mutex_only"] {
        let m = Arc::new(Monitor::with_config(
            Turn {
                turn: Tracked::new(0),
            },
            MonitorConfig::default().fast_path(api != "v2_mutex_only"),
        ));
        let turn = m.register_expr("turn", |s: &Turn| *s.turn.get());
        m.bind(|s| &mut s.turn, &[turn]);
        let conds: Vec<_> = (0..threads as i64)
            .map(|id| m.compile(turn.eq(id)))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for id in 0..threads as i64 {
                let m = Arc::clone(&m);
                let cond = conds[id as usize].clone();
                scope.spawn(move || {
                    for _ in 0..rounds {
                        m.enter_tracked(|g| {
                            if api == "transient_percall" {
                                g.wait_transient(turn.eq(id));
                            } else {
                                g.wait(&cond);
                            }
                            let t = g.state_mut();
                            *t.turn = (*t.turn + 1).rem_euclid(threads as i64);
                        });
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        record(
            "fig11_round_robin",
            api,
            0.0,
            elapsed,
            &m.stats_snapshot().counters,
        );
    }

    // --- end-to-end: fig14 shape (threshold keys) and sharded queues ------
    // The migrated problem drivers *are* the v2 implementation; their
    // counters show named mutations on every run.
    let consumers = if sweep::full_scale() { 32 } else { 8 };
    let report = param_bounded_buffer::run(Mechanism::AutoSynch, fig14_config(consumers));
    record(
        "fig14_param_bounded_buffer",
        "v2_compiled",
        0.0,
        report.elapsed.as_secs_f64(),
        &report.stats.counters,
    );
    // The same fig14 run under the mutex-only ablation: the problem
    // driver builds its config through `Mechanism::monitor_config`,
    // which reads the ablation env flag.
    std::env::set_var("AUTOSYNCH_NO_FAST_PATH", "1");
    let report = param_bounded_buffer::run(Mechanism::AutoSynch, fig14_config(consumers));
    std::env::remove_var("AUTOSYNCH_NO_FAST_PATH");
    record(
        "fig14_param_bounded_buffer",
        "v2_mutex_only",
        0.0,
        report.elapsed.as_secs_f64(),
        &report.stats.counters,
    );
    let report = sharded_queues::run(
        Mechanism::AutoSynchShard,
        shard_queues_config(consumers / 2),
    );
    record(
        "ext_sharded_queues",
        "v2_compiled",
        0.0,
        report.elapsed.as_secs_f64(),
        &report.stats.counters,
    );

    // --- enter/exit latency: the uncontended fast lane vs the ablation ----
    // Single thread, mutation-only occupancies: on the fast lane every
    // one of these is a CAS enter + atomic-AND exit; the ablation pays
    // the mutex and the relay decision. `setup(ns/wait)` carries the
    // mean enter→exit occupancy latency from the `enter_exit` stat.
    let lat_iters: u32 = if sweep::full_scale() { 400_000 } else { 80_000 };
    for (api, fast) in [("fast_path", true), ("mutex_only", false)] {
        let m = Monitor::with_config(
            One { v: Tracked::new(0) },
            MonitorConfig::default().fast_path(fast).timing(true),
        );
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        let start = Instant::now();
        for _ in 0..lat_iters {
            m.with_tracked(|s| *s.v += 1);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let snap = m.stats_snapshot();
        assert_eq!(m.with_tracked(|s| *s.v), i64::from(lat_iters));
        record(
            "uncontended_enter_exit",
            api,
            snap.enter_exit.mean_nanos(),
            elapsed,
            &snap.counters,
        );
    }
    // Contended: every thread hammers whole-occupancy mutations, the
    // shape where contended `with` calls publish into the combining
    // slab instead of convoying on the mutex.
    let lat_threads = if sweep::full_scale() { 16 } else { 8 };
    let per_thread = sweep::ops_per_thread(lat_threads) as i64;
    for (api, fast) in [("fast_path", true), ("mutex_only", false)] {
        let m = Arc::new(Monitor::with_config(
            One { v: Tracked::new(0) },
            MonitorConfig::default().fast_path(fast).timing(true),
        ));
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..lat_threads {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        m.with_tracked(|s| *s.v += 1);
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let snap = m.stats_snapshot();
        assert_eq!(
            m.with_tracked(|s| *s.v),
            per_thread * lat_threads as i64,
            "combined and elided occupancies must not lose increments"
        );
        record(
            "contended_enter_exit",
            api,
            snap.enter_exit.mean_nanos(),
            elapsed,
            &snap.counters,
        );
    }

    let json = format!("{{\n  \"benchmarks\": [\n{entries}\n  ]\n}}\n");
    let path = "BENCH_api.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [api-cost series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

fn shard_queues_config(queues: usize) -> ShardedQueuesConfig {
    let queues = queues.max(2);
    ShardedQueuesConfig {
        queues,
        ops_per_queue: (sweep::ops_budget() / 4 / queues).max(8),
        capacity: 4,
    }
}

/// Extension: N independent work queues behind one monitor, runtime vs
/// queue count — the workload where dependency sharding should win.
/// The interesting comparison is within the automatic family: the
/// disequality predicates tag as `None`, so the flat managers re-probe
/// every queue's waiters per relay while the sharded manager touches
/// only the affected shard.
pub fn ext_sharded_queues() -> Table {
    let mechanisms = Mechanism::WITHOUT_BASELINE;
    let mut table = Table::new(header("queues", &mechanisms));
    for n in sweep::thread_grid() {
        let config = shard_queues_config((n / 2).max(2));
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| sharded_queues::run(m, config))
            .collect();
        table.row(runtime_row(config.queues.to_string(), &reports));
    }
    table
}

/// Extension supplement: the probe-work counters behind the sharded
/// queues at the largest grid point — `AutoSynch-Shard` must undercut
/// `AutoSynch-CD` on `pred_evals` at identical outcomes.
pub fn ext_sharded_queues_counters() -> Table {
    let mut table = Table::with_columns(&[
        "mechanism",
        "pred_evals",
        "expr_evals",
        "probes_skipped",
        "relay_skips",
        "cross_shard",
        "batched",
        "signals",
    ]);
    let queues = if sweep::full_scale() { 32 } else { 8 };
    for mechanism in Mechanism::ALL {
        let report = sharded_queues::run(mechanism, shard_queues_config(queues));
        let c = report.stats.counters;
        table.row(vec![
            mechanism.label().to_owned(),
            c.pred_evals.to_string(),
            c.expr_evals.to_string(),
            c.probes_skipped.to_string(),
            c.relay_skips.to_string(),
            c.cross_shard_preds.to_string(),
            c.batched_signals.to_string(),
            c.signals.to_string(),
        ]);
    }
    table
}

fn barrier_config(parties: usize) -> BarrierConfig {
    BarrierConfig {
        parties,
        generations: (sweep::ops_budget() / 4 / parties).max(8),
    }
}

/// Extension: cyclic barrier, runtime vs parties — a second
/// `signalAll`-bound family beyond Fig. 14. The explicit release is one
/// broadcast per generation; AutoSynch turns it into a relay chain of
/// targeted signals.
pub fn ext_barrier() -> Table {
    let mechanisms = [Mechanism::Explicit, Mechanism::AutoSynch];
    let mut table = Table::new(header("parties", &mechanisms));
    for n in sweep::thread_grid() {
        let parties = n.max(2);
        let reports: Vec<RunReport> = mechanisms
            .iter()
            .map(|&m| cyclic_barrier::run(m, barrier_config(parties)))
            .collect();
        table.row(runtime_row(parties.to_string(), &reports));
    }
    table
}

/// Extension supplement: the signaling counters behind the barrier
/// curves at the largest grid point — explicit broadcasts once per
/// generation; AutoSynch signals each waiter individually and never
/// broadcasts.
pub fn ext_barrier_counters() -> Table {
    let mut table = Table::with_columns(&[
        "mechanism",
        "signals",
        "signalAll",
        "wakeups",
        "futile",
        "futile%",
    ]);
    let parties = if sweep::full_scale() { 64 } else { 16 };
    for mechanism in Mechanism::ALL {
        let report = cyclic_barrier::run(mechanism, barrier_config(parties));
        let c = report.stats.counters;
        table.row(vec![
            mechanism.label().to_owned(),
            c.signals.to_string(),
            c.broadcasts.to_string(),
            c.wakeups.to_string(),
            c.futile_wakeups.to_string(),
            format!("{:.1}", c.futile_ratio() * 100.0),
        ]);
    }
    table
}

/// Extension: the observability harness — wait-latency percentiles per
/// mode, a flight-recorder trace capture, and the telemetry no-harm
/// row.
///
/// Three artifacts per run:
///
/// * **`BENCH_obs.json` percentile rows** — three contention shapes
///   (fig11 round robin, fig14 parameterized buffer, the wake storm)
///   under every automatic mode with timing on; each row carries the
///   registration→return wait-latency p50/p90/p99/p999 from the
///   log-linear histogram (upper bucket bounds: never under-reported,
///   at most ~3.1% over) plus the mean. This is the tail-latency view
///   the mean-based figures can't show — a routed mode can match
///   Park's mean while collapsing its p999.
/// * **`TRACE_obs.json`** — a deterministic flight-recorder capture
///   (recording force-enabled around three small shaped runs, prior
///   state restored) written as Chrome trace-event JSON, loadable
///   as-is in Perfetto or `chrome://tracing`.
/// * **No-harm row** — the api table's uncontended enter/exit loop
///   re-run with the recorder force-*disabled*: CI diffs its mean
///   elided latency against `BENCH_api.json`'s `fast_path` row, the
///   check that a disabled recorder costs the hot path nothing beyond
///   one relaxed load.
pub fn obs() -> Table {
    use autosynch::config::MonitorConfig;
    use autosynch::telemetry;
    use autosynch::tracked::{Tracked, TrackedCell, TrackedState};
    use std::time::Instant;

    let mut table = Table::with_columns(&[
        "workload",
        "mechanism",
        "p50(ns)",
        "p90(ns)",
        "p99(ns)",
        "p999(ns)",
        "mean(ns)",
        "waits",
    ]);
    let mut entries = String::new();
    let mut record = |workload: &str, mechanism: &str, report: &RunReport| {
        let w = report.stats.wait;
        table.row(vec![
            workload.to_owned(),
            mechanism.to_owned(),
            w.p50.to_string(),
            w.p90.to_string(),
            w.p99.to_string(),
            w.p999.to_string(),
            format!("{:.1}", w.mean_nanos()),
            w.holds.to_string(),
        ]);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"mechanism\": \"{mechanism}\", \
             \"wait_p50_ns\": {}, \"wait_p90_ns\": {}, \"wait_p99_ns\": {}, \
             \"wait_p999_ns\": {}, \"wait_mean_ns\": {:.2}, \"waits\": {}, \
             \"elapsed_s\": {:.6}}}",
            w.p50,
            w.p90,
            w.p99,
            w.p999,
            w.mean_nanos(),
            w.holds,
            report.elapsed.as_secs_f64(),
        ));
    };

    // --- wait-latency percentiles: three shapes x every automatic mode ----
    let rr_threads = if sweep::full_scale() { 16 } else { 8 };
    let rr_config = RoundRobinConfig {
        threads: rr_threads,
        rounds: sweep::ops_per_thread(rr_threads),
    };
    let consumers = if sweep::full_scale() { 16 } else { 8 };
    for mechanism in Mechanism::AUTOMATIC {
        let report = round_robin::run_timed(mechanism, rr_config);
        record("fig11_round_robin", mechanism.label(), &report);
    }
    for mechanism in Mechanism::AUTOMATIC {
        let report = param_bounded_buffer::run_timed(mechanism, fig14_config(consumers));
        record("fig14_param_bounded_buffer", mechanism.label(), &report);
    }
    for mechanism in Mechanism::AUTOMATIC {
        let report = wake_storm::run_timed(mechanism, wake_storm_config());
        record("ext_wake_storm", mechanism.label(), &report);
    }

    // --- flight-recorder capture -----------------------------------------
    struct One {
        v: Tracked<i64>,
    }
    impl TrackedState for One {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.v);
        }
    }
    let was_on = telemetry::enabled();
    telemetry::set_enabled(true);
    drop(telemetry::drain_all()); // discard events from the runs above
    {
        // Elided enters: a quiescent single-thread mutation loop.
        let m = Monitor::new(One { v: Tracked::new(0) });
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        for _ in 0..256 {
            m.with_tracked(|s| *s.v += 1);
        }
        // Combined/slow enters and gate waits: contended mutations.
        let m = Arc::new(Monitor::new(One { v: Tracked::new(0) }));
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..256 {
                        m.with_tracked(|s| *s.v += 1);
                    }
                });
            }
        });
    }
    // Parks, self-checks, token sweeps, relay passes: small shaped
    // runs through the parked and routed modes.
    let small_rr = RoundRobinConfig {
        threads: 4,
        rounds: 32,
    };
    round_robin::run(Mechanism::AutoSynchPark, small_rr);
    round_robin::run(Mechanism::AutoSynchRoute, small_rr);
    let events = telemetry::drain_all().events;
    telemetry::set_enabled(was_on);
    let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind.name()).collect();
    let trace_path = "TRACE_obs.json";
    match crate::trace::write_chrome_trace(trace_path, &events) {
        Ok(()) => println!(
            "   [flight-recorder trace written to {trace_path}: {} events, {} kinds]",
            events.len(),
            kinds.len()
        ),
        Err(err) => eprintln!("   [failed to write {trace_path}: {err}]"),
    }

    // --- no-harm: the api uncontended loop with the recorder off ---------
    let lat_iters: u32 = if sweep::full_scale() { 400_000 } else { 80_000 };
    let was_on = telemetry::enabled();
    telemetry::set_enabled(false);
    let m = Monitor::with_config(
        One { v: Tracked::new(0) },
        MonitorConfig::default().fast_path(true).timing(true),
    );
    let v = m.register_expr("v", |s: &One| *s.v.get());
    m.bind(|s| &mut s.v, &[v]);
    let start = Instant::now();
    for _ in 0..lat_iters {
        m.with_tracked(|s| *s.v += 1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    telemetry::set_enabled(was_on);
    let snap = m.stats_snapshot();
    assert_eq!(m.with_tracked(|s| *s.v), i64::from(lat_iters));
    assert!(
        snap.counters.fast_path_enters > 0,
        "the no-harm loop must take the elided lane"
    );
    table.row(vec![
        "uncontended_enter_exit".to_owned(),
        "telemetry_off".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        format!("{:.1}", snap.enter_exit.mean_nanos()),
        "0".to_owned(),
    ]);
    entries.push_str(&format!(
        ",\n    {{\"workload\": \"uncontended_enter_exit\", \
         \"mechanism\": \"telemetry_off\", \
         \"enter_exit_mean_ns\": {:.2}, \"fast_path_enters\": {}, \
         \"elapsed_s\": {elapsed:.6}}}",
        snap.enter_exit.mean_nanos(),
        snap.counters.fast_path_enters,
    ));

    let json = format!("{{\n  \"benchmarks\": [\n{entries}\n  ]\n}}\n");
    let path = "BENCH_obs.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [observability series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

/// Extension: the async waiter front-end — the 100k-waiter scale proof
/// plus async-vs-threaded equivalence rows, all under
/// `AutoSynch-Route` (async waiters are routed bucket entries).
///
/// Three artifacts per run:
///
/// * **The scale proof** — the wake storm driven by `wait_async`
///   futures on the miniexec shim with registration hold-off: every
///   channel starts at `-1` so no predicate is true, a kicker releases
///   them only once **all 100,000+ waiters are registered at once**
///   (`peak_waiters` is the count observed at release), and the row
///   records the registration→claim wait-latency p50/p90/p99/p999.
///   Thread-backed waiters cannot reach this point — 10⁵ stacks don't
///   fit; 10⁵ bucket entries and wakers do.
/// * **Equivalence rows** — the wake storm, the Fig. 11 round-robin
///   shape, and the sharded queues each run twice at equal operation
///   counts: task-backed (`-async` rows) and thread-backed. Both
///   complete the identical pass/item totals (asserted inside the
///   drivers) with zero broadcasts.
/// * **`TRACE_async.json`** — a flight-recorder capture of a small
///   async storm (recording force-enabled, prior state restored), so
///   the `async_poll` and `waker_wake` event kinds can be asserted
///   downstream.
pub fn async_waiters() -> Table {
    use autosynch::telemetry;

    let mut table = Table::with_columns(&[
        "workload",
        "mechanism",
        "waiters",
        "peak",
        "p50(ns)",
        "p99(ns)",
        "p999(ns)",
        "waits",
        "false",
        "elapsed(s)",
    ]);
    let mut entries = String::new();
    let mut record = |workload: &str,
                      mechanism: &str,
                      waiters: usize,
                      peak: usize,
                      stats: &autosynch::StatsSnapshot,
                      elapsed: std::time::Duration| {
        let w = stats.wait;
        let c = stats.counters;
        table.row(vec![
            workload.to_owned(),
            mechanism.to_owned(),
            waiters.to_string(),
            peak.to_string(),
            w.p50.to_string(),
            w.p99.to_string(),
            w.p999.to_string(),
            w.holds.to_string(),
            c.false_wakeups.to_string(),
            secs(elapsed),
        ]);
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"mechanism\": \"{mechanism}\", \
             \"waiters\": {waiters}, \"peak_waiters\": {peak}, \
             \"wait_p50_ns\": {}, \"wait_p90_ns\": {}, \"wait_p99_ns\": {}, \
             \"wait_p999_ns\": {}, \"waits\": {}, \"false_wakeups\": {}, \
             \"broadcasts\": {}, \"elapsed_s\": {:.6}}}",
            w.p50,
            w.p90,
            w.p99,
            w.p999,
            w.holds,
            c.false_wakeups,
            c.broadcasts,
            elapsed.as_secs_f64(),
        ));
    };

    // --- the 100k-waiter scale proof (full size even in quick mode:
    // the point IS the scale) --------------------------------------------
    let (channels, per_channel) = (4, 25_000);
    let report = asynch::run_storm(AsyncStormConfig {
        channels,
        waiters: per_channel,
        rounds: 1,
        workers: asynch::default_workers(),
        holdoff: true,
        timed: true,
    });
    record(
        "ext_wake_storm_async",
        "AutoSynch-Route-async",
        report.waiters,
        report.peak_waiters,
        &report.stats,
        report.elapsed,
    );

    // --- async vs threaded at equal operation counts ---------------------
    let storm_cfg = wake_storm_config();
    let a = asynch::run_storm(AsyncStormConfig {
        channels: storm_cfg.channels,
        waiters: storm_cfg.waiters,
        rounds: storm_cfg.rounds,
        workers: asynch::default_workers(),
        holdoff: false,
        timed: true,
    });
    record(
        "ext_wake_storm_eq",
        "AutoSynch-Route-async",
        a.waiters,
        a.peak_waiters,
        &a.stats,
        a.elapsed,
    );
    let t = wake_storm::run_timed(Mechanism::AutoSynchRoute, storm_cfg);
    record(
        "ext_wake_storm_eq",
        "AutoSynch-Route",
        t.threads,
        0,
        &t.stats,
        t.elapsed,
    );

    let rr_threads = 8;
    let rr_rounds = sweep::ops_per_thread(rr_threads);
    let a = asynch::run_storm(AsyncStormConfig {
        channels: 1,
        waiters: rr_threads,
        rounds: rr_rounds,
        workers: asynch::default_workers(),
        holdoff: false,
        timed: true,
    });
    record(
        "fig11_round_robin_eq",
        "AutoSynch-Route-async",
        a.waiters,
        a.peak_waiters,
        &a.stats,
        a.elapsed,
    );
    let t = round_robin::run_timed(
        Mechanism::AutoSynchRoute,
        RoundRobinConfig {
            threads: rr_threads,
            rounds: rr_rounds,
        },
    );
    record(
        "fig11_round_robin_eq",
        "AutoSynch-Route",
        t.threads,
        0,
        &t.stats,
        t.elapsed,
    );

    let queues = 4;
    let items = (sweep::ops_budget() / 8 / queues).max(64);
    let a = asynch::run_queues(AsyncQueuesConfig {
        queues,
        capacity: 4,
        items: items as u64,
        workers: asynch::default_workers(),
        timed: true,
    });
    record(
        "ext_sharded_queues_eq",
        "AutoSynch-Route-async",
        queues * 2,
        0,
        &a.stats,
        a.elapsed,
    );
    let t = sharded_queues::run_timed(
        Mechanism::AutoSynchRoute,
        ShardedQueuesConfig {
            queues,
            ops_per_queue: items,
            capacity: 4,
        },
    );
    record(
        "ext_sharded_queues_eq",
        "AutoSynch-Route",
        t.threads,
        0,
        &t.stats,
        t.elapsed,
    );

    // --- flight-recorder capture of the async protocol -------------------
    let was_on = telemetry::enabled();
    telemetry::set_enabled(true);
    drop(telemetry::drain_all()); // discard events from the runs above
    asynch::run_storm(AsyncStormConfig {
        channels: 2,
        waiters: 4,
        rounds: 16,
        workers: 2,
        holdoff: false,
        timed: false,
    });
    let events = telemetry::drain_all().events;
    telemetry::set_enabled(was_on);
    let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind.name()).collect();
    let trace_path = "TRACE_async.json";
    match crate::trace::write_chrome_trace(trace_path, &events) {
        Ok(()) => println!(
            "   [async flight-recorder trace written to {trace_path}: {} events, {} kinds]",
            events.len(),
            kinds.len()
        ),
        Err(err) => eprintln!("   [failed to write {trace_path}: {err}]"),
    }

    let json = format!("{{\n  \"benchmarks\": [\n{entries}\n  ]\n}}\n");
    let path = "BENCH_async.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [async waiter series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

/// Extension: the watchtower — causal wait-span attribution stitched
/// from the flight recorder, plus the live pathology detectors driven
/// off-lock through `Monitor::observe_health`.
///
/// Four artifacts per run, all landing in `BENCH_watch.json`:
///
/// * **Attribution ladders** (the `spans` entries) — three wait-heavy
///   shapes × every automatic mode, each run traced, drained, stitched
///   ([`autosynch::telemetry::span::stitch`]) and reconciled: every
///   span's phase durations sum exactly to its bracket by
///   construction, and the stitched `measured_ns` total is compared
///   against the monitor's own `stats.wait.nanos` (`recon_err_pct` —
///   exact when no ring slot was overwritten).
/// * **`TRACE_watch.json`** — the parked wake storm's raw events plus
///   one `"ph": "X"` duration bar per stitched span, loadable in
///   Perfetto.
/// * **Detector cells** (the `detectors` entries) — four engineered
///   positive/control pairs sampled live at 2ms: a parked mini-storm
///   herds while its routed twin stays quiet; a mutex-only mutation
///   loop relay-storms while its elided twin records no relay calls at
///   all; spiked occupancies convoy while uniform ones don't; a
///   laggard release strands the wait tail while a bulk release
///   doesn't. Each cell records which pathologies armed.
/// * **The no-harm row** — the api uncontended fast-path loop with the
///   recorder off and a live 2ms health sampler running throughout:
///   continuous watching must not tax the elided lane (CI pins it
///   against the `BENCH_api` fast-path row).
pub fn watch() -> Table {
    use autosynch::config::{MonitorConfig, SignalMode};
    use autosynch::telemetry::watch::{Edge, HealthReport, Pathology};
    use autosynch::telemetry::{self, span};
    use autosynch::tracked::{Tracked, TrackedCell, TrackedState};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    let mut table = Table::with_columns(&[
        "workload",
        "mechanism",
        "spans",
        "truncated",
        "open",
        "orphans",
        "dropped",
        "top_phase",
        "recon_err%",
    ]);

    // --- Part A: stitch + reconcile, three shapes x automatic modes ------
    let mut span_entries = String::new();
    let mut record_stitch = |workload: &str,
                             mechanism: &str,
                             report: &RunReport,
                             stitched: &span::StitchReport,
                             dropped: u64| {
        let totals = stitched.phase_totals();
        let top = totals
            .iter()
            .enumerate()
            .max_by_key(|&(_, ns)| *ns)
            .filter(|&(_, ns)| *ns > 0)
            .map_or("-", |(i, _)| span::WaitPhase::ALL[i].name());
        let measured = stitched.measured_total_ns();
        let stats_ns = report.stats.wait.nanos;
        let recon_err_pct =
            (measured as f64 - stats_ns as f64).abs() / (stats_ns.max(1) as f64) * 100.0;
        let complete = stitched.spans.len() - stitched.truncated();
        table.row(vec![
            workload.to_owned(),
            mechanism.to_owned(),
            complete.to_string(),
            stitched.truncated().to_string(),
            stitched.open_waits.to_string(),
            stitched.orphan_events.to_string(),
            dropped.to_string(),
            top.to_owned(),
            format!("{recon_err_pct:.3}"),
        ]);
        let mut phases = String::new();
        for (phase, ns) in span::WaitPhase::ALL.iter().zip(totals) {
            if !phases.is_empty() {
                phases.push_str(", ");
            }
            phases.push_str(&format!("\"{}_ns\": {ns}", phase.name()));
        }
        let mut ladders = String::new();
        for l in span::ladders(stitched) {
            if l.spans == 0 {
                continue;
            }
            if !ladders.is_empty() {
                ladders.push_str(", ");
            }
            ladders.push_str(&format!(
                "{{\"phase\": \"{}\", \"total_ns\": {}, \"spans\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                l.phase.name(),
                l.total_ns,
                l.spans,
                l.p50_ns,
                l.p90_ns,
                l.p99_ns,
            ));
        }
        if !span_entries.is_empty() {
            span_entries.push_str(",\n");
        }
        span_entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"mechanism\": \"{mechanism}\", \
             \"spans\": {complete}, \"truncated\": {}, \"open_waits\": {}, \
             \"orphan_events\": {}, \"dropped\": {dropped}, \
             \"stats_wait_ns\": {stats_ns}, \"stats_waits\": {}, \
             \"stitched_wait_ns\": {measured}, \"span_total_ns\": {}, \
             \"recon_err_pct\": {recon_err_pct:.4}, \"elapsed_s\": {:.6}, \
             \"phase_totals\": {{{phases}}}, \"ladders\": [{ladders}]}}",
            stitched.truncated(),
            stitched.open_waits,
            stitched.orphan_events,
            report.stats.wait.holds,
            stitched.total_span_ns(),
            report.elapsed.as_secs_f64(),
        ));
    };

    let was_on = telemetry::enabled();
    telemetry::set_enabled(true);
    // Every event of a Part-A run must survive to the drain: waits per
    // thread stay in the low hundreds here, so 32k slots per ring is
    // ample headroom (`dropped` lands in the JSON either way).
    telemetry::set_ring_capacity(1 << 15);

    let rr_config = RoundRobinConfig {
        threads: 8,
        rounds: 192,
    };
    let pbb_config = ParamBoundedBufferConfig {
        consumers: 8,
        takes_per_consumer: 128,
        max_items: 128,
        capacity: 256,
        seed: 0x5EED,
    };
    let storm_config = WakeStormConfig {
        channels: 4,
        waiters: 4,
        rounds: 48,
    };
    let mut storm_trace: Option<(Vec<autosynch::TraceEvent>, span::StitchReport)> = None;
    for mechanism in Mechanism::AUTOMATIC {
        drop(telemetry::drain_all());
        let report = round_robin::run_timed(mechanism, rr_config);
        let drained = telemetry::drain_all();
        let stitched = span::stitch(&drained.events);
        record_stitch(
            "fig11_round_robin",
            mechanism.label(),
            &report,
            &stitched,
            drained.dropped,
        );
    }
    for mechanism in Mechanism::AUTOMATIC {
        drop(telemetry::drain_all());
        let report = param_bounded_buffer::run_timed(mechanism, pbb_config);
        let drained = telemetry::drain_all();
        let stitched = span::stitch(&drained.events);
        record_stitch(
            "fig14_param_bounded_buffer",
            mechanism.label(),
            &report,
            &stitched,
            drained.dropped,
        );
    }
    for mechanism in Mechanism::AUTOMATIC {
        drop(telemetry::drain_all());
        let report = wake_storm::run_timed(mechanism, storm_config);
        let drained = telemetry::drain_all();
        let stitched = span::stitch(&drained.events);
        record_stitch(
            "ext_wake_storm",
            mechanism.label(),
            &report,
            &stitched,
            drained.dropped,
        );
        if mechanism == Mechanism::AutoSynchPark {
            storm_trace = Some((drained.events, stitched));
        }
    }
    telemetry::set_enabled(was_on);

    // --- Part B: the stitched timeline ------------------------------------
    if let Some((events, stitched)) = &storm_trace {
        let trace_path = "TRACE_watch.json";
        match crate::trace::write_chrome_trace_with_spans(trace_path, events, stitched) {
            Ok(()) => println!(
                "   [stitched trace written to {trace_path}: {} events, {} spans]",
                events.len(),
                stitched.spans.len()
            ),
            Err(err) => eprintln!("   [failed to write {trace_path}: {err}]"),
        }
    }

    // --- Part C: the detector cells ---------------------------------------
    // Each cell runs an engineered shape with a live sampler thread
    // calling `observe_health` every 2ms (plus a few tail samples after
    // the workload drains, so cumulative-histogram detectors see enough
    // consecutive windows). The cell records which pathologies armed;
    // CI asserts each positive fires and its control stays silent.
    fn sample_health<S>(
        m: &Monitor<S>,
        stop: &AtomicBool,
        cadence: Duration,
        tail: usize,
    ) -> Vec<HealthReport> {
        let mut reports = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            reports.extend(m.observe_health());
            std::thread::sleep(cadence);
        }
        for _ in 0..tail {
            std::thread::sleep(cadence);
            reports.extend(m.observe_health());
        }
        reports
    }
    let cadence = Duration::from_millis(2);

    let mut detector_entries = String::new();
    let mut cell_rows: Vec<Vec<String>> = Vec::new();
    let mut record_cell = |cell: &str,
                           mechanism: &str,
                           expected: Pathology,
                           expect_fired: bool,
                           reports: &[HealthReport]| {
        let mut armed: Vec<&str> = reports
            .iter()
            .filter(|r| r.edge == Edge::Armed)
            .map(|r| r.pathology.name())
            .collect();
        armed.sort_unstable();
        armed.dedup();
        let fired = armed.contains(&expected.name());
        cell_rows.push(vec![
            format!("cell:{cell}"),
            mechanism.to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            if armed.is_empty() {
                "none".to_owned()
            } else {
                armed.join("+")
            },
            if fired { "ARMED" } else { "silent" }.to_owned(),
        ]);
        let armed_json: Vec<String> = armed.iter().map(|p| format!("\"{p}\"")).collect();
        if !detector_entries.is_empty() {
            detector_entries.push_str(",\n");
        }
        detector_entries.push_str(&format!(
            "    {{\"cell\": \"{cell}\", \"mechanism\": \"{mechanism}\", \
             \"expected\": \"{}\", \"expect_fired\": {expect_fired}, \
             \"fired\": {fired}, \"armed\": [{}], \"edges\": {}}}",
            expected.name(),
            armed_json.join(", "),
            reports.len(),
        ));
    };

    // Wake herd: one hot channel, eight equivalence waiters. Parked
    // gates broadcast the whole gate per advance (herd factor ~8);
    // eq-routing unparks exactly the next waiter (herd ~1).
    struct Turn {
        turn: Tracked<i64>,
    }
    impl TrackedState for Turn {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.turn);
        }
    }
    let herd_cell = |mechanism: Mechanism| -> Vec<HealthReport> {
        let waiters: i64 = 8;
        let rounds = if sweep::full_scale() { 400 } else { 250 };
        let m = Monitor::with_config(
            Turn {
                turn: Tracked::new(0),
            },
            mechanism.monitor_config().expect("automatic").timing(true),
        );
        let turn = m.register_expr("turn", |s: &Turn| *s.turn.get());
        m.bind(|s| &mut s.turn, &[turn]);
        let conds: Vec<_> = (0..waiters).map(|id| m.compile(turn.eq(id))).collect();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sampler = scope.spawn(|| sample_health(&m, &stop, cadence, 6));
            let workers: Vec<_> = (0..waiters)
                .map(|id| {
                    let m = &m;
                    let conds = &conds;
                    scope.spawn(move || {
                        for _ in 0..rounds {
                            m.enter_tracked(|g| {
                                g.wait(&conds[id as usize]);
                                let s = g.state_mut();
                                *s.turn = (*s.turn + 1).rem_euclid(waiters);
                            });
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap()
        })
    };
    let reports = herd_cell(Mechanism::AutoSynchPark);
    record_cell(
        "herd_parked_storm",
        Mechanism::AutoSynchPark.label(),
        Pathology::WakeHerd,
        true,
        &reports,
    );
    let reports = herd_cell(Mechanism::AutoSynchRoute);
    record_cell(
        "herd_routed_control",
        Mechanism::AutoSynchRoute.label(),
        Pathology::WakeHerd,
        false,
        &reports,
    );

    // Relay storm: an uncontended mutation loop. On the mutex-only
    // lane every dirty exit runs a relay that finds nobody (yield 0 at
    // a six-figure relay rate); the elided lane never calls the relay
    // at all, so the control records no relay calls.
    struct One {
        v: Tracked<i64>,
    }
    impl TrackedState for One {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.v);
        }
    }
    let storm_cell = |fast: bool| -> Vec<HealthReport> {
        let m = Monitor::with_config(
            One { v: Tracked::new(0) },
            MonitorConfig::preset(SignalMode::Routed)
                .fast_path(fast)
                .timing(true),
        );
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sampler = scope.spawn(|| sample_health(&m, &stop, cadence, 6));
            let deadline = Instant::now() + Duration::from_millis(60);
            while Instant::now() < deadline {
                for _ in 0..64 {
                    m.with_tracked(|s| *s.v += 1);
                }
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap()
        })
    };
    let reports = storm_cell(false);
    record_cell(
        "storm_mutex_loop",
        "mutex_only",
        Pathology::RelayStorm,
        true,
        &reports,
    );
    let reports = storm_cell(true);
    record_cell(
        "storm_elided_control",
        "fast_path",
        Pathology::RelayStorm,
        false,
        &reports,
    );

    // Convoy: two threads hammering mutex-only occupancies. The
    // spiked variant holds the monitor ~1ms every 64th op (>1% of
    // occupancies, so the cumulative p99 lands on the spikes while the
    // median stays a plain uncontended-ish mutex hold), detaching the
    // occupancy p99 from the median with flat combining disabled; the
    // uniform twin keeps the tail attached.
    let convoy_cell = |spiked: bool| -> Vec<HealthReport> {
        let m = Monitor::with_config(
            One { v: Tracked::new(0) },
            MonitorConfig::preset(SignalMode::Routed)
                .fast_path(false)
                .timing(true),
        );
        let v = m.register_expr("v", |s: &One| *s.v.get());
        m.bind(|s| &mut s.v, &[v]);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sampler = scope.spawn(|| sample_health(&m, &stop, cadence, 6));
            let deadline = Instant::now() + Duration::from_millis(60);
            let workers: Vec<_> = (0..2u64)
                .map(|t| {
                    let m = &m;
                    scope.spawn(move || {
                        let mut i = 0u64;
                        while Instant::now() < deadline {
                            i += 1;
                            let spike = spiked && i % 64 == t * 32;
                            m.with_tracked(|s| {
                                *s.v += 1;
                                if spike {
                                    let hold = Instant::now() + Duration::from_micros(1000);
                                    while Instant::now() < hold {
                                        std::hint::spin_loop();
                                    }
                                }
                            });
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap()
        })
    };
    let reports = convoy_cell(true);
    record_cell(
        "convoy_spiked_holds",
        "mutex_only",
        Pathology::ConvoyStarvation,
        true,
        &reports,
    );
    let reports = convoy_cell(false);
    record_cell(
        "convoy_uniform_control",
        "mutex_only",
        Pathology::ConvoyStarvation,
        false,
        &reports,
    );

    // Stranded tail: twenty threshold waiters released only once all
    // are parked. The laggard variant frees nineteen at once and holds
    // the last back ~120ms, detaching the wait p999 from the median;
    // the bulk twin frees all twenty together.
    struct Gate {
        released: Tracked<i64>,
    }
    impl TrackedState for Gate {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.released);
        }
    }
    let stranded_cell = |laggard: bool| -> Vec<HealthReport> {
        let waiters: i64 = 20;
        let m = Monitor::with_config(
            Gate {
                released: Tracked::new(0),
            },
            Mechanism::AutoSynchPark
                .monitor_config()
                .expect("automatic")
                .timing(true),
        );
        let released = m.register_expr("released", |s: &Gate| *s.released.get());
        m.bind(|s| &mut s.released, &[released]);
        let conds: Vec<_> = (1..=waiters).map(|k| m.compile(released.ge(k))).collect();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sampler = scope.spawn(|| sample_health(&m, &stop, cadence, 10));
            let workers: Vec<_> = (0..waiters)
                .map(|k| {
                    let m = &m;
                    let conds = &conds;
                    scope.spawn(move || {
                        m.enter_tracked(|g| {
                            g.wait(&conds[k as usize]);
                        });
                    })
                })
                .collect();
            // Release only once every waiter is parked, so the quick
            // waits measure wake latency rather than spawn skew.
            while m.parked_waiters() < waiters as usize {
                std::thread::yield_now();
            }
            if laggard {
                m.with_tracked(|s| *s.released = waiters - 1);
                std::thread::sleep(Duration::from_millis(120));
                m.with_tracked(|s| *s.released = waiters);
            } else {
                m.with_tracked(|s| *s.released = waiters);
            }
            for w in workers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap()
        })
    };
    let reports = stranded_cell(true);
    record_cell(
        "stranded_laggard_release",
        Mechanism::AutoSynchPark.label(),
        Pathology::StrandedTail,
        true,
        &reports,
    );
    let reports = stranded_cell(false);
    record_cell(
        "stranded_bulk_control",
        Mechanism::AutoSynchPark.label(),
        Pathology::StrandedTail,
        false,
        &reports,
    );

    for row in cell_rows {
        table.row(row);
    }

    // --- Part D: no-harm under a live sampler ----------------------------
    let lat_iters: u32 = if sweep::full_scale() { 400_000 } else { 80_000 };
    let was_on = telemetry::enabled();
    telemetry::set_enabled(false);
    let m = Monitor::with_config(
        One { v: Tracked::new(0) },
        MonitorConfig::default().fast_path(true).timing(true),
    );
    let v = m.register_expr("v", |s: &One| *s.v.get());
    m.bind(|s| &mut s.v, &[v]);
    let stop = AtomicBool::new(false);
    let elapsed = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| sample_health(&m, &stop, cadence, 0));
        let start = Instant::now();
        for _ in 0..lat_iters {
            m.with_tracked(|s| *s.v += 1);
        }
        let elapsed = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        sampler.join().unwrap();
        elapsed
    });
    telemetry::set_enabled(was_on);
    let snap = m.stats_snapshot();
    assert_eq!(m.with_tracked(|s| *s.v), i64::from(lat_iters));
    assert!(
        snap.counters.fast_path_enters > 0,
        "the no-harm loop must take the elided lane"
    );
    let diag = m.diagnostics();
    table.row(vec![
        "uncontended_enter_exit".to_owned(),
        "watched_telemetry_off".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        if diag.active.is_empty() {
            "healthy".to_owned()
        } else {
            "armed".to_owned()
        },
        format!("{:.1}ns", snap.enter_exit.mean_nanos()),
    ]);
    let no_harm = format!(
        "{{\"workload\": \"uncontended_enter_exit\", \
         \"mechanism\": \"watched_telemetry_off\", \
         \"enter_exit_mean_ns\": {:.2}, \"fast_path_enters\": {}, \
         \"health_samples\": {}, \"active_pathologies\": {}, \
         \"elapsed_s\": {elapsed:.6}}}",
        snap.enter_exit.mean_nanos(),
        snap.counters.fast_path_enters,
        m.health_history().len(),
        diag.active.len(),
    );

    let json = format!(
        "{{\n  \"spans\": [\n{span_entries}\n  ],\n  \"detectors\": [\n\
         {detector_entries}\n  ],\n  \"no_harm\": {no_harm}\n}}\n"
    );
    let path = "BENCH_watch.json";
    match std::fs::write(path, json) {
        Ok(()) => println!("   [watchtower series written to {path}]"),
        Err(err) => eprintln!("   [failed to write {path}: {err}]"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The figure sweeps are exercised end-to-end by the reproduce
    // binary; here we only smoke-test the cheapest figure wiring with a
    // tiny budget to keep the unit suite fast.
    #[test]
    fn fig14_config_scales_with_consumers() {
        let small = fig14_config(2);
        let large = fig14_config(64);
        assert!(small.takes_per_consumer >= large.takes_per_consumer);
        assert_eq!(small.capacity, 256);
    }

    #[test]
    fn header_layout() {
        let h = header("threads", &Mechanism::WITHOUT_BASELINE);
        assert_eq!(h.len(), 1 + Mechanism::WITHOUT_BASELINE.len());
        assert_eq!(h[0], "threads");
        assert_eq!(h[3], "AutoSynch");
        assert_eq!(h[5], "AutoSynch-Shard");
    }

    #[test]
    fn shard_queues_config_scales_with_queues() {
        let small = shard_queues_config(2);
        let large = shard_queues_config(32);
        assert!(small.ops_per_queue >= large.ops_per_queue);
        assert!(large.queues >= 32);
    }
}
