//! Chrome-trace-event export for the flight recorder.
//!
//! Serializes [`TraceEvent`]s drained from the monitor runtime's
//! telemetry rings into the Chrome trace-event JSON object format, the
//! lingua franca of timeline viewers: the output loads directly into
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//!
//! * each event becomes an **instant** event (`"ph": "i"`, thread
//!   scope) named after its [`EventKind`](autosynch::EventKind);
//! * the monitor token becomes the `pid`, so multi-monitor traces
//!   group by monitor;
//! * the recorder's stable thread id becomes the `tid`;
//! * the nanosecond timestamp becomes fractional microseconds (the
//!   trace format's unit), preserving full resolution;
//! * the kind-specific operands ride along as `args.a` / `args.b`.

use autosynch::TraceEvent;

/// Renders `events` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Integer nanoseconds split into whole and fractional
        // microseconds by hand: formatting `t_ns as f64 / 1000.0`
        // would round once past 2^53 ns, this never does.
        let (us, ns) = (e.t_ns / 1_000, e.t_ns % 1_000);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {us}.{ns:03}, \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"a\": {}, \"b\": {}}}}}",
            e.kind.name(),
            e.monitor,
            e.thread,
            e.a,
            e.b,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes `events` to `path` as a Chrome trace-event JSON file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: &str, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosynch::EventKind;

    fn event(t_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns,
            monitor: 3,
            thread: 9,
            kind,
            a: 1,
            b: 2,
        }
    }

    #[test]
    fn empty_trace_is_a_valid_document() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\": [\n\n  ]"));
        assert!(json.contains("\"displayTimeUnit\": \"ns\""));
    }

    #[test]
    fn events_carry_names_ids_and_fractional_microseconds() {
        let json = chrome_trace_json(&[
            event(1_234_567, EventKind::EnterElided),
            event(1_234_568, EventKind::RelayPass),
        ]);
        assert!(json.contains("\"name\": \"enter_elided\""));
        assert!(json.contains("\"name\": \"relay_pass\""));
        // 1_234_567 ns = 1234.567 us, at full resolution.
        assert!(json.contains("\"ts\": 1234.567"));
        assert!(json.contains("\"ts\": 1234.568"));
        assert!(json.contains("\"pid\": 3"));
        assert!(json.contains("\"tid\": 9"));
        assert!(json.contains("\"args\": {\"a\": 1, \"b\": 2}"));
        assert_eq!(json.matches("\"ph\": \"i\"").count(), 2);
    }

    #[test]
    fn async_waiter_kinds_serialize_by_name() {
        // PR 9's two kinds: poll-side self-check verdicts and
        // waker-slot wake deliveries must land in traces like any
        // thread-side event.
        let json = chrome_trace_json(&[
            event(10, EventKind::AsyncPoll),
            event(20, EventKind::WakerWake),
        ]);
        assert!(json.contains("\"name\": \"async_poll\""));
        assert!(json.contains("\"name\": \"waker_wake\""));
    }

    #[test]
    fn sub_microsecond_timestamps_keep_leading_zeros() {
        let json = chrome_trace_json(&[event(42, EventKind::Park)]);
        assert!(json.contains("\"ts\": 0.042"), "42ns is 0.042us: {json}");
    }
}
