//! Chrome-trace-event export for the flight recorder.
//!
//! Serializes [`TraceEvent`]s drained from the monitor runtime's
//! telemetry rings into the Chrome trace-event JSON object format, the
//! lingua franca of timeline viewers: the output loads directly into
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//!
//! * each raw event becomes an **instant** event (`"ph": "i"`, thread
//!   scope) named after its [`EventKind`](autosynch::EventKind);
//! * each stitched [`WaitSpan`] becomes a **complete duration** event
//!   (`"ph": "X"`) spanning registration→resolve on the waiter's
//!   track, its per-phase attribution riding along in `args` — so a
//!   timeline shows each wait as a bar whose tooltip explains where
//!   the time went;
//! * the monitor token becomes the `pid`, so multi-monitor traces
//!   group by monitor;
//! * the recorder's stable thread id becomes the `tid`;
//! * the nanosecond timestamp becomes fractional microseconds (the
//!   trace format's unit), preserving full resolution;
//! * the kind-specific operands ride along as `args.a` / `args.b`.

use autosynch::telemetry::span::{StitchReport, WaitPhase, WaitSpan};
use autosynch::TraceEvent;

/// Integer nanoseconds as the trace format's fractional microseconds.
/// Splitting by hand: formatting `t_ns as f64 / 1000.0` would round
/// once past 2^53 ns, this never does.
fn us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn push_instant(out: &mut Vec<String>, e: &TraceEvent) {
    out.push(format!(
        "    {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
         \"ts\": {}, \"pid\": {}, \"tid\": {}, \
         \"args\": {{\"a\": {}, \"b\": {}}}}}",
        e.kind.name(),
        us(e.t_ns),
        e.monitor,
        e.thread,
        e.a,
        e.b,
    ));
}

fn push_span(out: &mut Vec<String>, s: &WaitSpan) {
    let mut args = format!(
        "\"wait_id\": {}, \"satisfied\": {}, \"measured_ns\": {}",
        s.wait_id, s.satisfied, s.measured_ns
    );
    for phase in WaitPhase::ALL {
        let ns = s.phase_ns(phase);
        if ns > 0 {
            args.push_str(&format!(", \"{}_ns\": {ns}", phase.name()));
        }
    }
    out.push(format!(
        "    {{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
         \"pid\": {}, \"tid\": {}, \"args\": {{{args}}}}}",
        if s.task { "wait(task)" } else { "wait" },
        us(s.start_ns),
        us(s.span_ns()),
        s.monitor,
        s.thread,
    ));
}

fn document(lines: Vec<String>) -> String {
    format!(
        "{{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    )
}

/// Renders `events` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut lines = Vec::with_capacity(events.len());
    for e in events {
        push_instant(&mut lines, e);
    }
    document(lines)
}

/// Renders `events` plus the stitched wait spans of `report` as one
/// Chrome trace-event JSON document: the raw instants interleaved with
/// one `"ph": "X"` duration bar per complete wait span (truncated
/// stubs have no extent and are skipped). Load in Perfetto and the
/// waits appear as bars over the event ticks that compose them.
pub fn chrome_trace_json_with_spans(events: &[TraceEvent], report: &StitchReport) -> String {
    let mut lines = Vec::with_capacity(events.len() + report.spans.len());
    for e in events {
        push_instant(&mut lines, e);
    }
    for span in report.complete() {
        push_span(&mut lines, span);
    }
    document(lines)
}

/// Writes `events` to `path` as a Chrome trace-event JSON file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: &str, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(events))
}

/// Writes `events` plus the stitched spans of `report` to `path` as a
/// Chrome trace-event JSON file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace_with_spans(
    path: &str,
    events: &[TraceEvent],
    report: &StitchReport,
) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json_with_spans(events, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosynch::telemetry::span::stitch;
    use autosynch::EventKind;

    fn event(t_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns,
            monitor: 3,
            thread: 9,
            kind,
            a: 1,
            b: 2,
        }
    }

    #[test]
    fn empty_trace_is_a_valid_document() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\": [\n\n  ]"));
        assert!(json.contains("\"displayTimeUnit\": \"ns\""));
    }

    #[test]
    fn events_carry_names_ids_and_fractional_microseconds() {
        let json = chrome_trace_json(&[
            event(1_234_567, EventKind::EnterElided),
            event(1_234_568, EventKind::RelayPass),
        ]);
        assert!(json.contains("\"name\": \"enter_elided\""));
        assert!(json.contains("\"name\": \"relay_pass\""));
        // 1_234_567 ns = 1234.567 us, at full resolution.
        assert!(json.contains("\"ts\": 1234.567"));
        assert!(json.contains("\"ts\": 1234.568"));
        assert!(json.contains("\"pid\": 3"));
        assert!(json.contains("\"tid\": 9"));
        assert!(json.contains("\"args\": {\"a\": 1, \"b\": 2}"));
        assert_eq!(json.matches("\"ph\": \"i\"").count(), 2);
    }

    #[test]
    fn async_waiter_kinds_serialize_by_name() {
        // PR 9's two kinds: poll-side self-check verdicts and
        // waker-slot wake deliveries must land in traces like any
        // thread-side event.
        let json = chrome_trace_json(&[
            event(10, EventKind::AsyncPoll),
            event(20, EventKind::WakerWake),
        ]);
        assert!(json.contains("\"name\": \"async_poll\""));
        assert!(json.contains("\"name\": \"waker_wake\""));
    }

    #[test]
    fn sub_microsecond_timestamps_keep_leading_zeros() {
        let json = chrome_trace_json(&[event(42, EventKind::Park)]);
        assert!(json.contains("\"ts\": 0.042"), "42ns is 0.042us: {json}");
    }

    #[test]
    fn stitched_spans_become_duration_bars_with_phase_args() {
        let mk = |t_ns, thread, kind, a, b| TraceEvent {
            t_ns,
            monitor: 3,
            thread,
            kind,
            a,
            b,
        };
        let events = vec![
            mk(100, 9, EventKind::WaitRegistered, u64::MAX, 7 << 1),
            mk(150, 9, EventKind::Park, 0, 7),
            mk(500, 4, EventKind::Unpark, 1, 7),
            mk(600, 9, EventKind::SelfCheck, 1, 1),
            mk(700, 9, EventKind::WaitResolved, 7, (555 << 1) | 1),
        ];
        let report = stitch(&events);
        let json = chrome_trace_json_with_spans(&events, &report);
        // The five instants plus one duration bar.
        assert_eq!(json.matches("\"ph\": \"i\"").count(), 5);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 1);
        assert!(json.contains("\"name\": \"wait\""));
        assert!(json.contains("\"ts\": 0.100, \"dur\": 0.600"));
        assert!(json.contains("\"wait_id\": 7"));
        assert!(json.contains("\"measured_ns\": 555"));
        assert!(json.contains("\"parked_blocked_ns\": 350"));
        assert!(json.contains("\"relay_to_wake_ns\": 100"));
        // Zero phases are omitted from args.
        assert!(!json.contains("task_pending_ns"));
    }

    #[test]
    fn truncated_stubs_draw_no_bars() {
        let events = vec![TraceEvent {
            t_ns: 10,
            monitor: 3,
            thread: 9,
            kind: EventKind::WaitResolved,
            a: 4,
            b: 1,
        }];
        let report = stitch(&events);
        assert_eq!(report.truncated(), 1);
        let json = chrome_trace_json_with_spans(&events, &report);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 0);
    }
}
