//! Criterion bench for Fig. 13: dining philosophers. The paper's point:
//! a philosopher only competes with two neighbours, so the explicit
//! version's advantage does not grow with the table size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::dining::{run, DiningConfig};
use autosynch_problems::mechanism::Mechanism;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_dining");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &philosophers in &[2usize, 8, 32] {
        let config = DiningConfig {
            philosophers,
            meals_per_philosopher: 2_000 / philosophers,
        };
        for mechanism in Mechanism::WITHOUT_BASELINE {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), philosophers),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
