//! Criterion bench for Fig. 9: H2O runtime across the four signaling
//! mechanisms as the hydrogen-thread count grows (one oxygen thread).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::h2o::{run, H2oConfig};
use autosynch_problems::mechanism::Mechanism;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_h2o");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &h_threads in &[2usize, 8, 32] {
        let config = H2oConfig {
            h_threads,
            events_per_h: 2_000 / h_threads,
        };
        for mechanism in Mechanism::ALL {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), h_threads),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
