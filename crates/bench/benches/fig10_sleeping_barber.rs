//! Criterion bench for Fig. 10: sleeping barber runtime across the four
//! signaling mechanisms as the customer count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::mechanism::Mechanism;
use autosynch_problems::sleeping_barber::{run, SleepingBarberConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_sleeping_barber");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &customers in &[2usize, 8, 32] {
        let config = SleepingBarberConfig {
            customers,
            visits_per_customer: 2_000 / customers,
            chairs: 8,
        };
        for mechanism in Mechanism::ALL {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), customers),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
