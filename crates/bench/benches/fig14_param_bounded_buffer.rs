//! Criterion bench for Fig. 14: the parameterized bounded buffer, the
//! problem whose explicit version needs `signalAll`. Explicit runtime
//! grows with the consumer count; AutoSynch stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::mechanism::Mechanism;
use autosynch_problems::param_bounded_buffer::{run, ParamBoundedBufferConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_param_bounded_buffer");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &consumers in &[2usize, 8, 32, 64] {
        let config = ParamBoundedBufferConfig {
            consumers,
            takes_per_consumer: (1_024 / consumers).max(4),
            max_items: 128,
            capacity: 256,
            seed: 0x5EED,
        };
        for mechanism in [Mechanism::Explicit, Mechanism::AutoSynch] {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), consumers),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
