//! Criterion benches for the extension workloads (beyond the paper's
//! seven problems). Several echo the paper's structural claims on new
//! ground:
//!
//! * `ext_barrier` — the cyclic barrier is a second `signalAll`-bound
//!   problem (cf. Fig. 14): the explicit broadcast wakes all parties at
//!   once, AutoSynch relays them one by one.
//! * `ext_smokers` — the cigarette smokers put four equivalence keys on
//!   one shared expression, the pure equivalence-hash-probe case.
//!
//! The bridge/bathroom/forum groups measure the mixed-shape predicates
//! (conjunctions and disjunctions) under drain/refill churn, and
//! `ext_wake_storm` contrasts parked gate-broadcast wakes with routed
//! eq-directed unparks on K out-of-phase round-robin channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use autosynch_problems::mechanism::Mechanism;
use autosynch_problems::{
    cigarette_smokers, cyclic_barrier, group_mutex, one_lane_bridge, sharded_queues,
    unisex_bathroom, wake_storm,
};

fn bench_sharded_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_sharded_queues");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &queues in &[4usize, 16] {
        let config = sharded_queues::ShardedQueuesConfig {
            queues,
            ops_per_queue: (4_096 / queues).max(32),
            capacity: 4,
        };
        for mechanism in [
            Mechanism::Explicit,
            Mechanism::AutoSynch,
            Mechanism::AutoSynchCD,
            Mechanism::AutoSynchShard,
        ] {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), queues),
                &config,
                |b, &config| b.iter(|| sharded_queues::run(mechanism, config)),
            );
        }
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_barrier");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &parties in &[2usize, 8, 32] {
        let config = cyclic_barrier::BarrierConfig {
            parties,
            generations: (2_048 / parties).max(16),
        };
        for mechanism in [Mechanism::Explicit, Mechanism::AutoSynch] {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), parties),
                &config,
                |b, &config| b.iter(|| cyclic_barrier::run(mechanism, config)),
            );
        }
    }
    group.finish();
}

fn bench_smokers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_smokers");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let config = cigarette_smokers::SmokersConfig {
        rounds: 600,
        seed: 0x5EED,
    };
    for mechanism in Mechanism::ALL {
        group.bench_with_input(
            BenchmarkId::new(mechanism.label(), "600rounds"),
            &config,
            |b, &config| b.iter(|| cigarette_smokers::run(mechanism, config)),
        );
    }
    group.finish();
}

fn bench_bridge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_bridge");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &per_direction in &[2usize, 8] {
        let config = one_lane_bridge::BridgeConfig {
            per_direction,
            crossings: (1_024 / per_direction).max(32),
            capacity: 3,
        };
        for mechanism in [Mechanism::Explicit, Mechanism::AutoSynch] {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), per_direction * 2),
                &config,
                |b, &config| b.iter(|| one_lane_bridge::run(mechanism, config)),
            );
        }
    }
    group.finish();
}

fn bench_bathroom(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_bathroom");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let config = unisex_bathroom::BathroomConfig {
        per_gender: 6,
        visits: 120,
        capacity: 3,
    };
    for mechanism in [Mechanism::Explicit, Mechanism::AutoSynch] {
        group.bench_with_input(
            BenchmarkId::new(mechanism.label(), "6per_gender"),
            &config,
            |b, &config| b.iter(|| unisex_bathroom::run(mechanism, config)),
        );
    }
    group.finish();
}

fn bench_group_mutex(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_group_mutex");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &forums in &[2usize, 4, 8] {
        let config = group_mutex::GroupMutexConfig {
            threads: 16,
            forums,
            sessions: 64,
        };
        for mechanism in [Mechanism::Explicit, Mechanism::AutoSynch] {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), forums),
                &config,
                |b, &config| b.iter(|| group_mutex::run(mechanism, config)),
            );
        }
    }
    group.finish();
}

fn bench_wake_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_wake_storm");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    for &channels in &[2usize, 6] {
        let config = wake_storm::WakeStormConfig {
            channels,
            waiters: 4,
            rounds: (2_048 / (channels * 4)).max(16),
        };
        for mechanism in [
            Mechanism::Explicit,
            Mechanism::AutoSynch,
            Mechanism::AutoSynchPark,
            Mechanism::AutoSynchRoute,
        ] {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), channels),
                &config,
                |b, &config| b.iter(|| wake_storm::run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_barrier,
    bench_smokers,
    bench_bridge,
    bench_bathroom,
    bench_group_mutex,
    bench_sharded_queues,
    bench_wake_storm
);
criterion_main!(benches);
