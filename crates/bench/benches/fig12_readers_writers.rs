//! Criterion bench for Fig. 12: ticketed readers/writers at the paper's
//! writers/readers ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::mechanism::Mechanism;
use autosynch_problems::readers_writers::{run, ReadersWritersConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_readers_writers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &(writers, readers) in &[(2usize, 10usize), (4, 20), (8, 40)] {
        let config = ReadersWritersConfig {
            writers,
            readers,
            ops_per_thread: 2_000 / (writers + readers),
        };
        for mechanism in Mechanism::WITHOUT_BASELINE {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), format!("{writers}w_{readers}r")),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
