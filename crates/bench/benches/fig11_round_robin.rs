//! Criterion bench for Fig. 11: round-robin access pattern. The paper's
//! point: explicit stays flat, AutoSynch tracks it within a small
//! factor, AutoSynch-T degrades as the thread count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::mechanism::Mechanism;
use autosynch_problems::round_robin::{run, RoundRobinConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_round_robin");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &threads in &[2usize, 8, 32, 64] {
        let config = RoundRobinConfig {
            threads,
            rounds: 2_000 / threads,
        };
        for mechanism in Mechanism::WITHOUT_BASELINE {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), threads),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
