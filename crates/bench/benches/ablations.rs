//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Threshold index**: the paper's heap with the Fig. 4
//!   poll/backup/reinsert search vs. a plain ordered map walked
//!   weakest-first. Run on the threshold-heavy parameterized bounded
//!   buffer.
//! * **Relay on clean exit**: the paper relays on *every* exit; skipping
//!   relays after read-only occupancies is a sound optimization. Run on
//!   a read-heavy workload.
//! * **Predicate-table dedup**: syntax-equivalent predicates share one
//!   condition variable (§5.2); measured against a workload where many
//!   threads wait on the same condition.
//! * **Restricted vs full automatic signaling**: Kessels' fixed-set
//!   monitor (paper ref [16]) vs the unrestricted `waituntil` on the
//!   one problem class both can express — shared-predicate bounded
//!   buffer — measuring what the generality costs when it isn't needed.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch::config::{MonitorConfig, SignalMode, ThresholdIndexKind};
use autosynch::monitor::Monitor;
use autosynch_problems::mechanism::{timed_run, Mechanism};

struct Counter {
    value: i64,
}

/// Threshold-heavy churn: half the threads wait on distinct `>=` keys,
/// half keep bumping the counter, under the given config.
fn threshold_churn(config: MonitorConfig, waiters: usize, rounds: usize) {
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s: &Counter| s.value);
    timed_run(waiters + 1, |i| {
        if i == 0 {
            // The driver: raise the water level until everyone is done.
            for _ in 0..(waiters * rounds) {
                monitor.with(|s| s.value += 1);
            }
            // Release anyone still waiting at the top.
            monitor.with(|s| s.value += i64::MAX / 2);
        } else {
            for round in 0..rounds {
                let key = ((i * rounds + round) % (waiters * rounds / 2 + 1)) as i64;
                monitor.enter(|g| g.wait_transient(value.ge(key)));
            }
        }
    });
}

fn bench_threshold_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threshold_index");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    for (label, kind) in [
        ("paper_heap", ThresholdIndexKind::PaperHeap),
        ("ordered_map", ThresholdIndexKind::OrderedMap),
    ] {
        group.bench_function(BenchmarkId::new(label, "16w_x64"), |b| {
            b.iter(|| {
                threshold_churn(MonitorConfig::new().threshold_index(kind), 16, 64);
            })
        });
    }
    group.finish();
}

/// Read-heavy workload: most monitor entries never mutate, so the
/// relay-on-clean-exit policy is the whole cost difference.
fn read_heavy(config: MonitorConfig, readers: usize, rounds: usize) {
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s: &Counter| s.value);
    timed_run(readers + 1, |i| {
        if i == 0 {
            for _ in 0..rounds {
                monitor.with(|s| s.value += 1);
            }
        } else {
            for _ in 0..rounds {
                // A read-only occupancy plus an occasional wait.
                monitor.enter(|g| {
                    let _ = g.state().value;
                });
            }
            monitor.enter(|g| g.wait_transient(value.ge(rounds as i64)));
        }
    });
}

fn bench_relay_clean_exit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_relay_clean_exit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    for (label, relay) in [("always_relay", true), ("skip_clean", false)] {
        group.bench_function(BenchmarkId::new(label, "8r_x500"), |b| {
            b.iter(|| {
                read_heavy(MonitorConfig::new().relay_on_clean_exit(relay), 8, 500);
            })
        });
    }
    group.finish();
}

/// Many threads waiting on the *same* globalized predicate: dedup makes
/// them share one entry and one condvar.
fn same_predicate_herd(inactive_cap: usize, waiters: usize, rounds: usize) {
    let config = MonitorConfig::new().inactive_cap(inactive_cap);
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s: &Counter| s.value);
    timed_run(waiters + 1, |i| {
        if i == 0 {
            for _ in 0..(waiters * rounds) {
                monitor.with(|s| s.value += 1);
            }
        } else {
            for round in 0..rounds {
                let goal = ((round + 1) * waiters) as i64;
                monitor.enter(|g| g.wait_transient(value.ge(goal)));
            }
        }
    });
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_inactive_cache");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    // inactive_cap 0 evicts entries the moment they idle, forcing
    // re-interning; the default keeps them warm for reuse.
    for (label, cap) in [("evict_immediately", 0usize), ("keep_64", 64)] {
        group.bench_function(BenchmarkId::new(label, "8w_x200"), |b| {
            b.iter(|| same_predicate_herd(cap, 8, 200))
        });
    }
    group.finish();
}

/// The relay-width extension: width 1 is the paper's rule; wider relays
/// hand the lock to several eligible threads per exit on a workload
/// where one update satisfies many waiters at once.
fn herd_release(width: usize, waiters: usize, rounds: usize) {
    let config = MonitorConfig::new().relay_width(width);
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s: &Counter| s.value);
    timed_run(waiters + 1, |i| {
        if i == 0 {
            for round in 0..rounds {
                // One bump satisfies every waiter of this round.
                monitor.with(move |s| s.value = (round + 1) as i64);
            }
        } else {
            for round in 0..rounds {
                monitor.enter(|g| g.wait_transient(value.ge((round + 1) as i64)));
            }
        }
    });
}

fn bench_relay_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_relay_width");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    for width in [1usize, 2, 8] {
        group.bench_function(BenchmarkId::new("width", width), |b| {
            b.iter(|| herd_release(width, 8, 100))
        });
    }
    group.finish();
}

/// The plain bounded buffer under a given monitor flavor — the common
/// ground between the restricted and full designs.
mod flavors {
    use super::*;
    use autosynch::kessels::KesselsMonitor;

    pub struct Buf {
        pub count: i64,
        pub cap: i64,
    }

    pub fn kessels_buffer(pairs: usize, ops: usize) {
        let mut monitor = KesselsMonitor::new(Buf { count: 0, cap: 8 });
        let not_full = monitor.declare("not_full", |b: &Buf| b.count < b.cap);
        let not_empty = monitor.declare("not_empty", |b: &Buf| b.count > 0);
        let monitor = Arc::new(monitor);
        timed_run(pairs * 2, |i| {
            if i % 2 == 0 {
                for _ in 0..ops {
                    monitor.enter(|g| {
                        g.wait(not_full);
                        g.state_mut().count += 1;
                    });
                }
            } else {
                for _ in 0..ops {
                    monitor.enter(|g| {
                        g.wait(not_empty);
                        g.state_mut().count -= 1;
                    });
                }
            }
        });
    }

    pub fn autosynch_buffer(config: MonitorConfig, pairs: usize, ops: usize) {
        let monitor = Arc::new(Monitor::with_config(Buf { count: 0, cap: 8 }, config));
        let count = monitor.register_expr("count", |b: &Buf| b.count);
        let not_full = monitor.compile(count.lt(8));
        let not_empty = monitor.compile(count.gt(0));
        timed_run(pairs * 2, |i| {
            if i % 2 == 0 {
                for _ in 0..ops {
                    monitor.enter(|g| {
                        g.wait(&not_full);
                        g.state_mut().count += 1;
                    });
                }
            } else {
                for _ in 0..ops {
                    monitor.enter(|g| {
                        g.wait(&not_empty);
                        g.state_mut().count -= 1;
                    });
                }
            }
        });
    }
}

fn bench_restricted_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_restricted_vs_full");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function(BenchmarkId::new("kessels", "4pairs_x300"), |b| {
        b.iter(|| flavors::kessels_buffer(4, 300))
    });
    group.bench_function(BenchmarkId::new("autosynch", "4pairs_x300"), |b| {
        b.iter(|| flavors::autosynch_buffer(MonitorConfig::new(), 4, 300))
    });
    group.bench_function(BenchmarkId::new("autosynch_t", "4pairs_x300"), |b| {
        b.iter(|| flavors::autosynch_buffer(MonitorConfig::preset(SignalMode::Untagged), 4, 300))
    });
    group.finish();
}

/// The restricted model on a *complex-predicate* problem: Kessels
/// expresses `turn == id` only as one declared condition per thread, so
/// its relay scan is O(N) — the Fig. 11 degradation — while the full
/// monitor's equivalence probe stays O(1).
fn bench_restricted_round_robin(c: &mut Criterion) {
    use autosynch_problems::round_robin::{self, RoundRobinConfig};
    let mut group = c.benchmark_group("ablation_restricted_round_robin");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    for threads in [4usize, 16, 32] {
        let config = RoundRobinConfig {
            threads,
            rounds: (1_024 / threads).max(8),
        };
        group.bench_with_input(BenchmarkId::new("kessels", threads), &config, |b, &cfg| {
            b.iter(|| round_robin::run_kessels(cfg))
        });
        group.bench_with_input(
            BenchmarkId::new("autosynch", threads),
            &config,
            |b, &cfg| b.iter(|| round_robin::run(Mechanism::AutoSynch, cfg)),
        );
    }
    group.finish();
}

/// The change-driven relay (`autosynch_cd`) against the paper-default
/// tagged mode on the two workloads the ISSUE singles out: the Fig. 14
/// parameterized bounded buffer (threshold-heavy, every occupancy
/// mutates) and the Fig. 11 round robin (equivalence-heavy, long waiter
/// queues). The matching counter series lives in `reproduce -- relay`.
fn bench_change_driven(c: &mut Criterion) {
    use autosynch_problems::param_bounded_buffer::{self, ParamBoundedBufferConfig};
    use autosynch_problems::round_robin::{self, RoundRobinConfig};

    let mut group = c.benchmark_group("ablation_change_driven");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    for mechanism in [Mechanism::AutoSynch, Mechanism::AutoSynchCD] {
        group.bench_with_input(
            BenchmarkId::new("fig14", mechanism.label()),
            &mechanism,
            |b, &m| {
                b.iter(|| {
                    param_bounded_buffer::run(
                        m,
                        ParamBoundedBufferConfig {
                            consumers: 8,
                            takes_per_consumer: 100,
                            max_items: 64,
                            capacity: 128,
                            seed: 7,
                        },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fig11", mechanism.label()),
            &mechanism,
            |b, &m| {
                b.iter(|| {
                    round_robin::run(
                        m,
                        RoundRobinConfig {
                            threads: 16,
                            rounds: 64,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_threshold_index,
    bench_relay_clean_exit,
    bench_dedup,
    bench_relay_width,
    bench_restricted_vs_full,
    bench_restricted_round_robin,
    bench_change_driven
);
criterion_main!(benches);
