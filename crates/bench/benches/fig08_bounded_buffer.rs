//! Criterion bench for Fig. 8: bounded buffer runtime across the four
//! signaling mechanisms as the producer/consumer count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use autosynch_problems::bounded_buffer::{run, BoundedBufferConfig};
use autosynch_problems::mechanism::Mechanism;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_bounded_buffer");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &pairs in &[1usize, 4, 16] {
        let config = BoundedBufferConfig {
            producers: pairs,
            consumers: pairs,
            ops_per_thread: 2_000 / pairs.max(1),
            capacity: 16,
        };
        for mechanism in Mechanism::ALL {
            group.bench_with_input(
                BenchmarkId::new(mechanism.label(), pairs * 2),
                &config,
                |b, &config| b.iter(|| run(mechanism, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
