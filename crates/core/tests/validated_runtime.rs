//! Runs realistic concurrent workloads with the relay-invariance
//! validator enabled (`MonitorConfig::validate_relay`): after every
//! relay call the manager exhaustively re-evaluates all waiting
//! predicates and panics if the tag indexes missed a signalable
//! thread. Passing these tests is a ground-truth differential check of
//! the equivalence hash probe, the Fig. 4 threshold-heap walk and the
//! `None` scan under real contention, futile wakeups and barging.

use std::sync::Arc;
use std::thread;

use autosynch::config::{MonitorConfig, SignalMode};
use autosynch::monitor::Monitor;

#[derive(Debug, Default)]
struct Buffer {
    count: i64,
    put: u64,
    taken: u64,
}

fn validated(mode: SignalMode) -> MonitorConfig {
    MonitorConfig::new().mode(mode).validate_relay(true)
}

fn bounded_buffer_workload(mode: SignalMode) {
    const CAP: i64 = 8;
    const OPS: usize = 400;
    const PAIRS: usize = 3;
    let monitor = Arc::new(Monitor::with_config(Buffer::default(), validated(mode)));
    let count = monitor.register_expr("count", |s| s.count);

    thread::scope(|scope| {
        for _ in 0..PAIRS {
            let producer_monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                let not_full = producer_monitor.compile(count.lt(CAP));
                for _ in 0..OPS {
                    producer_monitor.enter(|g| {
                        g.wait(&not_full);
                        let s = g.state_mut();
                        s.count += 1;
                        s.put += 1;
                    });
                }
            });
            let consumer_monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                let not_empty = consumer_monitor.compile(count.gt(0));
                for _ in 0..OPS {
                    consumer_monitor.enter(|g| {
                        g.wait(&not_empty);
                        let s = g.state_mut();
                        s.count -= 1;
                        s.taken += 1;
                    });
                }
            });
        }
    });

    monitor.enter(|g| {
        assert_eq!(g.state().put, (PAIRS * OPS) as u64);
        assert_eq!(g.state().taken, (PAIRS * OPS) as u64);
        assert_eq!(g.state().count, 0);
    });
}

#[test]
fn validated_bounded_buffer_tagged() {
    bounded_buffer_workload(SignalMode::Tagged);
}

#[test]
fn validated_bounded_buffer_untagged() {
    bounded_buffer_workload(SignalMode::Untagged);
}

#[derive(Debug, Default)]
struct Turn {
    turn: i64,
    passes: u64,
}

fn round_robin_workload(mode: SignalMode) {
    const N: usize = 6;
    const ROUNDS: usize = 120;
    let monitor = Arc::new(Monitor::with_config(Turn::default(), validated(mode)));
    let turn = monitor.register_expr("turn", |s| s.turn);

    thread::scope(|scope| {
        for id in 0..N {
            let monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                let my_turn = monitor.compile(turn.eq(id as i64));
                for _ in 0..ROUNDS {
                    monitor.enter(|g| {
                        g.wait(&my_turn);
                        let s = g.state_mut();
                        s.turn = (s.turn + 1) % N as i64;
                        s.passes += 1;
                    });
                }
            });
        }
    });

    monitor.enter(|g| assert_eq!(g.state().passes, (N * ROUNDS) as u64));
}

#[test]
fn validated_round_robin_tagged() {
    // Equivalence keys churn through the hash index every pass.
    round_robin_workload(SignalMode::Tagged);
}

#[test]
fn validated_round_robin_untagged() {
    round_robin_workload(SignalMode::Untagged);
}

#[test]
fn validated_threshold_churn_with_random_amounts() {
    // The parameterized-buffer pattern: random put/take sizes spread
    // distinct keys across both threshold heaps, with constant key
    // insertion and removal.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CAP: i64 = 64;
    const MAX: i64 = 32;
    const TAKES: usize = 150;
    const CONSUMERS: usize = 4;

    let monitor = Arc::new(Monitor::with_config(
        Buffer::default(),
        validated(SignalMode::Tagged),
    ));
    let count = monitor.register_expr("count", |s| s.count);
    let total: i64 = {
        // Pre-draw consumer demands so the producer knows the grand total.
        let mut rng = StdRng::seed_from_u64(99);
        (0..CONSUMERS * TAKES).map(|_| rng.gen_range(1..=MAX)).sum()
    };

    thread::scope(|scope| {
        let monitor_p = Arc::clone(&monitor);
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut produced = 0;
            while produced < total {
                let n = rng.gen_range(1..=MAX).min(total - produced);
                // Random thresholds churn every round — transient waits.
                monitor_p.enter(|g| {
                    g.wait_transient(count.le(CAP - n));
                    g.state_mut().count += n;
                });
                produced += n;
            }
        });
        for c in 0..CONSUMERS {
            let monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(99);
                // Re-derive this consumer's demands from the shared draw
                // order: consumer c takes draws c, c+CONSUMERS, ...
                let demands: Vec<i64> = (0..CONSUMERS * TAKES)
                    .map(|_| rng.gen_range(1..=MAX))
                    .collect();
                for i in 0..TAKES {
                    let n = demands[i * CONSUMERS + c];
                    monitor.enter(|g| {
                        g.wait_transient(count.ge(n));
                        let s = g.state_mut();
                        s.count -= n;
                        s.taken += n as u64;
                    });
                }
            });
        }
    });

    monitor.enter(|g| {
        assert_eq!(g.state().taken, total as u64);
        assert_eq!(g.state().count, 0);
    });
}

#[test]
fn validated_mixed_tag_classes_under_contention() {
    // Equivalence, both threshold directions, not-equal (None tag) and
    // a custom closure, all live at once while a driver sweeps the
    // value — the miss-prone case for index bookkeeping.
    use autosynch::{IntoPredicate, Predicate};
    #[derive(Debug)]
    struct V {
        value: i64,
    }
    let monitor = Arc::new(Monitor::with_config(
        V { value: 100 },
        validated(SignalMode::Tagged),
    ));
    let value = monitor.register_expr("value", |s| s.value);

    let preds: Vec<Predicate<V>> = vec![
        value.eq(42).into_predicate(),
        value.ge(90).into_predicate(),
        value.le(10).into_predicate(),
        value.ne(100).into_predicate(),
        Predicate::custom("multiple-of-21", |s: &V| s.value != 0 && s.value % 21 == 0),
    ];

    thread::scope(|scope| {
        for pred in preds {
            let monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                monitor.enter(|g| g.wait_transient(pred));
            });
        }
        let monitor = Arc::clone(&monitor);
        scope.spawn(move || {
            // Sweep: 91 (≥90), 42 (==42, ≠100, %21), 7, 3 (≤10) — with
            // pauses so waiters interleave registration and wakeups.
            for v in [91i64, 42, 7, 3, 42, 3] {
                thread::sleep(std::time::Duration::from_millis(5));
                monitor.with(move |s| s.value = v);
            }
        });
    });
}
