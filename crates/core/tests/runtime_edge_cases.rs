//! Edge-case integration tests for the monitor runtime: relay width,
//! panic safety across all three monitor types, mixed tag classes under
//! one roof, and expression registration after startup.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use autosynch::baseline::BaselineMonitor;
use autosynch::config::MonitorConfig;
use autosynch::explicit::ExplicitMonitor;
use autosynch::monitor::Monitor;

struct Counter {
    value: i64,
}

#[test]
fn relay_width_two_wakes_two_eligible_waiters() {
    // Two waiters on thresholds that one update satisfies at once. With
    // width 2, a single relay wakes both (two signals from one call).
    let config = MonitorConfig::new().relay_width(2);
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s| s.value);
    let woken = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = [5i64, 7]
        .into_iter()
        .map(|k| {
            let monitor = Arc::clone(&monitor);
            let woken = Arc::clone(&woken);
            thread::spawn(move || {
                monitor.enter(|g| g.wait_transient(value.ge(k)));
                woken.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(30));

    monitor.with(|s| s.value = 10);
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::SeqCst), 2);
    let snap = monitor.stats_snapshot();
    // Both signals happened; relay_calls may be as low as 1 (the single
    // mutating exit).
    assert!(snap.counters.signals >= 2);
    assert_eq!(snap.counters.broadcasts, 0);
}

#[test]
fn relay_width_one_is_strictly_sequential() {
    // Same scenario with the paper's width 1: the first relay wakes one;
    // the second waiter is woken by the first one's exit relay.
    let monitor = Arc::new(Monitor::new(Counter { value: 0 }));
    let value = monitor.register_expr("value", |s| s.value);
    let handles: Vec<_> = [5i64, 7]
        .into_iter()
        .map(|k| {
            let monitor = Arc::clone(&monitor);
            thread::spawn(move || {
                monitor.enter(|g| g.wait_transient(value.ge(k)));
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(30));
    monitor.with(|s| s.value = 10);
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = monitor.stats_snapshot();
    assert_eq!(snap.counters.signals, 2);
    assert!(snap.counters.relay_hits >= 2, "two separate relay hits");
}

#[test]
fn explicit_monitor_panic_releases_lock() {
    let monitor = Arc::new(ExplicitMonitor::new(0i64));
    let m2 = Arc::clone(&monitor);
    let panicker = thread::spawn(move || {
        m2.enter(|g| {
            *g.state_mut() = 1;
            panic!("boom");
        });
    });
    assert!(panicker.join().is_err());
    // The lock must be free again.
    assert_eq!(monitor.enter(|g| *g.state()), 1);
}

#[test]
fn baseline_monitor_panic_still_broadcasts_dirty_state() {
    let monitor = Arc::new(BaselineMonitor::new(0i64));
    let m2 = Arc::clone(&monitor);
    let waiter = thread::spawn(move || {
        m2.enter(|g| g.wait_until(|v| *v > 0));
    });
    thread::sleep(Duration::from_millis(20));
    let m3 = Arc::clone(&monitor);
    let panicker = thread::spawn(move || {
        m3.enter(|g| {
            *g.state_mut() = 1;
            panic!("boom");
        });
    });
    assert!(panicker.join().is_err());
    // The waiter must still be released by the exit broadcast of the
    // panicking occupant.
    waiter.join().unwrap();
}

#[test]
fn mixed_tag_classes_in_one_monitor() {
    // Equivalence, threshold-min, threshold-max, not-equal (None tag)
    // and a custom closure all waiting simultaneously; one driver walks
    // the value so each becomes true at a different moment.
    use autosynch::{IntoPredicate, Predicate};
    let monitor = Arc::new(Monitor::new(Counter { value: 100 }));
    let value = monitor.register_expr("value", |s| s.value);
    let released = Arc::new(AtomicUsize::new(0));

    let preds: Vec<Predicate<Counter>> = vec![
        value.eq(42).into_predicate(),
        value.ge(90).into_predicate(),
        value.le(10).into_predicate(),
        value.ne(100).into_predicate(),
        Predicate::custom("divisible-by-7", |s: &Counter| {
            s.value != 100 && s.value % 7 == 0
        }),
    ];

    let handles: Vec<_> = preds
        .into_iter()
        .map(|pred| {
            let monitor = Arc::clone(&monitor);
            let released = Arc::clone(&released);
            thread::spawn(move || {
                monitor.enter(|g| g.wait_transient(pred));
                released.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(30));

    // Walk: 91 (≥90), 42 (==42, ≠100, %7), 7 (...), 3 (≤10).
    for v in [91i64, 42, 7, 3] {
        monitor.with(move |s| s.value = v);
        thread::sleep(Duration::from_millis(10));
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while released.load(Ordering::SeqCst) < 5 && Instant::now() < deadline {
        monitor.with(|s| s.value = if s.value == 3 { 42 } else { 3 });
        thread::sleep(Duration::from_millis(2));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(monitor.stats_snapshot().counters.broadcasts, 0);
}

#[test]
fn expressions_can_be_registered_while_running() {
    let monitor = Arc::new(Monitor::new(Counter { value: 0 }));
    let first = monitor.register_expr("value", |s| s.value);
    let m2 = Arc::clone(&monitor);
    let waiter = thread::spawn(move || {
        m2.enter(|g| g.wait_transient(first.ge(1)));
    });
    thread::sleep(Duration::from_millis(10));
    // Late registration must not disturb the running waiter.
    let doubled = monitor.register_expr("value*2", |s| s.value * 2);
    let m3 = Arc::clone(&monitor);
    let second = thread::spawn(move || {
        m3.enter(|g| g.wait_transient(doubled.ge(4)));
    });
    thread::sleep(Duration::from_millis(10));
    monitor.with(|s| s.value = 2);
    waiter.join().unwrap();
    second.join().unwrap();
}

#[test]
fn wait_transient_timeout_zero_is_a_nonblocking_check() {
    let monitor = Monitor::new(Counter { value: 0 });
    let value = monitor.register_expr("value", |s| s.value);
    let start = Instant::now();
    let ok = monitor.enter(|g| g.wait_transient_timeout(value.ge(1), Duration::ZERO));
    assert!(!ok);
    assert!(start.elapsed() < Duration::from_secs(1));
    monitor.with(|s| s.value = 1);
    assert!(monitor.enter(|g| g.wait_transient_timeout(value.ge(1), Duration::ZERO)));
}

/// Regression test: under `relay_on_clean_exit(false)`, an occupancy
/// that consumed a relay signal but never mutated must still relay on
/// exit. The consumed signal is the relay baton; absorbing it would
/// strand the second waiter below even though its predicate is true.
#[test]
fn signaled_reader_passes_the_baton_under_skip_clean_ablation() {
    let config = MonitorConfig::new().relay_on_clean_exit(false);
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s| s.value);

    // Two distinct threshold predicates, both satisfied by one write.
    let handles: Vec<_> = [5i64, 7]
        .into_iter()
        .map(|k| {
            let monitor = Arc::clone(&monitor);
            thread::spawn(move || {
                // Pure readers: wait, observe, exit without state_mut.
                monitor.enter(|g| {
                    g.wait_transient(value.ge(k));
                    assert!(g.state().value >= k);
                });
            })
        })
        .collect();

    // Both must be parked before the single dirty exit relays.
    let deadline = Instant::now() + Duration::from_secs(10);
    while monitor.counts().waiting < 2 {
        assert!(Instant::now() < deadline, "waiters failed to park");
        thread::sleep(Duration::from_millis(1));
    }

    // One mutating exit relays to exactly one waiter (width 1). The
    // woken reader exits cleanly; its exit must wake the other.
    monitor.with(|s| s.value = 10);

    let deadline = Instant::now() + Duration::from_secs(10);
    for handle in handles {
        while !handle.is_finished() {
            assert!(
                Instant::now() < deadline,
                "reader stranded: consumed signal was not relayed on clean exit"
            );
            thread::sleep(Duration::from_millis(2));
        }
        handle.join().unwrap();
    }
}

/// The complementary sanity check for the same ablation: an occupancy
/// that neither mutated nor consumed a signal really does skip the
/// relay call on exit.
#[test]
fn unsignaled_reader_skips_relay_under_skip_clean_ablation() {
    // fast_path(false) pins the slow (mutex) lane: this test asserts
    // relay policy on slow-path exits, and an elided uncontended enter
    // would legitimately skip the relay either way.
    let config = MonitorConfig::new()
        .relay_on_clean_exit(false)
        .fast_path(false);
    let monitor = Monitor::with_config(Counter { value: 0 }, config);
    let before = monitor.stats_snapshot().counters.relay_calls;
    monitor.enter(|g| {
        assert_eq!(g.state().value, 0);
    });
    assert_eq!(monitor.stats_snapshot().counters.relay_calls, before);

    // Whereas the paper-default policy relays on every slow-path exit.
    let paper = Monitor::with_config(Counter { value: 0 }, MonitorConfig::new().fast_path(false));
    let before = paper.stats_snapshot().counters.relay_calls;
    paper.enter(|g| {
        assert_eq!(g.state().value, 0);
    });
    assert_eq!(paper.stats_snapshot().counters.relay_calls, before + 1);
}

#[test]
fn hundreds_of_sequential_waits_do_not_leak_entries() {
    let config = MonitorConfig::new().inactive_cap(16);
    let monitor = Arc::new(Monitor::with_config(Counter { value: 0 }, config));
    let value = monitor.register_expr("value", |s| s.value);
    for round in 0..300i64 {
        let m2 = Arc::clone(&monitor);
        let waiter = thread::spawn(move || {
            m2.enter(|g| g.wait_transient(value.ge(round + 1)));
        });
        monitor.with(move |s| s.value = round + 1);
        waiter.join().unwrap();
    }
    let counts = monitor.counts();
    assert_eq!(
        (counts.waiting, counts.signaled, counts.live_tags),
        (0, 0, 0)
    );
    assert!(
        counts.entries <= 17,
        "inactive cap must bound entries, got {}",
        counts.entries
    );
}
