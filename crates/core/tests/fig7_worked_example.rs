//! The worked example of the paper's Fig. 7: a condition manager holding
//! fourteen predicates over one shared expression `x`, spread across the
//! equivalence hash table (keys 3, 6, 7), the two threshold heaps and
//! the `None` list.
//!
//! Each predicate gets a real waiting thread; the test then drives `x`
//! through chosen values and asserts *which* predicate's waiter the
//! relay rule releases, matching the search order the paper describes:
//! equivalence probe first, then the threshold heaps weakest-first, then
//! the exhaustive `None` scan.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use autosynch::monitor::Monitor;
use autosynch::{IntoPredicate, Predicate};

struct X {
    x: i64,
}

/// Spawns one waiter per predicate; returns join handles plus the
/// release ledger.
fn install_waiters(
    monitor: &Arc<Monitor<X>>,
    preds: Vec<(&'static str, Predicate<X>)>,
) -> (Vec<thread::JoinHandle<()>>, Arc<Vec<AtomicUsize>>) {
    let released: Arc<Vec<AtomicUsize>> =
        Arc::new((0..preds.len()).map(|_| AtomicUsize::new(0)).collect());
    let handles = preds
        .into_iter()
        .enumerate()
        .map(|(i, (_, pred))| {
            let monitor = Arc::clone(monitor);
            let released = Arc::clone(&released);
            thread::spawn(move || {
                monitor.enter(|g| g.wait_transient(pred));
                released[i].fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    (handles, released)
}

fn wait_for(released: &[AtomicUsize], index: usize) {
    for _ in 0..500 {
        if released[index].load(Ordering::SeqCst) > 0 {
            return;
        }
        thread::sleep(Duration::from_millis(2));
    }
    panic!("predicate {index} was never released");
}

#[test]
fn fig7_state_is_indexed_as_described() {
    // No single x falsifies all fourteen Fig. 7 predicates (x≠1, x≠8
    // and x≠9 cannot all be false at once) — the figure is a snapshot
    // mid-run. Park x at 1 and register exactly the predicates that are
    // false there, so the index census is deterministic.
    let monitor = Arc::new(Monitor::new(X { x: 1 }));
    let x = monitor.register_expr("x", |s| s.x);

    // Predicates false at x=1: x>5, x>=5, (x>=8)||(x==3), x==6, x==7,
    // (x!=1)&&(x<=2), x!=1. True: the rest — those waiters pass through
    // without registering. Register only the false ones so the census
    // is deterministic.
    let parked: Vec<(&'static str, Predicate<X>)> = vec![
        ("x > 5", x.gt(5).into_predicate()),
        ("x >= 5", x.ge(5).into_predicate()),
        ("(x >= 8) || (x == 3)", x.ge(8).or(x.eq(3)).into_predicate()),
        ("x == 6", x.eq(6).into_predicate()),
        ("x == 7", x.eq(7).into_predicate()),
        (
            "(x != 1) && (x <= 2)",
            x.ne(1).and(x.le(2)).into_predicate(),
        ),
        ("x != 1", x.ne(1).into_predicate()),
    ];
    let count = parked.len();
    let (handles, released) = install_waiters(&monitor, parked);
    thread::sleep(Duration::from_millis(50));

    // Census: 7 entries, 7 waiters, and tag count = number of
    // conjunctions = 8 ((x>=8)||(x==3) contributes two).
    let counts = monitor.counts();
    assert_eq!(counts.entries, count);
    assert_eq!(counts.waiting, count);
    assert_eq!(counts.signaled, 0);
    assert_eq!(counts.live_tags, count + 1);

    // Release everyone: x=6 frees x>5(6>5), x>=5, x==6, x!=1; then x=7
    // frees x==7; then x=2 frees (x!=1)&&(x<=2); then x=8 frees the
    // disjunction.
    for v in [6i64, 7, 2, 8, 3] {
        monitor.with(move |s| s.x = v);
        thread::sleep(Duration::from_millis(20));
    }
    for (i, _) in released.iter().enumerate() {
        wait_for(&released, i);
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert!(monitor.is_quiescent());
}

#[test]
fn equivalence_probe_wins_at_its_exact_key() {
    // At x = 7 the O(1) hash probe finds the x == 7 waiter even though
    // threshold predicates (x > 5, x >= 5) are also true — the paper
    // checks equivalence tags first.
    let monitor = Arc::new(Monitor::new(X { x: 0 }));
    let x = monitor.register_expr("x", |s| s.x);
    let preds = vec![
        ("x > 5", x.gt(5).into_predicate()),
        ("x >= 5", x.ge(5).into_predicate()),
        ("x == 7", x.eq(7).into_predicate()),
    ];
    let (handles, released) = install_waiters(&monitor, preds);
    thread::sleep(Duration::from_millis(50));

    // One mutation, one relay: exactly one waiter is signaled and it is
    // the equivalence one.
    monitor.with(|s| s.x = 7);
    wait_for(&released, 2);
    thread::sleep(Duration::from_millis(20));
    // The woken x==7 waiter's own exit relays onward, releasing the
    // thresholds one at a time; eventually everyone is out.
    for i in 0..3 {
        wait_for(&released, i);
    }
    for handle in handles {
        handle.join().unwrap();
    }
}

#[test]
fn threshold_walk_skips_false_root_descendants() {
    // The paper's Q1/Q2 example embedded in the full manager: with
    // P1: (x >= 5) && (y != 1) and P2: (x > 7), at x=9,y=1 the search
    // finds Q1 true but P1 false, polls it, and signals P2.
    struct XY {
        x: i64,
        y: i64,
    }
    let monitor = Arc::new(Monitor::new(XY { x: 0, y: 1 }));
    let x = monitor.register_expr("x", |s| s.x);
    let y = monitor.register_expr("y", |s| s.y);

    let p1: Predicate<XY> = x.ge(5).and(y.ne(1)).into_predicate();
    let p2: Predicate<XY> = x.gt(7).into_predicate();
    let released = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);

    let h1 = {
        let monitor = Arc::clone(&monitor);
        let released = Arc::clone(&released);
        thread::spawn(move || {
            monitor.enter(|g| g.wait_transient(p1));
            released[0].fetch_add(1, Ordering::SeqCst);
        })
    };
    let h2 = {
        let monitor = Arc::clone(&monitor);
        let released = Arc::clone(&released);
        thread::spawn(move || {
            monitor.enter(|g| g.wait_transient(p2));
            released[1].fetch_add(1, Ordering::SeqCst);
        })
    };
    thread::sleep(Duration::from_millis(50));

    monitor.with(|s| s.x = 9); // y stays 1: P1 false, P2 true
    wait_for(&released[..], 1);
    thread::sleep(Duration::from_millis(20));
    assert_eq!(
        released[0].load(Ordering::SeqCst),
        0,
        "P1 must not be woken: its tag is true but the predicate is false"
    );
    assert_eq!(
        monitor.stats_snapshot().counters.futile_wakeups,
        0,
        "tag-pruned search never wakes a thread whose predicate is false"
    );

    monitor.with(|s| s.y = 2); // now P1 holds
    wait_for(&released[..], 0);
    h1.join().unwrap();
    h2.join().unwrap();
}

#[test]
fn none_tags_are_found_by_exhaustive_search() {
    let monitor = Arc::new(Monitor::new(X { x: 9 }));
    let x = monitor.register_expr("x", |s| s.x);
    // x != 9 tags as None (Fig. 7 bottom row).
    let preds = vec![("x != 9", x.ne(9).into_predicate())];
    let (handles, released) = install_waiters(&monitor, preds);
    thread::sleep(Duration::from_millis(30));
    assert_eq!(monitor.counts().live_tags, 1);
    monitor.with(|s| s.x = 4);
    wait_for(&released, 0);
    for handle in handles {
        handle.join().unwrap();
    }
}
