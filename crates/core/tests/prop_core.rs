//! Property tests for the monitor runtime's data structures and for the
//! monitor itself under randomized schedules.

use std::sync::Arc;

use autosynch::config::{MonitorConfig, SignalMode, ThresholdIndexKind};
use autosynch::indexed_heap::IndexedHeap;
use autosynch::monitor::Monitor;
use autosynch::slab::Slab;
use proptest::prelude::*;

// --- IndexedHeap against a model multiset ---------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(i32),
    RemoveNth(usize),
    Pop,
}

fn arb_heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (-50i32..=50).prop_map(HeapOp::Insert),
            1 => (0usize..8).prop_map(HeapOp::RemoveNth),
            1 => Just(HeapOp::Pop),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_heap_matches_sorted_model(ops in arb_heap_ops()) {
        let mut heap = IndexedHeap::new();
        let mut live: Vec<(autosynch::indexed_heap::NodeId, i32)> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Insert(k) => {
                    let id = heap.insert(k, ());
                    live.push((id, k));
                }
                HeapOp::RemoveNth(n) => {
                    if !live.is_empty() {
                        let (id, expected) = live.swap_remove(n % live.len());
                        let (k, ()) = heap.remove(id);
                        prop_assert_eq!(k, expected);
                    }
                }
                HeapOp::Pop => {
                    let model_min = live.iter().map(|&(_, k)| k).min();
                    // Track identity via peek: with duplicate keys the
                    // heap may pop a different node than a key-based
                    // model lookup would pick.
                    match heap.peek().map(|(id, &k, _)| (id, k)) {
                        None => prop_assert_eq!(model_min, None),
                        Some((id, k)) => {
                            prop_assert_eq!(Some(k), model_min);
                            heap.remove(id);
                            let pos = live
                                .iter()
                                .position(|&(lid, _)| lid == id)
                                .expect("model has the popped node");
                            live.swap_remove(pos);
                        }
                    }
                }
            }
            // Peek always agrees with the model minimum.
            prop_assert_eq!(
                heap.peek().map(|(_, &k, _)| k),
                live.iter().map(|&(_, k)| k).min()
            );
            prop_assert_eq!(heap.len(), live.len());
        }
    }

    #[test]
    fn slab_matches_map_model(ops in prop::collection::vec((any::<bool>(), 0usize..16), 1..200)) {
        let mut slab = Slab::new();
        let mut model: Vec<(autosynch::slab::SlabKey, usize)> = Vec::new();
        let mut next_value = 0usize;
        for (insert, pick) in ops {
            if insert || model.is_empty() {
                let key = slab.insert(next_value);
                model.push((key, next_value));
                next_value += 1;
            } else {
                let (key, expected) = model.swap_remove(pick % model.len());
                prop_assert_eq!(slab.remove(key), expected);
            }
            for &(key, value) in &model {
                prop_assert_eq!(slab.get(key), Some(&value));
            }
            prop_assert_eq!(slab.len(), model.len());
        }
    }
}

// --- Monitor under randomized producer/consumer schedules -----------------

/// A randomized bounded-counter schedule: producers add random amounts,
/// consumers demand random thresholds. Checked invariants: termination
/// (join within the harness timeout), conservation, and zero broadcasts.
fn run_schedule(
    mode: SignalMode,
    index: ThresholdIndexKind,
    relay_width: usize,
    validate: bool,
    adds: &[i64],
    demands: &[i64],
) {
    struct Pool {
        level: i64,
    }
    let total: i64 = adds.iter().sum();
    let config = MonitorConfig::new()
        .mode(mode)
        .threshold_index(index)
        .relay_width(relay_width)
        .validate_relay(validate);
    let monitor = Arc::new(Monitor::with_config(Pool { level: 0 }, config));
    let level = monitor.register_expr("level", |p: &Pool| p.level);

    std::thread::scope(|scope| {
        for &demand in demands {
            let monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                monitor.enter(|g| {
                    // Demands are calibrated to be satisfiable: each is
                    // at most the eventual total level. The thresholds
                    // are randomized one-shots — transient territory.
                    g.wait_transient(level.ge(demand.min(total)));
                });
            });
        }
        for &add in adds {
            let monitor = Arc::clone(&monitor);
            scope.spawn(move || {
                monitor.with(|p| p.level += add);
            });
        }
    });

    assert_eq!(monitor.with(|p| p.level), total);
    let snap = monitor.stats_snapshot();
    assert_eq!(snap.counters.broadcasts, 0);
    let counts = monitor.counts();
    assert_eq!(
        (counts.waiting, counts.signaled, counts.live_tags),
        (0, 0, 0),
        "clean shutdown"
    );
}

proptest! {
    // Thread-spawning cases are expensive; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn randomized_threshold_schedules_terminate_cleanly(
        adds in prop::collection::vec(1i64..=10, 1..8),
        demands in prop::collection::vec(0i64..=40, 1..8),
        mode in prop::sample::select(vec![
            SignalMode::Tagged,
            SignalMode::Untagged,
            SignalMode::ChangeDriven,
        ]),
        heap in any::<bool>(),
        width in 1usize..=3,
        validate in any::<bool>(),
    ) {
        let index = if heap {
            ThresholdIndexKind::PaperHeap
        } else {
            ThresholdIndexKind::OrderedMap
        };
        run_schedule(mode, index, width, validate, &adds, &demands);
    }

    #[test]
    fn randomized_equivalence_schedules_terminate_cleanly(
        seed_targets in prop::collection::vec(0i64..=6, 1..8),
        mode in prop::sample::select(vec![
            SignalMode::Tagged,
            SignalMode::Untagged,
            SignalMode::ChangeDriven,
        ]),
    ) {
        // Waiters on `level == k` for k in 0..=max; a driver keeps
        // cycling the level through every key until all waiters have
        // been released (each pass can release at least one waiter per
        // visited key, so the driver terminates).
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Pool { level: i64 }
        let config = MonitorConfig::new().mode(mode);
        let monitor = Arc::new(Monitor::with_config(Pool { level: -1 }, config));
        let level = monitor.register_expr("level", |p: &Pool| p.level);
        let max = *seed_targets.iter().max().expect("non-empty");
        let released = AtomicUsize::new(0);
        let waiters = seed_targets.len();

        std::thread::scope(|scope| {
            for &target in &seed_targets {
                let monitor = Arc::clone(&monitor);
                let released = &released;
                scope.spawn(move || {
                    monitor.enter(|g| g.wait_transient(level.eq(target)));
                    released.fetch_add(1, Ordering::SeqCst);
                });
            }
            let monitor = Arc::clone(&monitor);
            let released = &released;
            scope.spawn(move || {
                while released.load(Ordering::SeqCst) < waiters {
                    for step in 0..=max {
                        monitor.with(move |p| p.level = step);
                    }
                    std::thread::yield_now();
                }
            });
        });
        let counts = monitor.counts();
        prop_assert_eq!((counts.waiting, counts.signaled, counts.live_tags), (0, 0, 0));
        prop_assert_eq!(monitor.stats_snapshot().counters.broadcasts, 0);
    }
}
