//! Monitor configuration: signaling mode, instrumentation, ablations.

/// Which automatic-signaling strategy the condition manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalMode {
    /// Full AutoSynch: predicate tags prune the search for a signalable
    /// thread (§4.3).
    Tagged,
    /// AutoSynch-T from the evaluation (§6.2): relay signaling without
    /// tags — every active predicate is evaluated in turn.
    Untagged,
    /// Change-driven AutoSynch (`autosynch_cd`, an extension beyond the
    /// paper): predicate tags *plus* expression versioning. The manager
    /// keeps a snapshot of every live shared-expression value, diffs it
    /// against fresh evaluations when the state was mutated, and probes
    /// only conjunctions whose dependency sets intersect the changed
    /// set; relays on unmutated state with no leftover-true waiters are
    /// skipped outright. Each expression is evaluated at most once per
    /// *occupancy* instead of once per relay.
    ChangeDriven,
    /// Sharded change-driven AutoSynch (`autosynch_shard`, an extension
    /// beyond the paper): the predicate table, `None` list and
    /// threshold/equivalence indexes are partitioned into
    /// [`MonitorConfig::shard_count`] disjoint shards by each
    /// conjunction's dependency footprint (conjunctions spanning shards
    /// or with opaque dependencies land in a global shard probed last).
    /// Relays diff the expression snapshot once, map the changed set to
    /// the affected shards, and probe only those — a hit in one shard
    /// no longer invalidates the known-false status of the others. One
    /// batched pass may signal up to `relay_width` waiters from
    /// independent shards.
    Sharded,
    /// Waiter-parked AutoSynch (`autosynch_park`, an extension beyond
    /// the paper): the predicate work leaves the signaler's critical
    /// path entirely. Waiters park themselves on per-shard wait queues
    /// (one queue + lock per dependency shard, cross-shard/opaque
    /// conjunctions on a global queue); a signaler's exit only diffs
    /// the expression snapshot, publishes the new epoch into the
    /// lock-free ring, and unparks the queues of affected shards.
    /// Unparked waiters re-check their own predicate against the ring
    /// snapshot **without any lock** and re-park when it is still
    /// false; only a maybe-true verdict takes the shard lock to leave
    /// the queue and the monitor lock to confirm-and-claim (the
    /// monitor-lock confirm is also the fallback for opaque
    /// conjunctions the snapshot cannot decide).
    Parked,
    /// Routed-wake AutoSynch (an extension beyond the paper, layered on
    /// `Parked`): waiters still park themselves and self-check against
    /// the ring, but the wait queues are **bucketed by compiled-`Cond`
    /// slot** and a signaler's exit announces *slot-targeted* wakes
    /// instead of per-gate broadcasts. Three mechanisms, in escalating
    /// precision: (1) a wake names slot buckets, not gates; (2) each
    /// bucket wake is a **token sweep** — only the bucket head is
    /// unparked, a waiter whose snapshot self-check comes back false
    /// forwards the token to the next unobserved waiter, and a claimer
    /// re-injects the baton at monitor exit (the paper's `signaled`
    /// rule, executed waiter-side); (3) for equivalence-shaped compiled
    /// conditions (`turn == id`) the relay maps the freshly published
    /// value through an eq-route index straight to the single slot
    /// whose waiters can have flipped — one unpark instead of a wake
    /// herd. Transient (uncompiled) waiters fall back to a per-gate
    /// broadcast bucket, and cross-shard/opaque conditions keep the
    /// global gate's parked-style broadcast.
    Routed,
}

/// Which data structure backs the threshold-tag index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdIndexKind {
    /// The paper's heaps with the Fig. 4 peek/poll/backup/reinsert search.
    PaperHeap,
    /// An ordered map walked from the weakest key — an ablation showing
    /// the algorithmic content of Fig. 4 is ordered traversal, not the
    /// heap itself.
    OrderedMap,
}

/// Configuration for [`crate::monitor::Monitor`].
///
/// The defaults reproduce the paper's AutoSynch; the other knobs exist for
/// the AutoSynch-T comparison and the ablation benchmarks.
///
/// # Examples
///
/// ```
/// use autosynch::config::{MonitorConfig, SignalMode};
///
/// let autosynch_t = MonitorConfig::new().mode(SignalMode::Untagged);
/// assert_eq!(autosynch_t.signal_mode(), SignalMode::Untagged);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    mode: SignalMode,
    timing: bool,
    inactive_cap: usize,
    relay_on_clean_exit: bool,
    threshold_index: ThresholdIndexKind,
    relay_width: usize,
    validate_relay: bool,
    shards: usize,
    transient_bucket_cap: usize,
    sweep_cursors: bool,
    fast_path: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            mode: SignalMode::Tagged,
            timing: false,
            inactive_cap: 64,
            relay_on_clean_exit: true,
            threshold_index: ThresholdIndexKind::PaperHeap,
            relay_width: 1,
            validate_relay: false,
            shards: 8,
            transient_bucket_cap: 16,
            sweep_cursors: true,
            fast_path: true,
        }
    }
}

impl MonitorConfig {
    /// The paper-default configuration (tagged, heap index, relay on
    /// every exit, inactive list capped at 64).
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical constructor: the paper-default configuration with
    /// the given signaling mode. Every knob besides the mode keeps its
    /// paper default, so `preset(a)` vs `preset(b)` comparisons isolate
    /// the signaling machinery. (The retired v1 per-mode constructors
    /// were all shorthands for this one entry point.)
    ///
    /// ```
    /// use autosynch::config::{MonitorConfig, SignalMode};
    ///
    /// let parked = MonitorConfig::preset(SignalMode::Parked).shards(4);
    /// assert_eq!(parked.signal_mode(), SignalMode::Parked);
    /// ```
    pub fn preset(mode: SignalMode) -> Self {
        Self::new().mode(mode)
    }

    /// Sets the signaling mode.
    pub fn mode(mut self, mode: SignalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables per-phase timing (Table 1). Off by default so runtime
    /// figures are not distorted by clock reads.
    pub fn timing(mut self, on: bool) -> Self {
        self.timing = on;
        self
    }

    /// Caps the inactive-predicate LRU (§5.2: "when the length of the
    /// inactive list exceeds some predefined threshold, we remove the
    /// oldest predicates").
    pub fn inactive_cap(mut self, cap: usize) -> Self {
        self.inactive_cap = cap;
        self
    }

    /// Whether a monitor exit that never touched `state_mut` still runs
    /// the relay rule. `true` is the paper's behaviour; `false` is a
    /// sound optimization measured as an ablation: a read-only exit
    /// cannot newly satisfy any predicate, so it has nothing to announce.
    /// The skip applies only to occupancies that neither mutated **nor**
    /// consumed a relay signal — a consumed signal is the relay baton
    /// (§4.2) and the runtime always passes it on at exit, even under
    /// this ablation, lest a signaled reader absorb the baton and strand
    /// waiters whose predicates are already true.
    pub fn relay_on_clean_exit(mut self, on: bool) -> Self {
        self.relay_on_clean_exit = on;
        self
    }

    /// Selects the threshold-index implementation.
    pub fn threshold_index(mut self, kind: ThresholdIndexKind) -> Self {
        self.threshold_index = kind;
        self
    }

    /// How many threads one relay call may signal (an extension beyond
    /// the paper, which always signals exactly one). Values above 1
    /// wake several threads whose predicates are *currently* true —
    /// more parallel lock handoff at the risk of futile wakeups when an
    /// earlier winner falsifies a later one's condition.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero (relay invariance needs at least one
    /// signal).
    pub fn relay_width(mut self, width: usize) -> Self {
        assert!(width >= 1, "relay width must be at least 1");
        self.relay_width = width;
        self
    }

    /// How many data shards the sharded condition manager partitions
    /// the expression space into (the global shard for cross-shard and
    /// opaque conjunctions is extra). Ignored by the other modes.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero (the router needs at least one
    /// partition).
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "shard count must be at least 1");
        self.shards = n;
        self
    }

    /// Caps the per-gate LRU of graduated transient buckets (routed
    /// mode). A repeating-but-uncompiled `wait_transient` predicate
    /// graduates off the gate's broadcast bucket into a per-predicate
    /// bucket with the full token-sweep discipline, up to this many
    /// buckets per gate; beyond the cap (and with every cached bucket
    /// occupied), new transient predicates fall back to the broadcast
    /// bucket — they herd-wake but can never strand. `0` disables
    /// graduation entirely, restoring the PR 5 broadcast-only
    /// behaviour. Ignored by the other modes.
    pub fn transient_bucket_cap(mut self, cap: usize) -> Self {
        self.transient_bucket_cap = cap;
        self
    }

    /// Whether routed-mode token sweeps keep a per-bucket cursor so a
    /// forward resumes from the last unobserved position instead of
    /// rescanning the bucket's FIFO head (a full sweep drops from
    /// O(bucket²) worst case to O(bucket) total). `false` is the
    /// head-scan ablation, kept for the cursor-vs-head-scan
    /// equivalence tests. Ignored by the other modes.
    pub fn sweep_cursors(mut self, on: bool) -> Self {
        self.sweep_cursors = on;
        self
    }

    /// Whether the uncontended enter/exit fast path is armed: a packed
    /// monitor word checked before the mutex lets a quiescent monitor
    /// (no occupant, no waiter, nobody mid-entry) be entered by one CAS
    /// and exited by one atomic AND, and lets contended enterers hand
    /// their whole occupancy to the current lock holder through the
    /// flat-combining slab instead of queueing on the mutex. `false` is
    /// the mutex-only ablation (`AUTOSYNCH_NO_FAST_PATH=1` in the
    /// reproduce harness); the relay machinery is unaffected either way
    /// because the fast lane is only taken when no relay can be owed.
    pub fn fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// The configured signaling mode.
    pub fn signal_mode(&self) -> SignalMode {
        self.mode
    }

    /// The configured data-shard count (sharded mode only).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Whether per-phase timing is enabled.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// The inactive-list capacity.
    pub fn inactive_capacity(&self) -> usize {
        self.inactive_cap
    }

    /// Whether clean exits relay.
    pub fn relays_on_clean_exit(&self) -> bool {
        self.relay_on_clean_exit
    }

    /// The configured threshold-index kind.
    pub fn threshold_index_kind(&self) -> ThresholdIndexKind {
        self.threshold_index
    }

    /// The number of threads one relay call may signal.
    pub fn relay_width_value(&self) -> usize {
        self.relay_width
    }

    /// Enables the relay-invariance validator (Def. 4 / Prop. 2): after
    /// every relay call the manager exhaustively re-evaluates every
    /// waiting predicate against the live state and panics if one is
    /// true while no thread is signaled — i.e., if the tag indexes ever
    /// miss a signalable thread. This is a ground-truth differential
    /// check of the whole §4.3 machinery (hash probe, threshold heaps,
    /// `None` scan); it makes every relay O(waiting predicates), so it
    /// is for tests only.
    pub fn validate_relay(mut self, on: bool) -> Self {
        self.validate_relay = on;
        self
    }

    /// Whether the relay-invariance validator is enabled.
    pub fn validates_relay(&self) -> bool {
        self.validate_relay
    }

    /// The per-gate graduated-transient-bucket capacity (routed mode).
    pub fn transient_bucket_capacity(&self) -> usize {
        self.transient_bucket_cap
    }

    /// Whether routed-mode token sweeps use per-bucket cursors.
    pub fn sweep_cursors_enabled(&self) -> bool {
        self.sweep_cursors
    }

    /// Whether the uncontended enter/exit fast path is armed.
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MonitorConfig::default();
        assert_eq!(c.signal_mode(), SignalMode::Tagged);
        assert!(!c.timing_enabled());
        assert_eq!(c.inactive_capacity(), 64);
        assert!(c.relays_on_clean_exit());
        assert_eq!(c.threshold_index_kind(), ThresholdIndexKind::PaperHeap);
        assert_eq!(c.relay_width_value(), 1);
        assert_eq!(c.transient_bucket_capacity(), 16);
        assert!(c.sweep_cursors_enabled());
        assert!(c.fast_path_enabled());
    }

    #[test]
    fn relay_width_builder() {
        assert_eq!(MonitorConfig::new().relay_width(4).relay_width_value(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_relay_width_panics() {
        let _ = MonitorConfig::new().relay_width(0);
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = MonitorConfig::new()
            .mode(SignalMode::Untagged)
            .timing(true)
            .inactive_cap(8)
            .relay_on_clean_exit(false)
            .threshold_index(ThresholdIndexKind::OrderedMap)
            .validate_relay(true)
            .transient_bucket_cap(3)
            .sweep_cursors(false)
            .fast_path(false);
        assert_eq!(c.signal_mode(), SignalMode::Untagged);
        assert!(c.timing_enabled());
        assert_eq!(c.inactive_capacity(), 8);
        assert!(!c.relays_on_clean_exit());
        assert_eq!(c.threshold_index_kind(), ThresholdIndexKind::OrderedMap);
        assert!(c.validates_relay());
        assert_eq!(c.transient_bucket_capacity(), 3);
        assert!(!c.sweep_cursors_enabled());
        assert!(!c.fast_path_enabled());
    }

    #[test]
    fn validation_is_off_by_default() {
        assert!(!MonitorConfig::default().validates_relay());
    }

    #[test]
    fn preset_sets_only_the_mode() {
        for mode in [
            SignalMode::Tagged,
            SignalMode::Untagged,
            SignalMode::ChangeDriven,
            SignalMode::Sharded,
            SignalMode::Parked,
            SignalMode::Routed,
        ] {
            let c = MonitorConfig::preset(mode);
            assert_eq!(c.signal_mode(), mode);
            assert_eq!(c.inactive_capacity(), 64);
            assert!(c.relays_on_clean_exit());
            assert_eq!(c.relay_width_value(), 1);
            assert_eq!(c.shard_count(), 8);
            assert_eq!(c.transient_bucket_capacity(), 16);
            assert!(c.sweep_cursors_enabled());
            assert!(c.fast_path_enabled());
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_panics() {
        let _ = MonitorConfig::new().shards(0);
    }
}
