//! The naive automatic-signal monitor — the paper's *baseline* (§6.2).
//!
//! "Using the automatic-signal mechanism relying on only one condition
//! variable. It calls signalAll to wake every waiting thread. Then each
//! waken thread re-evaluates its own predicate after re-acquiring the
//! monitor."
//!
//! This is the mechanism the classic "automatic monitors are 10–50×
//! slower" folklore measured: broadcast on every state change, O(waiters)
//! context switches per change. Implemented here exactly so Figs. 8–10
//! can include its curve.
//!
//! A broadcast is issued at each relay point (monitor exit or
//! going-to-wait) when the state was actually mutated in between; a
//! never-mutating occupancy cannot have satisfied anyone's predicate, and
//! broadcasting before every wait regardless would let two waiting
//! threads wake each other forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use autosynch_metrics::phase::Phase;
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::stats::{MonitorStats, StatsSnapshot};

struct Inner<S> {
    state: S,
    dirty: bool,
    waiters: usize,
}

/// The single-condvar, broadcast-everything automatic monitor.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use autosynch::baseline::BaselineMonitor;
///
/// let m = Arc::new(BaselineMonitor::new(0i64));
/// let m2 = Arc::clone(&m);
/// let t = std::thread::spawn(move || m2.enter(|g| {
///     g.wait_until(|v| *v >= 10);
///     *g.state()
/// }));
/// m.enter(|g| *g.state_mut() = 10);
/// assert_eq!(t.join().unwrap(), 10);
/// ```
pub struct BaselineMonitor<S> {
    inner: Mutex<Inner<S>>,
    cond: Condvar,
    stats: Arc<MonitorStats>,
    owner: AtomicU64,
}

impl<S> std::fmt::Debug for BaselineMonitor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineMonitor").finish_non_exhaustive()
    }
}

mod thread_id {
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }

    pub fn current() -> u64 {
        ID.with(|id| *id)
    }
}

impl<S> BaselineMonitor<S> {
    /// Creates a baseline monitor.
    pub fn new(state: S) -> Self {
        BaselineMonitor {
            inner: Mutex::new(Inner {
                state,
                dirty: false,
                waiters: 0,
            }),
            cond: Condvar::new(),
            stats: MonitorStats::new(false),
            owner: AtomicU64::new(0),
        }
    }

    /// Enables per-phase timing.
    pub fn enable_timing(&self) {
        self.stats.phases.set_enabled(true);
    }

    /// Enters the monitor and runs `f` under mutual exclusion; on exit a
    /// `signalAll` is issued if the state was mutated.
    ///
    /// # Panics
    ///
    /// Panics when called re-entrantly from the same thread.
    pub fn enter<R>(&self, f: impl FnOnce(&mut BaselineGuard<'_, S>) -> R) -> R {
        let me = thread_id::current();
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            me,
            "BaselineMonitor::enter called re-entrantly from the same thread"
        );
        self.stats.counters.record_enter();
        let lock_timer = self.stats.phases.start(Phase::Lock);
        let mut guard = self.inner.lock();
        lock_timer.finish();
        self.owner.store(me, Ordering::Relaxed);
        guard.dirty = false;
        let mut g = BaselineGuard {
            monitor: self,
            inner: Some(guard),
        };
        let r = f(&mut g);
        drop(g);
        r
    }

    /// Convenience: enter and mutate the state.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        self.enter(|g| f(g.state_mut()))
    }

    /// Convenience: enter, wait until `cond`, then run `f`.
    pub fn wait_and<R>(
        &self,
        cond: impl Fn(&S) -> bool + 'static,
        f: impl FnOnce(&mut S) -> R,
    ) -> R {
        self.enter(|g| {
            g.wait_until(cond);
            f(g.state_mut())
        })
    }

    /// The instrumentation bundle.
    pub fn stats(&self) -> &Arc<MonitorStats> {
        &self.stats
    }

    /// A point-in-time snapshot of the instrumentation.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn broadcast_if_dirty(&self, inner: &mut Inner<S>) {
        if inner.dirty {
            inner.dirty = false;
            if inner.waiters > 0 {
                self.stats.counters.record_broadcast();
                self.cond.notify_all();
            }
        }
    }
}

/// The in-monitor view for [`BaselineMonitor::enter`] closures.
pub struct BaselineGuard<'a, S> {
    monitor: &'a BaselineMonitor<S>,
    inner: Option<MutexGuard<'a, Inner<S>>>,
}

impl<S> std::fmt::Debug for BaselineGuard<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineGuard")
            .field("held", &self.inner.is_some())
            .finish()
    }
}

impl<S> BaselineGuard<'_, S> {
    /// Shared access to the monitor state.
    pub fn state(&self) -> &S {
        &self.inner.as_ref().expect("guard released").state
    }

    /// Mutable access to the monitor state (marks it dirty, arming the
    /// exit broadcast).
    pub fn state_mut(&mut self) -> &mut S {
        let inner = self.inner.as_mut().expect("guard released");
        inner.dirty = true;
        &mut inner.state
    }

    /// `waituntil(P)` baseline-style: broadcast if we mutated, then wait
    /// on the single condition variable, re-evaluating our own predicate
    /// at every wakeup.
    pub fn wait_until(&mut self, pred: impl Fn(&S) -> bool) {
        let monitor = self.monitor;
        monitor.stats.counters.record_pred_eval();
        if pred(self.state()) {
            return;
        }
        monitor.stats.counters.record_wait();
        loop {
            {
                let inner = self.inner.as_mut().expect("guard released");
                monitor.broadcast_if_dirty(inner);
                inner.waiters += 1;
            }
            monitor.owner.store(0, Ordering::Relaxed);
            let timer = monitor.stats.phases.start(Phase::Await);
            monitor
                .cond
                .wait(self.inner.as_mut().expect("guard released"));
            timer.finish();
            monitor.owner.store(thread_id::current(), Ordering::Relaxed);
            monitor.stats.counters.record_wakeup();
            let inner = self.inner.as_mut().expect("guard released");
            inner.waiters -= 1;
            inner.dirty = false;
            monitor.stats.counters.record_pred_eval();
            if pred(&inner.state) {
                return;
            }
            monitor.stats.counters.record_futile_wakeup();
        }
    }
}

impl<S> Drop for BaselineGuard<'_, S> {
    fn drop(&mut self) {
        if let Some(mut inner) = self.inner.take() {
            self.monitor.broadcast_if_dirty(&mut inner);
            self.monitor.owner.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn waiter_released_by_mutation() {
        let m = Arc::new(BaselineMonitor::new(0i64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || m2.wait_and(|v| *v > 0, |v| *v));
        thread::sleep(Duration::from_millis(20));
        m.with(|v| *v = 7);
        assert_eq!(t.join().unwrap(), 7);
        let snap = m.stats_snapshot();
        assert!(snap.counters.broadcasts >= 1);
        assert_eq!(snap.counters.signals, 0, "baseline only broadcasts");
    }

    #[test]
    fn broadcast_wakes_all_and_most_are_futile() {
        let m = Arc::new(BaselineMonitor::new(0i64));
        let mut handles = Vec::new();
        for want in 1..=4i64 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                m.enter(|g| g.wait_until(move |v| *v >= want));
            }));
        }
        thread::sleep(Duration::from_millis(30));
        m.with(|v| *v = 1); // only want==1 can proceed; 3 futile wakeups
        thread::sleep(Duration::from_millis(30));
        m.with(|v| *v = 4);
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.stats_snapshot();
        assert!(
            snap.counters.futile_wakeups >= 3,
            "expected at least 3 futile wakeups, got {}",
            snap.counters.futile_wakeups
        );
    }

    #[test]
    fn read_only_exit_does_not_broadcast() {
        let m = Arc::new(BaselineMonitor::new(0i64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || m2.wait_and(|v| *v > 0, |_| ()));
        thread::sleep(Duration::from_millis(20));
        let before = m.stats_snapshot().counters.broadcasts;
        m.enter(|g| {
            let _ = g.state(); // look, don't touch
        });
        assert_eq!(m.stats_snapshot().counters.broadcasts, before);
        m.with(|v| *v = 1);
        t.join().unwrap();
    }

    #[test]
    fn mutate_then_wait_broadcasts_before_blocking() {
        // A thread that changes state and then waits must not strand
        // waiters whose predicates it satisfied.
        let m = Arc::new(BaselineMonitor::new((0i64, 0i64)));
        let m2 = Arc::clone(&m);
        let first = thread::spawn(move || {
            m2.enter(|g| {
                g.wait_until(|s| s.0 > 0);
                g.state_mut().1 = 1;
            });
        });
        thread::sleep(Duration::from_millis(20));
        let m3 = Arc::clone(&m);
        let second = thread::spawn(move || {
            m3.enter(|g| {
                g.state_mut().0 = 1; // satisfies `first`
                g.wait_until(|s| s.1 > 0); // then blocks on `first`'s move
            });
        });
        first.join().unwrap();
        second.join().unwrap();
    }

    #[test]
    fn immediate_truth_skips_waiting() {
        let m = BaselineMonitor::new(5i64);
        m.enter(|g| g.wait_until(|v| *v == 5));
        assert_eq!(m.stats_snapshot().counters.waits, 0);
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_enter_panics() {
        let m = BaselineMonitor::new(());
        m.enter(|_| m.enter(|_| {}));
    }
}
