//! Flat-combining publication slab for the contended enter/exit lane.
//!
//! When the elision CAS fails because the monitor is busy, a
//! `with`/`with_tracked` caller does not have to queue on the mutex: it
//! *publishes* its whole occupancy (a boxed closure over `Inner<S>`)
//! into one of the fixed records here and parks. The **combiner** — the
//! current occupancy holder, elided or mutex-backed — drains published
//! records at its own exit, applies each op under its existing exclusive
//! access, and folds all of their mutation diffs into the single relay
//! pass that exit was going to run anyway. One lock handoff and one
//! relay per combining pass instead of one per thread.
//!
//! The slab is payload-agnostic: `T` is whatever the monitor wants to
//! run (in practice `Box<dyn FnOnce(&mut Inner<S>, ..) + Send>`).
//! Records move through a small state machine:
//!
//! ```text
//! EMPTY -> INSTALLING -> PUBLISHED -> CLAIMED -> DONE | PANICKED -> EMPTY
//!                            \------------------------------------^
//!                             (publisher revokes: PUBLISHED -> INSTALLING -> EMPTY)
//! ```
//!
//! Only the thread that wins a status CAS touches the payload cells, so
//! the `UnsafeCell`s are data-race free; `DONE`/`PANICKED` are stored
//! with `Release` and observed with `Acquire`, which publishes the
//! combiner's writes (including the result written through the
//! publisher's out-pointer) back to the publisher.
//!
//! Liveness never depends on a combiner existing: a publisher that sees
//! no active occupancy holder (or exhausts its patience) revokes its
//! record by CAS and executes the op itself through the ordinary slow
//! lane.

use std::any::Any;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::thread::{self, Thread};
use std::time::Duration;

const EMPTY: u8 = 0;
const INSTALLING: u8 = 1;
const PUBLISHED: u8 = 2;
const CLAIMED: u8 = 3;
const DONE: u8 = 4;
const PANICKED: u8 = 5;

/// Number of publication records per monitor. Contended bursts larger
/// than this overflow to the ordinary mutex path, which is correct and
/// merely slower.
pub(crate) const FC_SLOTS: usize = 8;

/// How many spins a publisher burns before parking between polls.
const PUBLISH_SPINS: u32 = 96;
/// Park quantum between publisher polls.
const PUBLISH_PARK: Duration = Duration::from_micros(50);
/// Hard cap on poll rounds before the publisher revokes regardless of
/// apparent combiner activity (robustness backstop; ~100ms).
const PUBLISH_PATIENCE: u32 = 2_000;

/// What happened to a published op.
pub(crate) enum FcOutcome<T> {
    /// A combiner adopted and completed the op.
    Done,
    /// A combiner ran the op and it panicked; the payload is the panic
    /// value to resume with on the publisher's thread.
    Panicked(Box<dyn Any + Send>),
    /// No combiner adopted the op in time; the publisher got it back and
    /// must run it through the slow lane itself.
    Withdrawn(T),
}

struct FcRecord<T> {
    status: AtomicU8,
    op: UnsafeCell<Option<T>>,
    publisher: UnsafeCell<Option<Thread>>,
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
}

// Payload cells are only touched by the thread holding the record's
// current state-machine ownership (established by status CAS), so
// sharing records across threads is sound whenever the payload can move
// between threads at all.
unsafe impl<T: Send> Sync for FcRecord<T> {}

impl<T> FcRecord<T> {
    fn new() -> Self {
        FcRecord {
            status: AtomicU8::new(EMPTY),
            op: UnsafeCell::new(None),
            publisher: UnsafeCell::new(None),
            panic: UnsafeCell::new(None),
        }
    }
}

/// The per-monitor publication slab.
pub(crate) struct FcSlab<T> {
    records: [FcRecord<T>; FC_SLOTS],
    /// Cheap "anything to combine?" hint maintained by publish/claim/
    /// revoke. Racy reads are fine: a missed publication is picked up by
    /// the publisher's own revoke path.
    published: AtomicUsize,
}

impl<T> FcSlab<T> {
    pub(crate) fn new() -> Self {
        FcSlab {
            records: std::array::from_fn(|_| FcRecord::new()),
            published: AtomicUsize::new(0),
        }
    }

    /// Hint: number of records currently published and unclaimed.
    pub(crate) fn published(&self) -> usize {
        self.published.load(Ordering::Relaxed)
    }

    /// Install `op` into a free record. Returns the record index to wait
    /// on, or gives the op back if every record is busy.
    pub(crate) fn publish(&self, op: T) -> Result<usize, T> {
        for (i, rec) in self.records.iter().enumerate() {
            if rec
                .status
                .compare_exchange(EMPTY, INSTALLING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: winning the EMPTY->INSTALLING CAS grants
                // exclusive cell access until we store PUBLISHED.
                unsafe {
                    *rec.op.get() = Some(op);
                    *rec.publisher.get() = Some(thread::current());
                }
                rec.status.store(PUBLISHED, Ordering::Release);
                self.published.fetch_add(1, Ordering::Relaxed);
                return Ok(i);
            }
        }
        Err(op)
    }

    /// Block until the record at `ticket` completes, transfers a panic,
    /// or is revoked. `combiner_active` should report whether some thread
    /// currently holds the monitor and will therefore reach a combining
    /// exit; while it returns `false` the publisher revokes immediately
    /// instead of parking for a combiner that does not exist.
    pub(crate) fn await_done(
        &self,
        ticket: usize,
        combiner_active: impl Fn() -> bool,
    ) -> FcOutcome<T> {
        let rec = &self.records[ticket];
        let mut rounds: u32 = 0;
        loop {
            match rec.status.load(Ordering::Acquire) {
                DONE => {
                    // SAFETY: DONE is stored by the combiner after it is
                    // finished with the cells; we own them again.
                    unsafe {
                        *rec.publisher.get() = None;
                    }
                    rec.status.store(EMPTY, Ordering::Release);
                    return FcOutcome::Done;
                }
                PANICKED => {
                    // SAFETY: as above; the panic cell was written before
                    // the PANICKED release-store.
                    let payload = unsafe { (*rec.panic.get()).take() };
                    unsafe {
                        *rec.publisher.get() = None;
                    }
                    rec.status.store(EMPTY, Ordering::Release);
                    return FcOutcome::Panicked(
                        payload.unwrap_or_else(|| Box::new("fc op panicked")),
                    );
                }
                PUBLISHED => {
                    if (!combiner_active() || rounds >= PUBLISH_PATIENCE)
                        && rec
                            .status
                            .compare_exchange(
                                PUBLISHED,
                                INSTALLING,
                                Ordering::Acquire,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        self.published.fetch_sub(1, Ordering::Relaxed);
                        // SAFETY: winning PUBLISHED->INSTALLING makes us
                        // the exclusive cell owner again.
                        let op = unsafe { (*rec.op.get()).take() };
                        unsafe {
                            *rec.publisher.get() = None;
                        }
                        rec.status.store(EMPTY, Ordering::Release);
                        return FcOutcome::Withdrawn(op.expect("published record lost its op"));
                    }
                    rounds += 1;
                    if rounds <= 1 {
                        for _ in 0..PUBLISH_SPINS {
                            std::hint::spin_loop();
                        }
                    } else {
                        thread::park_timeout(PUBLISH_PARK);
                    }
                }
                // CLAIMED: a combiner is running our op right now; it
                // will store DONE or PANICKED shortly. Just wait.
                _ => thread::park_timeout(PUBLISH_PARK),
            }
        }
    }

    /// Combiner side: claim every published record and run it. `run`
    /// returns `None` on success or the panic payload to hand back to
    /// the publisher. Returns how many ops were adopted this pass.
    pub(crate) fn drain(&self, mut run: impl FnMut(T) -> Option<Box<dyn Any + Send>>) -> usize {
        if self.published() == 0 {
            return 0;
        }
        let mut adopted = 0;
        for (slot, rec) in self.records.iter().enumerate() {
            if rec
                .status
                .compare_exchange(PUBLISHED, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            self.published.fetch_sub(1, Ordering::Relaxed);
            crate::telemetry::record(crate::telemetry::EventKind::FcAdopt, slot as u64, 0);
            // SAFETY: winning PUBLISHED->CLAIMED grants exclusive cell
            // access until the DONE/PANICKED release-store below.
            let op = unsafe { (*rec.op.get()).take() }.expect("claimed record lost its op");
            let publisher = unsafe { (*rec.publisher.get()).clone() };
            match run(op) {
                None => rec.status.store(DONE, Ordering::Release),
                Some(payload) => {
                    unsafe {
                        *rec.panic.get() = Some(payload);
                    }
                    rec.status.store(PANICKED, Ordering::Release);
                }
            }
            if let Some(t) = publisher {
                t.unpark();
            }
            adopted += 1;
        }
        adopted
    }
}

impl<T> std::fmt::Debug for FcSlab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FcSlab")
            .field("slots", &FC_SLOTS)
            .field("published", &self.published())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn publish_drain_roundtrip() {
        let slab: FcSlab<u32> = FcSlab::new();
        let t = slab.publish(7).unwrap();
        assert_eq!(slab.published(), 1);
        let got = Arc::new(AtomicUsize::new(0));
        let got2 = Arc::clone(&got);
        let adopted = slab.drain(move |v| {
            got2.store(v as usize, Ordering::Relaxed);
            None
        });
        assert_eq!(adopted, 1);
        assert_eq!(got.load(Ordering::Relaxed), 7);
        assert_eq!(slab.published(), 0);
        match slab.await_done(t, || true) {
            FcOutcome::Done => {}
            _ => panic!("expected Done"),
        }
        // Record is recycled.
        assert!(slab.publish(9).is_ok());
    }

    #[test]
    fn withdraw_when_no_combiner() {
        let slab: FcSlab<u32> = FcSlab::new();
        let t = slab.publish(11).unwrap();
        match slab.await_done(t, || false) {
            FcOutcome::Withdrawn(v) => assert_eq!(v, 11),
            _ => panic!("expected Withdrawn"),
        }
        assert_eq!(slab.published(), 0);
    }

    #[test]
    fn panic_payload_transfers() {
        let slab: FcSlab<u32> = FcSlab::new();
        let t = slab.publish(3).unwrap();
        slab.drain(|_| Some(Box::new("boom")));
        match slab.await_done(t, || true) {
            FcOutcome::Panicked(p) => {
                assert_eq!(*p.downcast::<&str>().unwrap(), "boom");
            }
            _ => panic!("expected Panicked"),
        }
    }

    #[test]
    fn slab_full_returns_op() {
        let slab: FcSlab<u32> = FcSlab::new();
        for i in 0..FC_SLOTS as u32 {
            slab.publish(i).unwrap();
        }
        assert!(slab.publish(99).is_err());
    }

    #[test]
    fn concurrent_publishers_and_one_combiner() {
        let slab: Arc<FcSlab<usize>> = Arc::new(FcSlab::new());
        let sum = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (1..=4)
            .map(|i| {
                let slab = Arc::clone(&slab);
                std::thread::spawn(move || match slab.publish(i) {
                    Ok(t) => matches!(slab.await_done(t, || true), FcOutcome::Done),
                    Err(_) => false,
                })
            })
            .collect();
        // Drain until all four are adopted.
        let mut adopted = 0;
        while adopted < 4 {
            let sum = Arc::clone(&sum);
            adopted += slab.drain(move |v| {
                sum.fetch_add(v, Ordering::Relaxed);
                None
            });
            std::thread::yield_now();
        }
        for h in handles {
            assert!(h.join().unwrap(), "publisher must observe Done");
        }
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }
}
