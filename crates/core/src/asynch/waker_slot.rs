//! The task-backed twin of [`ParkSlot`]: the same sticky-token,
//! epoch-stamped wake protocol, but "wake the waiter" invokes a
//! registered [`Waker`] instead of notifying a condvar.
//!
//! The state machine is deliberately identical to the thread slot's —
//! the routed wake subsystem treats both through the
//! [`Waiter`](crate::wake::Waiter) enum and must not be able to tell
//! them apart:
//!
//! * **No lost wakeup before pending.** [`WakerSlot::poll_token`] is
//!   the async analogue of "consume the token or commit to sleeping":
//!   under one lock hold it either consumes a pending token or
//!   registers the poll's waker for the next [`WakerSlot::unpark`]. An
//!   unpark serialized before the poll is consumed; one serialized
//!   after finds the freshly registered waker and wakes it. There is no
//!   window in which a token can land unseen with no waker registered.
//! * **Epoch stamps and coalescing.** Unparks carry the publishing
//!   epoch and coalesce into the maximum, exactly like the park token,
//!   so a task always learns the newest epoch covering its wakes.
//! * **Coverage.** For the no-lost-token audit a task is covered when
//!   it holds a pending token or has no waker registered — the latter
//!   means a poll is imminent (the future was just created, is mid
//!   poll, or was just woken) and will run `poll_token` before the task
//!   suspends again, mirroring "awake threads are covered".
//!
//! [`ParkSlot`]: crate::parking::park::ParkSlot
//! [`Waker`]: std::task::Waker

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::task::Waker;

use parking_lot::Mutex;

#[derive(Default)]
struct SlotState {
    /// An unpark arrived and has not been consumed by a poll.
    pending: bool,
    /// The waker of the task's most recent pending poll, if any.
    waker: Option<Waker>,
    /// Newest epoch stamped by any unpark.
    wake_epoch: u64,
    /// Newest published epoch the task's self-check has evaluated.
    observed: u64,
}

/// One async waiter's wake token. See the module docs for the protocol.
#[derive(Default)]
pub(crate) struct WakerSlot {
    state: Mutex<SlotState>,
    /// The flight-recorder wait id of the wait this slot backs (0 when
    /// tracing was off at registration) — stamped into `WakerWake`
    /// events so the span stitcher can match wake deliveries to spans.
    trace_id: AtomicU64,
}

impl fmt::Debug for WakerSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("WakerSlot")
            .field("pending", &state.pending)
            .field("registered", &state.waker.is_some())
            .field("wake_epoch", &state.wake_epoch)
            .field("observed", &state.observed)
            .finish()
    }
}

impl WakerSlot {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Tags the slot with its wait's flight-recorder id; subsequent
    /// `WakerWake` events carry it in their `b` operand.
    pub(crate) fn set_trace_id(&self, wait_id: u64) {
        self.trace_id.store(wait_id, Ordering::Relaxed);
    }

    /// Hands the task a wake token stamped with the publishing epoch
    /// and invokes its registered waker — the `Waker::wake()` call
    /// happens after the slot lock is dropped, exactly as thread
    /// unparks notify their condvar off-lock. Tokens coalesce into the
    /// newest epoch.
    pub(crate) fn unpark(&self, epoch: u64) {
        crate::telemetry::record(
            crate::telemetry::EventKind::WakerWake,
            epoch,
            self.trace_id.load(Ordering::Relaxed),
        );
        let waker = {
            let mut state = self.state.lock();
            state.pending = true;
            if epoch > state.wake_epoch {
                state.wake_epoch = epoch;
            }
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Wakes the task **without** granting a token — the deadline
    /// timer's interrupt. The next poll finds no token pending and
    /// checks its deadline instead of self-checking.
    pub(crate) fn interrupt(&self) {
        let waker = self.state.lock().waker.take();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// The poll-side token consume: atomically takes a pending token
    /// (returning its stamped epoch) or registers `waker` for the next
    /// unpark. The single lock hold is the no-lost-wakeup crux — every
    /// unpark is serialized either before (consumed now) or after
    /// (wakes the registered waker).
    pub(crate) fn poll_token(&self, waker: &Waker) -> Option<u64> {
        let mut state = self.state.lock();
        if state.pending {
            state.pending = false;
            state.waker = None;
            return Some(state.wake_epoch);
        }
        match &mut state.waker {
            Some(registered) if registered.will_wake(waker) => {}
            registered => *registered = Some(waker.clone()),
        }
        None
    }

    /// Pre-arms the slot with a token at `epoch`: registration found
    /// the predicate already true, so the future's first poll must
    /// claim immediately instead of waiting for a relay that may owe
    /// this entry nothing (no mutation happened).
    pub(crate) fn self_arm(&self, epoch: u64) {
        let mut state = self.state.lock();
        state.pending = true;
        if epoch > state.wake_epoch {
            state.wake_epoch = epoch;
        }
    }

    /// Records that the task's self-check evaluated the snapshot of
    /// `epoch` (monotonic; the sweep's targeting rule).
    pub(crate) fn observed(&self, epoch: u64) {
        let mut state = self.state.lock();
        if epoch > state.observed {
            state.observed = epoch;
        }
    }

    /// The newest epoch this task's self-checks have evaluated.
    pub(crate) fn observed_epoch(&self) -> u64 {
        self.state.lock().observed
    }

    /// Atomically consumes a pending-but-unconsumed token, returning
    /// its stamped epoch. A leaver (claim, timeout, cancellation)
    /// drains this right after dequeueing: the token is a *bucket*
    /// resource and must be forwarded, never absorbed.
    pub(crate) fn take_pending(&self) -> Option<u64> {
        let mut state = self.state.lock();
        if state.pending {
            state.pending = false;
            Some(state.wake_epoch)
        } else {
            None
        }
    }

    /// Whether the task cannot sleep through a wakeup right now: it
    /// holds a pending token, or no waker is registered (a poll is
    /// imminent and will run [`WakerSlot::poll_token`] before the task
    /// suspends).
    pub(crate) fn covered(&self) -> bool {
        let state = self.state.lock();
        state.pending || state.waker.is_none()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    use super::*;

    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Waker, Arc<CountingWake>) {
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        (Waker::from(Arc::clone(&counter)), counter)
    }

    #[test]
    fn unpark_before_poll_is_consumed_without_a_wake() {
        let slot = WakerSlot::new();
        slot.unpark(7);
        let (waker, wakes) = counting_waker();
        assert_eq!(slot.poll_token(&waker), Some(7));
        assert_eq!(wakes.0.load(Ordering::SeqCst), 0, "token, not a wake");
        assert!(slot.covered(), "a consumed token leaves the task awake");
    }

    #[test]
    fn unpark_after_poll_wakes_the_registered_waker_once() {
        let slot = WakerSlot::new();
        let (waker, wakes) = counting_waker();
        assert_eq!(slot.poll_token(&waker), None);
        assert!(!slot.covered(), "registered and tokenless is bare");
        slot.unpark(3);
        slot.unpark(9);
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1, "waker taken by first");
        assert_eq!(slot.poll_token(&waker), Some(9), "coalesced to max epoch");
    }

    #[test]
    fn interrupt_wakes_without_granting_a_token() {
        let slot = WakerSlot::new();
        let (waker, wakes) = counting_waker();
        assert_eq!(slot.poll_token(&waker), None);
        slot.interrupt();
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1);
        assert_eq!(slot.poll_token(&waker), None, "no token was granted");
    }

    #[test]
    fn take_pending_drains_exactly_one_token() {
        let slot = WakerSlot::new();
        assert_eq!(slot.take_pending(), None);
        slot.self_arm(6);
        assert_eq!(slot.take_pending(), Some(6));
        assert_eq!(slot.take_pending(), None, "token was consumed");
    }

    #[test]
    fn observed_epochs_are_monotonic() {
        let slot = WakerSlot::new();
        slot.observed(4);
        slot.observed(2);
        assert_eq!(slot.observed_epoch(), 4);
    }
}
