//! The process-wide deadline service for timed async waits.
//!
//! A thread-backed timed wait sleeps inside `Condvar::wait_until`, so
//! its deadline needs no external service. A task-backed wait owns no
//! thread to sleep on, so something must call its waker when the
//! deadline passes with no token delivered. This module is that
//! something: one lazily spawned thread holding a min-heap of
//! `(deadline, slot)` entries, firing [`WakerSlot::interrupt`] —
//! a wake *without* a token — at or after each deadline. The woken
//! future's poll sees no token pending, checks `Instant::now()` against
//! its deadline, and resolves the race in the token's favor when both
//! arrive (mirroring `ParkSlot::park`, where a pending token beats an
//! elapsed deadline).
//!
//! Interrupts are fire-and-forget: a future that completed or was
//! dropped before its deadline leaves a stale heap entry whose
//! interrupt wakes nobody (the slot's waker is gone). That keeps
//! cancellation free of timer bookkeeping.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use super::waker_slot::WakerSlot;

struct Entry {
    at: Instant,
    seq: u64,
    slot: Arc<WakerSlot>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Timer {
    heap: Mutex<BinaryHeap<Reverse<Entry>>>,
    cv: Condvar,
}

impl Timer {
    fn run(&self) {
        let mut heap = self.heap.lock();
        loop {
            let next_at = loop {
                match heap.peek() {
                    None => break None,
                    Some(Reverse(entry)) if entry.at <= Instant::now() => {
                        let Reverse(entry) = heap.pop().expect("peeked entry");
                        // Interrupt off-lock so a concurrent schedule
                        // never waits behind a waker invocation.
                        drop(heap);
                        entry.slot.interrupt();
                        heap = self.heap.lock();
                    }
                    Some(Reverse(entry)) => break Some(entry.at),
                }
            };
            match next_at {
                None => self.cv.wait(&mut heap),
                Some(at) => {
                    let _ = self.cv.wait_until(&mut heap, at);
                }
            }
        }
    }
}

fn service() -> &'static Timer {
    static SERVICE: OnceLock<&'static Timer> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let timer: &'static Timer = Box::leak(Box::new(Timer {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("autosynch-timer".into())
            .spawn(move || timer.run())
            .expect("spawning the async deadline service");
        timer
    })
}

/// Schedules `slot.interrupt()` at or shortly after `at`. The first
/// call spawns the service thread; entries for completed waits are
/// harmless (their interrupt finds no waker registered).
pub(crate) fn schedule(at: Instant, slot: Arc<WakerSlot>) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let timer = service();
    let mut heap = timer.heap.lock();
    heap.push(Reverse(Entry {
        at,
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        slot,
    }));
    drop(heap);
    timer.cv.notify_one();
}

#[cfg(test)]
mod tests {
    use std::task::{Wake, Waker};
    use std::time::Duration;

    use super::*;

    struct Flag(std::sync::Mutex<bool>, std::sync::Condvar);

    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            *self.0.lock().unwrap() = true;
            self.1.notify_all();
        }
    }

    #[test]
    fn deadlines_fire_in_order_and_without_tokens() {
        let slot = Arc::new(WakerSlot::new());
        let flag = Arc::new(Flag(
            std::sync::Mutex::new(false),
            std::sync::Condvar::new(),
        ));
        let waker = Waker::from(Arc::clone(&flag));
        assert_eq!(slot.poll_token(&waker), None);
        schedule(
            Instant::now() + Duration::from_millis(20),
            Arc::clone(&slot),
        );
        let fired = flag.0.lock().unwrap();
        let (fired, timeout) = flag
            .1
            .wait_timeout_while(fired, Duration::from_secs(5), |f| !*f)
            .unwrap();
        assert!(!timeout.timed_out(), "interrupt never fired");
        assert!(*fired);
        assert_eq!(slot.poll_token(&waker), None, "interrupts grant no token");
    }
}
