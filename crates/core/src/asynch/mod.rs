//! Async waiter front-end: `waituntil` as a future.
//!
//! The routed wake subsystem (`crate::wake`) identifies a waiting
//! population by its compiled-`Cond` slot bucket; nothing in the token
//! sweep or eq-route discipline requires that a bucket entry be a
//! parked OS thread. This module supplies the task-backed entry: a
//! `WakerSlot` runs the exact `ParkSlot` token protocol but "wake"
//! means invoking the poll's registered [`Waker`](std::task::Waker),
//! so one OS thread can host tens of thousands of concurrent waiters —
//! the path from the ~10⁴ thread ceiling to 10⁵⁺ waiters per run.
//!
//! The entry points are [`Monitor::enter_async`] (an `enter` whose
//! guard lifetime is pinned to the monitor borrow, so the closure can
//! return a monitor-borrowing future) and
//! [`MonitorGuard::wait_async`] / [`MonitorGuard::wait_async_timeout`],
//! which register the waiter under the held guard and return a future
//! resolving to a **new guard** whose occupancy observed the predicate
//! true:
//!
//! ```
//! use std::sync::Arc;
//! use autosynch::config::{MonitorConfig, SignalMode};
//! use autosynch::Monitor;
//!
//! let m = Monitor::with_config(0i64, MonitorConfig::preset(SignalMode::Routed));
//! let x = m.register_expr("x", |v| *v);
//! let ready = m.compile(x.ge(1));
//!
//! let wait = m.enter_async(|g| g.wait_async(&ready));
//! // ... hand `wait` to any executor; meanwhile some occupancy does:
//! m.enter(|g| *g.state_mut() += 1);
//! let mut g = miniexec::block_on(wait);
//! assert!(*g.state_mut() >= 1);
//! # drop(g);
//! ```
//!
//! Each poll runs the same lock-free self-check a parked thread runs
//! after an unpark: consume the slot's token, read the snapshot ring,
//! and only re-enter the monitor lock on a `MayHold` verdict; a
//! decidable-false verdict forwards the sweep token and re-registers
//! the waker without touching the lock. Cancellation (dropping a
//! pending future) deregisters the bucket entry and forwards any held
//! token, mirroring the timeout path, so the no-lost-token audit holds
//! with mixed thread/task populations. The full lifecycle and the
//! cancellation-vs-token discipline are documented in `DESIGN.md`
//! ("Async waiter soundness").
//!
//! [`Monitor::enter_async`]: crate::Monitor::enter_async
//! [`MonitorGuard::wait_async`]: crate::MonitorGuard::wait_async
//! [`MonitorGuard::wait_async_timeout`]: crate::MonitorGuard::wait_async_timeout

pub(crate) mod timer;
pub(crate) mod waker_slot;

pub(crate) use waker_slot::WakerSlot;

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Instant;

use crate::monitor::{AsyncWaitCore, MonitorGuard};

/// The pending wait returned by
/// [`MonitorGuard::wait_async`](crate::MonitorGuard::wait_async):
/// resolves to a fresh [`MonitorGuard`] once the condition's predicate
/// held under the monitor lock. Dropping it before completion cancels
/// the wait (deregisters the bucket entry, forwards any held token).
#[must_use = "futures do nothing unless polled; dropping a pending wait cancels it"]
#[derive(Debug)]
pub struct WaitAsync<'m, S> {
    core: AsyncWaitCore<'m, S>,
}

impl<'m, S> WaitAsync<'m, S> {
    pub(crate) fn new(core: AsyncWaitCore<'m, S>) -> Self {
        WaitAsync { core }
    }
}

impl<'m, S> Future for WaitAsync<'m, S> {
    type Output = MonitorGuard<'m, S>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().core.poll_claim(cx)
    }
}

impl<S> Drop for WaitAsync<'_, S> {
    fn drop(&mut self) {
        self.core.cancel();
    }
}

/// The pending timed wait returned by
/// [`MonitorGuard::wait_async_timeout`](crate::MonitorGuard::wait_async_timeout):
/// resolves to `Some(guard)` when the predicate held, `None` when the
/// deadline elapsed first (a pending token beats an elapsed deadline,
/// exactly as in the thread-backed timed wait). Dropping it before
/// completion cancels the wait.
#[must_use = "futures do nothing unless polled; dropping a pending wait cancels it"]
#[derive(Debug)]
pub struct WaitTimeoutAsync<'m, S> {
    core: AsyncWaitCore<'m, S>,
    deadline: Instant,
    timer_armed: bool,
}

impl<'m, S> WaitTimeoutAsync<'m, S> {
    pub(crate) fn new(core: AsyncWaitCore<'m, S>, deadline: Instant) -> Self {
        WaitTimeoutAsync {
            core,
            deadline,
            timer_armed: false,
        }
    }
}

impl<'m, S> Future for WaitTimeoutAsync<'m, S> {
    type Output = Option<MonitorGuard<'m, S>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        this.core
            .poll_claim_deadline(cx, this.deadline, &mut this.timer_armed)
    }
}

impl<S> Drop for WaitTimeoutAsync<'_, S> {
    fn drop(&mut self) {
        self.core.cancel();
    }
}
