//! The equivalence-tag index (§4.3.2, "Equivalence tag signaling").
//!
//! "For each unique shared expression of an equivalence tag, we create a
//! hash table, where the value of the local expression is used as the key.
//! By using this hash table and evaluating the shared expression at
//! runtime, we can find a tag that is true in O(1) time if there is any."
//!
//! The index therefore maps `ExprId → (key → [(predicate, conjunction)])`.
//! Several predicates sharing the conjunct `x == 5` share the bucket — the
//! paper's shared tags.

use std::collections::HashMap;

use autosynch_predicate::expr::ExprId;

use crate::slab::SlabKey;

/// Identifier of a predicate entry in the condition manager.
pub type PredId = SlabKey;

/// One tagged conjunction: which predicate, which of its conjunctions.
pub type TaggedConj = (PredId, u32);

/// Hash index over equivalence tags.
#[derive(Debug, Default)]
pub struct EqIndex {
    by_expr: HashMap<ExprId, HashMap<i64, Vec<TaggedConj>>>,
}

impl EqIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the equivalence tag `(expr == key)` for a conjunction.
    pub fn insert(&mut self, expr: ExprId, key: i64, entry: TaggedConj) {
        self.by_expr
            .entry(expr)
            .or_default()
            .entry(key)
            .or_default()
            .push(entry);
    }

    /// Unregisters a previously inserted tag. Empty buckets and empty
    /// per-expression tables are dropped so [`EqIndex::exprs`] only yields
    /// expressions that still need evaluating during relay.
    pub fn remove(&mut self, expr: ExprId, key: i64, entry: TaggedConj) {
        let Some(buckets) = self.by_expr.get_mut(&expr) else {
            return;
        };
        if let Some(bucket) = buckets.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|&e| e == entry) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                buckets.remove(&key);
            }
        }
        if buckets.is_empty() {
            self.by_expr.remove(&expr);
        }
    }

    /// The candidates whose tag is true given `value` of `expr` — the
    /// O(1) probe.
    pub fn candidates(&self, expr: ExprId, value: i64) -> &[TaggedConj] {
        self.by_expr
            .get(&expr)
            .and_then(|buckets| buckets.get(&value))
            .map_or(&[], Vec::as_slice)
    }

    /// Expressions that currently carry at least one equivalence tag.
    /// The relay evaluates each of these once per call.
    pub fn exprs(&self) -> impl Iterator<Item = ExprId> + '_ {
        self.by_expr.keys().copied()
    }

    /// Total number of registered tags (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.by_expr
            .values()
            .flat_map(|buckets| buckets.values())
            .map(Vec::len)
            .sum()
    }

    /// Whether no tags are registered.
    pub fn is_empty(&self) -> bool {
        self.by_expr.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::Slab;

    fn pid(n: usize) -> PredId {
        // Fabricate distinct slab keys through a real slab.
        let mut slab = Slab::new();
        let mut last = slab.insert(());
        for _ in 0..n {
            last = slab.insert(());
        }
        last
    }

    #[test]
    fn probe_finds_only_matching_key() {
        let mut idx = EqIndex::new();
        let e = ExprId::from_raw(0);
        let (p1, p2) = (pid(0), pid(1));
        idx.insert(e, 3, (p1, 0));
        idx.insert(e, 8, (p2, 0));
        assert_eq!(idx.candidates(e, 8), &[(p2, 0)]);
        assert_eq!(idx.candidates(e, 3), &[(p1, 0)]);
        assert!(idx.candidates(e, 5).is_empty());
        assert!(idx.candidates(ExprId::from_raw(9), 8).is_empty());
    }

    #[test]
    fn shared_tags_accumulate_in_one_bucket() {
        // (x = 5) && (z <= 4) and (x = 5) && (y >= 4) share the x==5 tag.
        let mut idx = EqIndex::new();
        let e = ExprId::from_raw(1);
        idx.insert(e, 5, (pid(0), 0));
        idx.insert(e, 5, (pid(1), 0));
        assert_eq!(idx.candidates(e, 5).len(), 2);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn remove_cleans_empty_buckets_and_exprs() {
        let mut idx = EqIndex::new();
        let e = ExprId::from_raw(0);
        let p = pid(0);
        idx.insert(e, 7, (p, 0));
        assert_eq!(idx.exprs().count(), 1);
        idx.remove(e, 7, (p, 0));
        assert!(idx.is_empty());
        assert_eq!(idx.exprs().count(), 0);
        assert!(idx.candidates(e, 7).is_empty());
    }

    #[test]
    fn remove_is_precise() {
        let mut idx = EqIndex::new();
        let e = ExprId::from_raw(0);
        let p = pid(0);
        idx.insert(e, 7, (p, 0));
        idx.insert(e, 7, (p, 1));
        idx.remove(e, 7, (p, 0));
        assert_eq!(idx.candidates(e, 7), &[(p, 1)]);
    }

    #[test]
    fn removing_missing_entries_is_a_noop() {
        let mut idx = EqIndex::new();
        let e = ExprId::from_raw(0);
        idx.remove(e, 1, (pid(0), 0));
        idx.insert(e, 1, (pid(0), 0));
        idx.remove(e, 2, (pid(0), 0)); // wrong key
        idx.remove(e, 1, (pid(1), 0)); // wrong pred
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn exprs_lists_distinct_expressions() {
        let mut idx = EqIndex::new();
        idx.insert(ExprId::from_raw(0), 1, (pid(0), 0));
        idx.insert(ExprId::from_raw(1), 1, (pid(1), 0));
        idx.insert(ExprId::from_raw(0), 2, (pid(2), 0));
        let mut exprs: Vec<_> = idx.exprs().collect();
        exprs.sort();
        assert_eq!(exprs, vec![ExprId::from_raw(0), ExprId::from_raw(1)]);
    }
}
