//! The condition manager (§5.2): predicate table, waiter bookkeeping and
//! the relay-signaling search.
//!
//! One manager lives inside each monitor's mutex. It owns:
//!
//! * a **slab of predicate entries** — each entry is one globalized
//!   predicate with its own condition variable, shared by every thread
//!   waiting on a syntax-equivalent condition;
//! * the **predicate table** mapping structural keys to entries, so
//!   syntax-equivalent predicates reuse one condition variable;
//! * the **tag indexes** (equivalence hash table, threshold heaps, `None`
//!   list) that `ConditionManager::relay_signal` probes;
//! * the **inactive list** — an LRU of predicates with no waiters, kept
//!   around for reuse and evicted beyond a cap (§5.2); explicitly
//!   registered shared predicates are persistent and never evicted
//!   (§5.1).
//!
//! Waiter lifecycle per entry: `waiting` counts blocked, unsignaled
//! threads; `signaled` counts threads that have been picked by the relay
//! rule but have not yet resumed (the paper's *active* threads). Tags are
//! live exactly while `waiting > 0` — a fully signaled entry must not be
//! signaled again.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use autosynch_metrics::phase::Phase;
use autosynch_predicate::deps::ConjDeps;
use autosynch_predicate::expr::{ExprId, ExprTable};
use autosynch_predicate::key::PredKey;
use autosynch_predicate::predicate::Predicate;
use autosynch_predicate::tag::Tag;
use parking_lot::Condvar;

use crate::config::{MonitorConfig, SignalMode};
use crate::eq_index::{EqIndex, PredId, TaggedConj};
use crate::slab::Slab;
use crate::stats::MonitorStats;
use crate::threshold_index::ThresholdIndex;

/// One predicate entry: the globalized condition, its condition variable
/// and the waiter counters.
pub(crate) struct PredEntry<S> {
    pred: Predicate<S>,
    condvar: Arc<Condvar>,
    waiting: u32,
    signaled: u32,
    tags_active: bool,
    persistent: bool,
    in_inactive: bool,
}

/// The per-monitor condition manager.
pub(crate) struct ConditionManager<S> {
    entries: Slab<PredEntry<S>>,
    table: HashMap<PredKey, PredId>,
    eq_index: EqIndex,
    thresholds: ThresholdIndex,
    none_list: Vec<TaggedConj>,
    scan_list: Vec<PredId>,
    inactive: VecDeque<PredId>,
    config: MonitorConfig,
    // --- change-driven relay state (SignalMode::ChangeDriven only) ------
    /// `None`-tagged conjunctions indexed under each of their dependency
    /// expressions, so the `None` probe visits only changed candidates.
    none_index: HashMap<ExprId, Vec<TaggedConj>>,
    /// `None`-tagged conjunctions with opaque (or empty) dependency sets:
    /// probed on every non-skipped relay.
    opaque_list: Vec<TaggedConj>,
    /// Live `None` tags in change-driven mode (distinct conjunctions; the
    /// index above lists each under every dependency).
    cd_none_count: usize,
    /// How many active conjunctions depend on each expression — the set
    /// the snapshot diff evaluates.
    dep_refs: HashMap<ExprId, u32>,
    /// Last diffed value per expression (`ExprId::index`-indexed).
    value_cache: Vec<Option<i64>>,
    /// The diff epoch at which each slot was last evaluated. A slot that
    /// skipped a diff (its expression had no active dependents) has a
    /// gap; comparing across a gap is unsound — the value could have
    /// changed and coincidentally returned — so a non-contiguous slot is
    /// reported changed regardless of its cached value.
    slot_epoch: Vec<u64>,
    /// Monotonic diff counter backing the contiguity check.
    epoch: u64,
    /// Scratch bitmap: expressions whose value changed in this relay's
    /// snapshot diff.
    changed: Vec<bool>,
    /// Reusable buffer for the threshold-index expression walk, so the
    /// probe does not allocate per relay.
    expr_scratch: Vec<ExprId>,
    /// Ignore the changed bitmap and probe every candidate — set when
    /// leftover-true waiters may exist from a width-limited relay.
    probe_all: bool,
    /// The state was mutated since the last snapshot diff (fed by
    /// [`ConditionManager::note_mutation`]).
    state_dirty: bool,
    /// The last relay search exhausted its candidates without a hit, so
    /// every active conjunction is known false until the next mutation.
    all_false: bool,
}

impl<S> ConditionManager<S> {
    pub(crate) fn new(config: MonitorConfig) -> Self {
        ConditionManager {
            entries: Slab::new(),
            table: HashMap::new(),
            eq_index: EqIndex::new(),
            thresholds: ThresholdIndex::new(config.threshold_index_kind()),
            none_list: Vec::new(),
            scan_list: Vec::new(),
            inactive: VecDeque::new(),
            config,
            none_index: HashMap::new(),
            opaque_list: Vec::new(),
            cd_none_count: 0,
            dep_refs: HashMap::new(),
            value_cache: Vec::new(),
            slot_epoch: Vec::new(),
            epoch: 0,
            changed: Vec::new(),
            expr_scratch: Vec::new(),
            probe_all: false,
            state_dirty: true,
            all_false: false,
        }
    }

    /// Records that the monitor state was mutated. Change-driven relays
    /// diff the expression snapshot only when this has been called since
    /// the previous diff; callers that mutate the state without
    /// announcing it here would make the change-driven mode miss
    /// wakeups. The monitor runtime calls it from `state_mut`.
    pub(crate) fn note_mutation(&mut self) {
        self.state_dirty = true;
    }

    /// Interns a predicate: returns the existing entry for a
    /// syntax-equivalent predicate or creates a new one.
    fn find_or_create(&mut self, pred: Predicate<S>, persistent: bool) -> PredId {
        if let Some(key) = pred.key() {
            if let Some(&pid) = self.table.get(key) {
                if persistent {
                    self.entries[pid].persistent = true;
                }
                return pid;
            }
        }
        let key = pred.key().cloned();
        let pid = self.entries.insert(PredEntry {
            pred,
            condvar: Arc::new(Condvar::new()),
            waiting: 0,
            signaled: 0,
            tags_active: false,
            persistent,
            in_inactive: false,
        });
        if let Some(key) = key {
            self.table.insert(key, pid);
        }
        pid
    }

    /// Pre-registers a shared predicate (§5.1: shared predicates are added
    /// in the constructor and never removed).
    pub(crate) fn register_persistent(&mut self, pred: Predicate<S>) -> PredId {
        let pid = self.find_or_create(pred, true);
        self.unlink_inactive(pid);
        pid
    }

    /// Registers the calling thread as a waiter on `pred` and activates
    /// the entry's tags. Returns the entry id the waiter keeps for the
    /// rest of its `waituntil`.
    pub(crate) fn register_waiter(&mut self, pred: Predicate<S>, stats: &MonitorStats) -> PredId {
        let timer = stats.phases.start(Phase::TagManager);
        let pid = self.find_or_create(pred, false);
        self.unlink_inactive(pid);
        let entry = &mut self.entries[pid];
        entry.waiting += 1;
        if !entry.tags_active {
            self.activate_tags(pid, stats);
        }
        timer.finish();
        pid
    }

    /// The condition variable of an entry (cloned so the waiter can block
    /// on it without borrowing the manager).
    pub(crate) fn condvar(&self, pid: PredId) -> Arc<Condvar> {
        Arc::clone(&self.entries[pid].condvar)
    }

    /// The entry's predicate, for re-evaluation after a wakeup.
    pub(crate) fn entry_pred(&self, pid: PredId) -> &Predicate<S> {
        &self.entries[pid].pred
    }

    /// A woken thread found its predicate false (another thread barged in
    /// and falsified it): it returns to the waiting pool.
    ///
    /// Signals are anonymous per-entry tokens, so a *spurious* wakeup
    /// (possible with a std-backed condvar, unlike `parking_lot`'s) is
    /// indistinguishable from a signaled one at the call site. With no
    /// token outstanding the thread's unit never left `waiting` and
    /// nothing moves; with a token outstanding the thread absorbs it on
    /// behalf of the entry — either way `waiting + signaled` keeps
    /// counting exactly the blocked threads, and the caller re-runs the
    /// relay rule before blocking again.
    pub(crate) fn mark_futile(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        if entry.signaled == 0 {
            // Spurious wakeup: the thread is still accounted in
            // `waiting` and its tags are still live.
            debug_assert!(entry.waiting > 0);
            debug_assert!(entry.tags_active);
            return;
        }
        entry.signaled -= 1;
        entry.waiting += 1;
        if !entry.tags_active {
            let timer = stats.phases.start(Phase::TagManager);
            self.activate_tags(pid, stats);
            timer.finish();
        }
    }

    /// A woken thread found its predicate true and proceeds: its unit
    /// leaves the entry — from `signaled` when a token is outstanding,
    /// else from `waiting` (a spurious wakeup that happened to find the
    /// predicate true, or a signal token absorbed by a futile peer). An
    /// entry with no threads left is retired to the inactive list.
    pub(crate) fn consume_signal(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        if entry.signaled > 0 {
            entry.signaled -= 1;
        } else {
            debug_assert!(entry.waiting > 0, "consuming thread was not accounted");
            entry.waiting -= 1;
            if entry.waiting == 0 && entry.tags_active {
                let timer = stats.phases.start(Phase::TagManager);
                self.deactivate_tags(pid, stats);
                timer.finish();
            }
        }
        self.maybe_retire(pid, stats);
    }

    /// A timed wait elapsed. Returns `true` when the thread absorbed a
    /// pending signal, in which case the caller must run the relay rule
    /// to pass the baton onward (otherwise relay invariance could break).
    pub(crate) fn on_timeout(&mut self, pid: PredId, stats: &MonitorStats) -> bool {
        let entry = &mut self.entries[pid];
        if entry.waiting > 0 {
            // The normal case: we were still an unsignaled waiter. Any
            // `signaled` tokens belong to threads that really were woken.
            entry.waiting -= 1;
            if entry.waiting == 0 && entry.tags_active {
                let timer = stats.phases.start(Phase::TagManager);
                self.deactivate_tags(pid, stats);
                timer.finish();
            }
            self.maybe_retire(pid, stats);
            false
        } else {
            // All remaining slots of this entry are "signaled": one of
            // those notifications was aimed at us and is now orphaned.
            debug_assert!(entry.signaled > 0);
            entry.signaled -= 1;
            self.maybe_retire(pid, stats);
            true
        }
    }

    /// The relay signaling rule (§4.2): find one waiting thread whose
    /// predicate is true and signal it. Called whenever a thread exits
    /// the monitor or goes to wait.
    pub(crate) fn relay_signal(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        stats.counters.record_relay_call();
        let mode = self.config.signal_mode();
        // Change-driven: refresh the changed-expression bitmap once per
        // relay call; when the state is unmutated and every active
        // conjunction is known false, the whole search is skipped.
        if mode == SignalMode::ChangeDriven && self.refresh_changed_set(state, exprs, stats) {
            stats.counters.record_relay_skip();
            if self.config.validates_relay() {
                self.check_relay_invariance(state, exprs);
            }
            return None;
        }
        let mut first = None;
        // The paper signals exactly one thread; relay_width > 1 is the
        // documented extension that keeps signaling while distinct
        // signalable candidates remain.
        for _ in 0..self.config.relay_width_value() {
            let timer = stats.phases.start(Phase::RelaySignal);
            let found = match mode {
                SignalMode::Untagged => self.find_untagged(state, exprs, stats),
                SignalMode::Tagged => self.find_tagged(state, exprs, stats),
                SignalMode::ChangeDriven => self.find_change_driven(state, exprs, stats),
            };
            timer.finish();
            let Some(pid) = found else {
                // The search ran dry: every still-waiting conjunction was
                // either probed false or skipped as unchanged-since-false.
                self.all_false = true;
                break;
            };
            self.all_false = false;
            stats.counters.record_relay_hit();
            self.signal_entry(pid, stats);
            first.get_or_insert(pid);
        }
        if self.config.validates_relay() {
            self.check_relay_invariance(state, exprs);
        }
        first
    }

    /// Prepares the change-driven relay: diffs the expression snapshot
    /// when the state was mutated, or decides that the whole search can
    /// be skipped (returns `true`).
    ///
    /// Soundness of the skip: a conjunction can only flip false→true via
    /// a state mutation (predicates are pure functions of the state), a
    /// waiter only (re-)registers when its predicate just evaluated
    /// false, and `all_false` certifies that the previous search left no
    /// true-but-unsignaled waiter behind. With no mutation since, every
    /// active conjunction is still false and relay invariance (Def. 4)
    /// holds vacuously — `validate_relay` re-proves this on every call in
    /// the test suites.
    fn refresh_changed_set(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> bool {
        if !self.state_dirty {
            if self.all_false {
                return true;
            }
            // A width-limited relay may have left signalable waiters
            // behind; probe everything, reusing the cached values.
            self.probe_all = true;
            return false;
        }
        let timer = stats.phases.start(Phase::SnapshotDiff);
        self.epoch += 1;
        self.changed.clear();
        self.changed.resize(exprs.len(), false);
        if self.value_cache.len() < exprs.len() {
            self.value_cache.resize(exprs.len(), None);
            self.slot_epoch.resize(exprs.len(), 0);
        }
        for &expr in self.dep_refs.keys() {
            let idx = expr.index();
            stats.counters.record_expr_eval();
            let fresh = exprs.eval(expr, state);
            // "Unchanged" is only meaningful against the immediately
            // preceding diff; a slot with a gap is treated as changed.
            let contiguous = self.slot_epoch[idx] + 1 == self.epoch;
            if contiguous && self.value_cache[idx] == Some(fresh) {
                stats.counters.record_unchanged_expr();
            } else {
                self.value_cache[idx] = Some(fresh);
                self.changed[idx] = true;
            }
            self.slot_epoch[idx] = self.epoch;
        }
        timer.finish();
        self.state_dirty = false;
        // The changed-set prune is only sound against a baseline where
        // every active conjunction was known false. A previous relay
        // that stopped on a hit (relay-width exhausted) may have left
        // true-but-unsignaled waiters whose dependencies this diff sees
        // as unchanged — probe everything until a search runs dry again.
        self.probe_all = !self.all_false;
        false
    }

    /// Ground-truth check of relay invariance (Def. 4): immediately
    /// after a relay, if any waiting thread's predicate is true then
    /// some thread must be signaled (active). A violation means the tag
    /// indexes missed a signalable thread — the exact bug class the
    /// §4.3 machinery must not have.
    ///
    /// # Panics
    ///
    /// Panics on a violation; enabled by
    /// [`MonitorConfig::validate_relay`](crate::config::MonitorConfig::validate_relay).
    fn check_relay_invariance(&self, state: &S, exprs: &ExprTable<S>) {
        if self.entries.iter().any(|(_, e)| e.signaled > 0) {
            return; // an active thread exists; the invariance holds
        }
        for (pid, entry) in self.entries.iter() {
            if entry.waiting > 0 && entry.pred.eval(state, exprs) {
                panic!(
                    "relay invariance violated: predicate {} (entry {pid:?}, \
                     {} waiting) is true but the relay signaled no one",
                    entry.pred, entry.waiting
                );
            }
        }
    }

    /// AutoSynch-T: evaluate every active predicate until one is true.
    fn find_untagged(
        &self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        for &pid in &self.scan_list {
            let entry = &self.entries[pid];
            debug_assert!(entry.waiting > 0, "scan list holds only active entries");
            stats.counters.record_pred_eval();
            if entry.pred.eval(state, exprs) {
                return Some(pid);
            }
        }
        None
    }

    /// AutoSynch: probe the equivalence hash tables, then the threshold
    /// heaps (Fig. 4), then the `None` list.
    fn find_tagged(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        let ConditionManager {
            entries,
            eq_index,
            thresholds,
            none_list,
            ..
        } = self;

        // Each shared expression is evaluated at most once per relay.
        let mut values: Vec<Option<i64>> = vec![None; exprs.len()];
        let mut value_of = |id: ExprId| -> i64 {
            let slot = &mut values[id.index()];
            match *slot {
                Some(v) => v,
                None => {
                    stats.counters.record_expr_eval();
                    let v = exprs.eval(id, state);
                    *slot = Some(v);
                    v
                }
            }
        };

        // 1. Equivalence tags: O(1) hash probe per live expression.
        let eq_exprs: Vec<ExprId> = eq_index.exprs().collect();
        for expr in eq_exprs {
            let v = value_of(expr);
            for &(pid, conj) in eq_index.candidates(expr, v) {
                stats.counters.record_pred_eval();
                if entries[pid]
                    .pred
                    .eval_conjunction(conj as usize, state, exprs)
                {
                    return Some(pid);
                }
            }
        }

        // 2. Threshold tags: the Fig. 4 heap walk per live expression.
        let thr_exprs: Vec<ExprId> = thresholds.exprs().collect();
        for expr in thr_exprs {
            let v = value_of(expr);
            let mut check = |(pid, conj): TaggedConj| -> bool {
                stats.counters.record_pred_eval();
                entries[pid]
                    .pred
                    .eval_conjunction(conj as usize, state, exprs)
            };
            if let Some((pid, _)) = thresholds.search(expr, v, &mut check) {
                return Some(pid);
            }
        }

        // 3. None tags: exhaustive search.
        for &(pid, conj) in none_list.iter() {
            stats.counters.record_pred_eval();
            if entries[pid]
                .pred
                .eval_conjunction(conj as usize, state, exprs)
            {
                return Some(pid);
            }
        }
        None
    }

    /// Change-driven AutoSynch: the same eq/threshold/`None` probe order
    /// as [`ConditionManager::find_tagged`], but every candidate whose
    /// dependency set misses the changed-expression bitmap is skipped —
    /// its conjunction was false at the last relay and none of its
    /// inputs moved since. Expression values come from the snapshot
    /// populated by [`ConditionManager::refresh_changed_set`], so an
    /// expression is evaluated at most once per occupancy rather than
    /// once per relay.
    fn find_change_driven(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        let ConditionManager {
            entries,
            eq_index,
            thresholds,
            none_index,
            opaque_list,
            value_cache,
            slot_epoch,
            changed,
            probe_all,
            expr_scratch,
            ..
        } = self;
        let epoch = self.epoch;
        let probe_all = *probe_all;
        let changed: &[bool] = changed;
        // Values come from the diff snapshot. Every probe-relevant
        // expression has an active dependent, so the diff just refreshed
        // it; the fallback covers expressions registered since, which
        // are evaluated against the same (unmutated-since-diff) state
        // and stamped into the current epoch.
        let mut value_of = |id: ExprId| -> i64 {
            let idx = id.index();
            if idx >= value_cache.len() {
                value_cache.resize(idx + 1, None);
                slot_epoch.resize(idx + 1, 0);
            }
            match (slot_epoch[idx] == epoch, value_cache[idx]) {
                (true, Some(v)) => v,
                _ => {
                    stats.counters.record_expr_eval();
                    let v = exprs.eval(id, state);
                    value_cache[idx] = Some(v);
                    slot_epoch[idx] = epoch;
                    v
                }
            }
        };
        let relevant = |deps: &ConjDeps| probe_all || deps.intersects(changed);

        // 1. Equivalence tags: O(1) hash probe per live expression. The
        // probe only reads the index, so no per-relay collect is needed.
        for expr in eq_index.exprs() {
            let v = value_of(expr);
            for &(pid, conj) in eq_index.candidates(expr, v) {
                let entry = &entries[pid];
                if !relevant(&entry.pred.conj_deps()[conj as usize]) {
                    stats.counters.record_probe_skipped();
                    continue;
                }
                stats.counters.record_pred_eval();
                if entry.pred.eval_conjunction(conj as usize, state, exprs) {
                    return Some(pid);
                }
            }
        }

        // 2. Threshold tags: the Fig. 4 heap walk per live expression.
        // The walk mutates the heaps, so the expression list is staged
        // through a reusable scratch buffer.
        thresholds.collect_exprs(expr_scratch);
        for &expr in expr_scratch.iter() {
            let v = value_of(expr);
            let mut check = |(pid, conj): TaggedConj| -> bool {
                let entry = &entries[pid];
                if !relevant(&entry.pred.conj_deps()[conj as usize]) {
                    stats.counters.record_probe_skipped();
                    return false;
                }
                stats.counters.record_pred_eval();
                entry.pred.eval_conjunction(conj as usize, state, exprs)
            };
            if let Some((pid, _)) = thresholds.search(expr, v, &mut check) {
                return Some(pid);
            }
        }

        // 3. None tags with opaque dependencies: always probed.
        for &(pid, conj) in opaque_list.iter() {
            stats.counters.record_pred_eval();
            if entries[pid]
                .pred
                .eval_conjunction(conj as usize, state, exprs)
            {
                return Some(pid);
            }
        }

        // 4. Transparent None tags via the per-expression candidate map.
        // Each candidate is listed under every dependency; probing it
        // only under its first (changed) dependency visits it once.
        if probe_all {
            for (&expr, candidates) in none_index.iter() {
                for &(pid, conj) in candidates {
                    let entry = &entries[pid];
                    let deps = &entry.pred.conj_deps()[conj as usize];
                    if deps.exprs().first() != Some(&expr) {
                        continue;
                    }
                    stats.counters.record_pred_eval();
                    if entry.pred.eval_conjunction(conj as usize, state, exprs) {
                        return Some(pid);
                    }
                }
            }
        } else {
            for (idx, &was_changed) in changed.iter().enumerate() {
                if !was_changed {
                    continue;
                }
                let expr = ExprId::from_raw(idx as u32);
                let Some(candidates) = none_index.get(&expr) else {
                    continue;
                };
                for &(pid, conj) in candidates {
                    let entry = &entries[pid];
                    let deps = &entry.pred.conj_deps()[conj as usize];
                    // Probed under its first changed dependency only —
                    // this is dedup, not a skip.
                    if deps.first_changed(changed) != Some(expr) {
                        continue;
                    }
                    stats.counters.record_pred_eval();
                    if entry.pred.eval_conjunction(conj as usize, state, exprs) {
                        return Some(pid);
                    }
                }
            }
        }
        None
    }

    /// Moves one waiter of `pid` from waiting to signaled and notifies the
    /// entry's condition variable.
    fn signal_entry(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        debug_assert!(entry.waiting > 0, "signaled an entry with no waiters");
        entry.waiting -= 1;
        entry.signaled += 1;
        stats.counters.record_signal();
        let cv = Arc::clone(&entry.condvar);
        if entry.waiting == 0 {
            let timer = stats.phases.start(Phase::TagManager);
            self.deactivate_tags(pid, stats);
            timer.finish();
        }
        cv.notify_one();
    }

    fn activate_tags(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        debug_assert!(!entry.tags_active);
        entry.tags_active = true;
        match self.config.signal_mode() {
            SignalMode::Untagged => {
                stats.counters.record_tag_insert();
                self.scan_list.push(pid);
            }
            SignalMode::Tagged => {
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let conj = conj as u32;
                    stats.counters.record_tag_insert();
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            self.eq_index.insert(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            self.thresholds.insert(expr, key, op, (pid, conj));
                        }
                        Tag::None => self.none_list.push((pid, conj)),
                    }
                }
            }
            SignalMode::ChangeDriven => {
                let deps_per_conj = entry.pred.conj_deps();
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let deps = &deps_per_conj[conj];
                    let conj = conj as u32;
                    stats.counters.record_tag_insert();
                    for &expr in deps.exprs() {
                        *self.dep_refs.entry(expr).or_insert(0) += 1;
                    }
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            self.eq_index.insert(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            self.thresholds.insert(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            self.cd_none_count += 1;
                            if deps.is_opaque() || deps.exprs().is_empty() {
                                self.opaque_list.push((pid, conj));
                            } else {
                                for &expr in deps.exprs() {
                                    self.none_index.entry(expr).or_default().push((pid, conj));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn deactivate_tags(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        debug_assert!(entry.tags_active);
        entry.tags_active = false;
        match self.config.signal_mode() {
            SignalMode::Untagged => {
                stats.counters.record_tag_remove();
                if let Some(pos) = self.scan_list.iter().position(|&p| p == pid) {
                    self.scan_list.swap_remove(pos);
                }
            }
            SignalMode::Tagged => {
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let conj = conj as u32;
                    stats.counters.record_tag_remove();
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            self.eq_index.remove(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            self.thresholds.remove(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            if let Some(pos) = self.none_list.iter().position(|&e| e == (pid, conj))
                            {
                                self.none_list.swap_remove(pos);
                            }
                        }
                    }
                }
            }
            SignalMode::ChangeDriven => {
                let deps_per_conj = entry.pred.conj_deps();
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let deps = &deps_per_conj[conj];
                    let conj = conj as u32;
                    stats.counters.record_tag_remove();
                    for &expr in deps.exprs() {
                        if let Some(count) = self.dep_refs.get_mut(&expr) {
                            *count -= 1;
                            if *count == 0 {
                                self.dep_refs.remove(&expr);
                            }
                        }
                    }
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            self.eq_index.remove(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            self.thresholds.remove(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            self.cd_none_count -= 1;
                            if deps.is_opaque() || deps.exprs().is_empty() {
                                if let Some(pos) =
                                    self.opaque_list.iter().position(|&e| e == (pid, conj))
                                {
                                    self.opaque_list.swap_remove(pos);
                                }
                            } else {
                                for &expr in deps.exprs() {
                                    if let Some(candidates) = self.none_index.get_mut(&expr) {
                                        if let Some(pos) =
                                            candidates.iter().position(|&e| e == (pid, conj))
                                        {
                                            candidates.swap_remove(pos);
                                        }
                                        if candidates.is_empty() {
                                            self.none_index.remove(&expr);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Retires an entry with no threads to the inactive LRU and evicts
    /// beyond the configured cap (§5.2).
    fn maybe_retire(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &self.entries[pid];
        if entry.waiting > 0 || entry.signaled > 0 || entry.persistent || entry.in_inactive {
            return;
        }
        debug_assert!(!entry.tags_active);
        self.entries[pid].in_inactive = true;
        self.inactive.push_back(pid);
        while self.inactive.len() > self.config.inactive_capacity() {
            let victim = self.inactive.pop_front().expect("inactive list non-empty");
            let timer = stats.phases.start(Phase::TagManager);
            let removed = self.entries.remove(victim);
            if let Some(key) = removed.pred.key() {
                if self.table.get(key) == Some(&victim) {
                    self.table.remove(key);
                }
            }
            timer.finish();
        }
    }

    /// Removes `pid` from the inactive LRU when it is being reused.
    fn unlink_inactive(&mut self, pid: PredId) {
        if self.entries.get(pid).is_some_and(|entry| entry.in_inactive) {
            self.entries[pid].in_inactive = false;
            if let Some(pos) = self.inactive.iter().position(|&p| p == pid) {
                self.inactive.remove(pos);
            }
        }
    }

    // --- introspection for tests and diagnostics -------------------------

    /// Number of live predicate entries (active + inactive).
    pub(crate) fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of entries currently parked on the inactive LRU.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn inactive_count(&self) -> usize {
        self.inactive.len()
    }

    /// Total waiting (unsignaled) threads across entries.
    pub(crate) fn waiting_count(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.waiting as usize).sum()
    }

    /// Total signaled-but-not-resumed threads across entries.
    pub(crate) fn signaled_count(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.signaled as usize).sum()
    }

    /// Live tags across all indexes (tagged mode) or the scan list
    /// (untagged mode).
    pub(crate) fn live_tag_count(&self) -> usize {
        match self.config.signal_mode() {
            SignalMode::Untagged => self.scan_list.len(),
            SignalMode::Tagged => {
                self.eq_index.len() + self.thresholds.len() + self.none_list.len()
            }
            SignalMode::ChangeDriven => {
                self.eq_index.len() + self.thresholds.len() + self.cd_none_count
            }
        }
    }
}

impl<S> std::fmt::Debug for ConditionManager<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionManager")
            .field("entries", &self.entries.len())
            .field("waiting", &self.waiting_count())
            .field("signaled", &self.signaled_count())
            .field("inactive", &self.inactive.len())
            .field("tags", &self.live_tag_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosynch_predicate::expr::ExprHandle;
    use autosynch_predicate::predicate::IntoPredicate;

    struct St {
        count: i64,
    }

    fn setup() -> (
        ExprTable<St>,
        ExprHandle<St>,
        ConditionManager<St>,
        Arc<MonitorStats>,
    ) {
        let mut exprs = ExprTable::new();
        let count = exprs.register("count", |s: &St| s.count);
        let mgr = ConditionManager::new(MonitorConfig::default());
        (exprs, count, mgr, MonitorStats::new(false))
    }

    #[test]
    fn dedupe_maps_equivalent_predicates_to_one_entry() {
        let (_, count, mut mgr, stats) = setup();
        let a = mgr.register_waiter(count.ge(48).into_predicate(), &stats);
        let b = mgr.register_waiter(count.ge(48).into_predicate(), &stats);
        assert_eq!(a, b);
        assert_eq!(mgr.entry_count(), 1);
        assert_eq!(mgr.waiting_count(), 2);
        let c = mgr.register_waiter(count.ge(32).into_predicate(), &stats);
        assert_ne!(a, c);
        assert_eq!(mgr.entry_count(), 2);
    }

    #[test]
    fn keyless_customs_get_distinct_entries() {
        let (_, _, mut mgr, stats) = setup();
        let a = mgr.register_waiter(Predicate::custom("c", |s: &St| s.count > 0), &stats);
        let b = mgr.register_waiter(Predicate::custom("c", |s: &St| s.count > 0), &stats);
        assert_ne!(a, b);
    }

    #[test]
    fn relay_finds_true_threshold_predicate() {
        let (exprs, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        // Not yet true.
        assert_eq!(mgr.relay_signal(&St { count: 9 }, &exprs, &stats), None);
        // Now true: exactly this entry is signaled.
        assert_eq!(
            mgr.relay_signal(&St { count: 10 }, &exprs, &stats),
            Some(pid)
        );
        assert_eq!(mgr.waiting_count(), 0);
        assert_eq!(mgr.signaled_count(), 1);
        // Tags are gone: a second relay finds nothing even though the
        // predicate is still true (the thread has already been signaled).
        assert_eq!(mgr.relay_signal(&St { count: 10 }, &exprs, &stats), None);
    }

    #[test]
    fn relay_prefers_equivalence_over_threshold_over_none() {
        let (exprs, count, mut mgr, stats) = setup();
        let none = mgr.register_waiter(count.ne(0).into_predicate(), &stats);
        let thr = mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        let eq = mgr.register_waiter(count.eq(5).into_predicate(), &stats);
        let _ = none;
        let _ = thr;
        // All three true at count=5; the equivalence-tagged entry wins.
        assert_eq!(mgr.relay_signal(&St { count: 5 }, &exprs, &stats), Some(eq));
    }

    #[test]
    fn validated_relay_accepts_a_correct_search() {
        let config = MonitorConfig::new().validate_relay(true);
        let mut exprs = ExprTable::new();
        let count = exprs.register("count", |s: &St| s.count);
        let mut mgr = ConditionManager::new(config);
        let stats = MonitorStats::new(false);
        // Mixed tag classes, all probed through their indexes; the
        // post-relay exhaustive check must agree with every outcome.
        let _eq = mgr.register_waiter(count.eq(5).into_predicate(), &stats);
        let _thr = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        let _none = mgr.register_waiter(count.ne(0).into_predicate(), &stats);
        assert_eq!(mgr.relay_signal(&St { count: 0 }, &exprs, &stats), None);
        assert!(mgr.relay_signal(&St { count: 5 }, &exprs, &stats).is_some());
        assert!(mgr
            .relay_signal(&St { count: 12 }, &exprs, &stats)
            .is_some());
        assert!(mgr.relay_signal(&St { count: 3 }, &exprs, &stats).is_some());
        assert_eq!(mgr.waiting_count(), 0);
    }

    #[test]
    #[should_panic(expected = "relay invariance violated")]
    fn validated_relay_catches_a_missed_waiter() {
        // A non-deterministic predicate breaks the system's assumption
        // that predicates are pure functions of the state: it reads
        // false when the relay search evaluates it and true when the
        // validator re-checks. The validator must flag the miss.
        use std::sync::atomic::{AtomicBool, Ordering};
        let config = MonitorConfig::new().validate_relay(true);
        let exprs: ExprTable<St> = ExprTable::new();
        let mut mgr = ConditionManager::new(config);
        let stats = MonitorStats::new(false);
        let flip = AtomicBool::new(false);
        let pid = mgr.register_waiter(
            Predicate::custom("flip-flop", move |_: &St| {
                flip.fetch_xor(true, Ordering::Relaxed)
            }),
            &stats,
        );
        let _ = pid;
        let _ = mgr.relay_signal(&St { count: 0 }, &exprs, &stats);
    }

    #[test]
    fn relay_falls_back_to_none_tags() {
        let (exprs, _, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(Predicate::custom("odd", |s: &St| s.count % 2 == 1), &stats);
        assert_eq!(mgr.relay_signal(&St { count: 2 }, &exprs, &stats), None);
        assert_eq!(
            mgr.relay_signal(&St { count: 3 }, &exprs, &stats),
            Some(pid)
        );
    }

    #[test]
    fn untagged_mode_scans_linearly() {
        let (exprs, count, _, _) = setup();
        let mut mgr = ConditionManager::new(MonitorConfig::autosynch_t());
        let stats = MonitorStats::new(false);
        let before = stats.counters.snapshot();
        let _a = mgr.register_waiter(count.eq(100).into_predicate(), &stats);
        let b = mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        let hit = mgr.relay_signal(&St { count: 1 }, &exprs, &stats);
        assert_eq!(hit, Some(b));
        // The scan evaluated entry `a`'s whole predicate too.
        let after = stats.counters.snapshot().since(&before);
        assert!(after.pred_evals >= 2);
        assert_eq!(after.expr_evals, 0, "untagged mode does no expr caching");
    }

    #[test]
    fn futile_wakeup_reactivates_tags() {
        let (exprs, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        assert_eq!(mgr.live_tag_count(), 1);
        mgr.relay_signal(&St { count: 10 }, &exprs, &stats);
        assert_eq!(mgr.live_tag_count(), 0, "no unsignaled waiters left");
        // The woken thread finds the predicate false again (barging).
        mgr.mark_futile(pid, &stats);
        assert_eq!(mgr.live_tag_count(), 1);
        assert_eq!(mgr.waiting_count(), 1);
        assert_eq!(mgr.signaled_count(), 0);
    }

    #[test]
    fn spurious_futile_wakeup_is_a_noop() {
        // A std-backed condvar may wake a thread that was never
        // signaled; with no token outstanding the entry must not move.
        let (_, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        assert_eq!((mgr.waiting_count(), mgr.signaled_count()), (1, 0));
        mgr.mark_futile(pid, &stats);
        assert_eq!((mgr.waiting_count(), mgr.signaled_count()), (1, 0));
        assert_eq!(mgr.live_tag_count(), 1, "tags stay live");
    }

    #[test]
    fn spurious_wakeup_with_true_predicate_consumes_from_waiting() {
        // A spuriously woken thread that finds its predicate true
        // proceeds; its unit leaves `waiting` and the tags retire.
        let (_, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        mgr.consume_signal(pid, &stats);
        assert_eq!((mgr.waiting_count(), mgr.signaled_count()), (0, 0));
        assert_eq!(mgr.live_tag_count(), 0);
        assert_eq!(mgr.inactive_count(), 1);
    }

    #[test]
    fn absorbed_signal_then_true_peer_stays_consistent() {
        // W1 and W2 wait on one entry; one signal is sent; a spurious
        // wakeup absorbs it futilely; the true-predicate peer must then
        // consume from `waiting` without underflow.
        let (exprs, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        mgr.relay_signal(&St { count: 1 }, &exprs, &stats);
        assert_eq!((mgr.waiting_count(), mgr.signaled_count()), (1, 1));
        mgr.mark_futile(pid, &stats); // absorbs the token
        assert_eq!((mgr.waiting_count(), mgr.signaled_count()), (2, 0));
        mgr.consume_signal(pid, &stats); // peer proceeds anyway
        assert_eq!((mgr.waiting_count(), mgr.signaled_count()), (1, 0));
        assert_eq!(mgr.live_tag_count(), 1);
    }

    #[test]
    fn consume_signal_retires_entry_to_inactive() {
        let (exprs, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        mgr.relay_signal(&St { count: 10 }, &exprs, &stats);
        mgr.consume_signal(pid, &stats);
        assert_eq!(mgr.waiting_count(), 0);
        assert_eq!(mgr.signaled_count(), 0);
        assert_eq!(mgr.inactive_count(), 1);
        assert_eq!(mgr.entry_count(), 1, "inactive entries are kept for reuse");
        // Reuse removes it from the inactive list.
        let again = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        assert_eq!(again, pid);
        assert_eq!(mgr.inactive_count(), 0);
    }

    #[test]
    fn inactive_list_evicts_beyond_cap() {
        let (exprs, count, _, _) = setup();
        let mut mgr = ConditionManager::new(MonitorConfig::new().inactive_cap(2));
        let stats = MonitorStats::new(false);
        for k in 0..5 {
            let pid = mgr.register_waiter(count.ge(100 + k).into_predicate(), &stats);
            mgr.relay_signal(&St { count: 200 }, &exprs, &stats);
            mgr.consume_signal(pid, &stats);
        }
        assert_eq!(mgr.inactive_count(), 2);
        assert_eq!(mgr.entry_count(), 2);
    }

    #[test]
    fn persistent_predicates_survive_eviction() {
        let (exprs, count, _, _) = setup();
        let mut mgr = ConditionManager::new(MonitorConfig::new().inactive_cap(0));
        let stats = MonitorStats::new(false);
        let shared = mgr.register_persistent(count.gt(0).into_predicate());
        // A complex predicate retires and is evicted immediately (cap 0).
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        mgr.relay_signal(&St { count: 10 }, &exprs, &stats);
        mgr.consume_signal(pid, &stats);
        assert_eq!(mgr.entry_count(), 1, "only the persistent entry remains");
        // The persistent one still interns to the same id.
        let w = mgr.register_waiter(count.gt(0).into_predicate(), &stats);
        assert_eq!(w, shared);
    }

    #[test]
    fn timeout_of_unsignaled_waiter_deactivates() {
        let (_, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        let consumed = mgr.on_timeout(pid, &stats);
        assert!(!consumed);
        assert_eq!(mgr.waiting_count(), 0);
        assert_eq!(mgr.live_tag_count(), 0);
        assert_eq!(mgr.inactive_count(), 1);
    }

    #[test]
    fn timeout_after_signal_consumes_and_requests_relay() {
        let (exprs, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        mgr.relay_signal(&St { count: 10 }, &exprs, &stats);
        let consumed = mgr.on_timeout(pid, &stats);
        assert!(consumed, "the orphaned signal must be passed onward");
        assert_eq!(mgr.signaled_count(), 0);
    }

    #[test]
    fn multiple_waiters_one_entry_signal_one_at_a_time() {
        let (exprs, count, mut mgr, stats) = setup();
        let pid = mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        let pid2 = mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        assert_eq!(pid, pid2);
        assert_eq!(mgr.waiting_count(), 2);
        assert_eq!(
            mgr.relay_signal(&St { count: 1 }, &exprs, &stats),
            Some(pid)
        );
        assert_eq!(mgr.waiting_count(), 1);
        assert_eq!(mgr.live_tag_count(), 1, "tags stay while waiters remain");
        assert_eq!(
            mgr.relay_signal(&St { count: 1 }, &exprs, &stats),
            Some(pid)
        );
        assert_eq!(mgr.waiting_count(), 0);
        assert_eq!(mgr.live_tag_count(), 0);
    }

    // --- change-driven relay ---------------------------------------------
    //
    // Contract note: these tests drive the manager directly, so they must
    // call `note_mutation` whenever they hand `relay_signal` a state that
    // differs from the previous call's — exactly what `Monitor::state_mut`
    // does in the integrated runtime.

    fn cd_setup() -> (
        ExprTable<St>,
        ExprHandle<St>,
        ConditionManager<St>,
        Arc<MonitorStats>,
    ) {
        let mut exprs = ExprTable::new();
        let count = exprs.register("count", |s: &St| s.count);
        let mgr = ConditionManager::new(MonitorConfig::autosynch_cd().validate_relay(true));
        (exprs, count, mgr, MonitorStats::new(false))
    }

    #[test]
    fn change_driven_finds_true_threshold_predicate() {
        let (exprs, count, mut mgr, stats) = cd_setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        assert_eq!(mgr.relay_signal(&St { count: 9 }, &exprs, &stats), None);
        mgr.note_mutation();
        assert_eq!(
            mgr.relay_signal(&St { count: 10 }, &exprs, &stats),
            Some(pid)
        );
    }

    #[test]
    fn change_driven_skips_relay_on_unchanged_state() {
        let (exprs, count, mut mgr, stats) = cd_setup();
        mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        let state = St { count: 3 };
        assert_eq!(mgr.relay_signal(&state, &exprs, &stats), None);
        let before = stats.counters.snapshot();
        // No mutation announced: the second and third relays are skipped
        // without evaluating anything.
        assert_eq!(mgr.relay_signal(&state, &exprs, &stats), None);
        assert_eq!(mgr.relay_signal(&state, &exprs, &stats), None);
        let diff = stats.counters.snapshot().since(&before);
        assert_eq!(diff.relay_skips, 2);
        assert_eq!(diff.expr_evals, 0);
        assert_eq!(diff.pred_evals, 0);
    }

    #[test]
    fn change_driven_skips_probes_for_unchanged_dependencies() {
        let mut exprs = ExprTable::new();
        let a = exprs.register("a", |s: &St2| s.a);
        let b = exprs.register("b", |s: &St2| s.b);
        let mut mgr: ConditionManager<St2> =
            ConditionManager::new(MonitorConfig::autosynch_cd().validate_relay(true));
        let stats = MonitorStats::new(false);
        // Waiter 1 depends on `a` alone; waiter 2 depends on `b` alone,
        // with a tag (`b <= 100`) that stays true so the heap walk always
        // reaches its candidate — the dependency filter must reject it.
        mgr.register_waiter(a.ge(10).into_predicate(), &stats);
        mgr.register_waiter(b.le(100).and(b.ge(10)).into_predicate(), &stats);
        assert_eq!(mgr.relay_signal(&St2 { a: 0, b: 0 }, &exprs, &stats), None);
        mgr.note_mutation();
        let before = stats.counters.snapshot();
        // `a` changes but stays below threshold; `b` is untouched.
        assert_eq!(mgr.relay_signal(&St2 { a: 5, b: 0 }, &exprs, &stats), None);
        let diff = stats.counters.snapshot().since(&before);
        assert_eq!(diff.expr_evals, 2, "both live exprs diffed once");
        assert_eq!(diff.unchanged_exprs, 1, "b matched the snapshot");
        assert_eq!(
            diff.pred_evals, 0,
            "a's tag is false; b's candidate skipped"
        );
        assert_eq!(diff.probes_skipped, 1, "b's candidate skipped by deps");
    }

    struct St2 {
        a: i64,
        b: i64,
    }

    #[test]
    fn change_driven_none_tags_probe_by_dependency() {
        let (exprs, count, mut mgr, stats) = cd_setup();
        // `count != 0` tags as None but depends only on `count`.
        let pid = mgr.register_waiter(count.ne(0).into_predicate(), &stats);
        assert_eq!(mgr.relay_signal(&St { count: 0 }, &exprs, &stats), None);
        mgr.note_mutation();
        assert_eq!(
            mgr.relay_signal(&St { count: 7 }, &exprs, &stats),
            Some(pid)
        );
    }

    #[test]
    fn change_driven_opaque_predicates_always_probe() {
        let (exprs, _, mut mgr, stats) = cd_setup();
        let pid = mgr.register_waiter(Predicate::custom("odd", |s: &St| s.count % 2 == 1), &stats);
        assert_eq!(mgr.relay_signal(&St { count: 2 }, &exprs, &stats), None);
        mgr.note_mutation();
        assert_eq!(
            mgr.relay_signal(&St { count: 3 }, &exprs, &stats),
            Some(pid)
        );
        assert_eq!(mgr.live_tag_count(), 0);
    }

    #[test]
    fn change_driven_probe_all_catches_leftover_true_waiters() {
        // Two waiters become true on one mutation; width 1 signals only
        // the first. The follow-up relay runs on unmutated state and must
        // still find the second (the probe-all path).
        let (exprs, count, mut mgr, stats) = cd_setup();
        let first = mgr.register_waiter(count.ge(1).into_predicate(), &stats);
        let second = mgr.register_waiter(count.ge(2).into_predicate(), &stats);
        mgr.note_mutation();
        let state = St { count: 5 };
        let hit1 = mgr.relay_signal(&state, &exprs, &stats);
        let hit2 = mgr.relay_signal(&state, &exprs, &stats);
        let mut signaled = [hit1.unwrap(), hit2.unwrap()];
        signaled.sort();
        let mut expected = [first, second];
        expected.sort();
        assert_eq!(signaled, expected);
        // Both signaled: a third relay finds nothing and re-arms the skip.
        assert_eq!(mgr.relay_signal(&state, &exprs, &stats), None);
        let before = stats.counters.snapshot();
        assert_eq!(mgr.relay_signal(&state, &exprs, &stats), None);
        assert_eq!(stats.counters.snapshot().since(&before).relay_skips, 1);
    }

    #[test]
    fn change_driven_equivalence_probe_uses_snapshot_values() {
        let (exprs, count, mut mgr, stats) = cd_setup();
        let pid = mgr.register_waiter(count.eq(5).into_predicate(), &stats);
        assert_eq!(mgr.relay_signal(&St { count: 1 }, &exprs, &stats), None);
        mgr.note_mutation();
        assert_eq!(
            mgr.relay_signal(&St { count: 5 }, &exprs, &stats),
            Some(pid)
        );
        assert_eq!(mgr.waiting_count(), 0);
    }

    #[test]
    fn change_driven_cleans_up_indexes_on_deactivation() {
        let (exprs, count, mut mgr, stats) = cd_setup();
        let pid = mgr.register_waiter(count.ne(0).into_predicate(), &stats);
        assert_eq!(mgr.live_tag_count(), 1);
        mgr.note_mutation();
        assert_eq!(
            mgr.relay_signal(&St { count: 2 }, &exprs, &stats),
            Some(pid)
        );
        mgr.consume_signal(pid, &stats);
        assert_eq!(mgr.live_tag_count(), 0);
        assert_eq!(mgr.waiting_count(), 0);
        assert_eq!(mgr.signaled_count(), 0);
    }

    #[test]
    fn change_driven_futile_wakeup_reactivates() {
        let (exprs, count, mut mgr, stats) = cd_setup();
        let pid = mgr.register_waiter(count.ge(10).into_predicate(), &stats);
        mgr.note_mutation();
        mgr.relay_signal(&St { count: 10 }, &exprs, &stats);
        // Barged: the predicate is false again when the thread wakes.
        mgr.note_mutation();
        mgr.mark_futile(pid, &stats);
        assert_eq!(mgr.live_tag_count(), 1);
        mgr.note_mutation();
        assert_eq!(
            mgr.relay_signal(&St { count: 12 }, &exprs, &stats),
            Some(pid)
        );
    }

    #[test]
    fn expr_is_evaluated_once_per_relay() {
        let (exprs, count, mut mgr, stats) = setup();
        // Two equivalence tags and a threshold tag on the same expr.
        mgr.register_waiter(count.eq(3).into_predicate(), &stats);
        mgr.register_waiter(count.eq(4).into_predicate(), &stats);
        mgr.register_waiter(count.ge(100).into_predicate(), &stats);
        let before = stats.counters.snapshot();
        mgr.relay_signal(&St { count: 0 }, &exprs, &stats);
        let diff = stats.counters.snapshot().since(&before);
        assert_eq!(diff.expr_evals, 1, "value cache collapses expr evals");
    }
}
