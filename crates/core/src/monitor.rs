//! The automatic-signal monitor: `enter` + `waituntil` with relay
//! signaling.
//!
//! A [`Monitor<S>`] plays the role of the paper's `AutoSynch class`: every
//! [`Monitor::enter`] section is mutually exclusive, and inside it a
//! thread may block on [`MonitorGuard::wait`] — the `waituntil(P)`
//! statement. There are **no condition variables and no signal calls in
//! user code**; the condition manager signals exactly one appropriate
//! thread whenever the monitor is exited or a thread goes to wait (the
//! relay signaling rule, §4.2).
//!
//! Mutual exclusion itself is two-lane. A packed per-monitor word
//! (`word::MonitorWord`) is checked before the mutex: when the monitor is fully quiescent (no
//! occupant, no slow-lane presence — and presence covers every blocked
//! waiter), an entry takes the **elided lane** with one CAS and releases
//! with one atomic AND, never touching the mutex, the relay or the
//! snapshot ring; quiescence proves all three had nothing to do. Any
//! contention falls through to the mutex, and contended [`Monitor::with`]
//! callers go one step further: they publish their whole occupancy into
//! a flat-combining slab and let the current holder run it at exit,
//! folding a batch of occupancies into one lock handoff and one relay
//! pass. `MonitorConfig::fast_path(false)` restores the mutex-only
//! behaviour.
//!
//! Globalization (§4.1) falls out of the API: predicates are built from
//! registered shared expressions compared against plain `i64` values, and
//! those values are snapshots of the caller's locals taken at
//! construction time.
//!
//! # The v2 API: compile once, wait many
//!
//! [`Monitor::compile`] runs the whole predicate analysis (DNF, tags,
//! dependency sets, structural key, shard route) exactly once and
//! returns a reusable [`Cond`] handle; [`MonitorGuard::wait`] on that
//! handle is allocation- and hash-free. [`Tracked`](crate::tracked)
//! state cells paired with [`Monitor::enter_tracked`] make every write
//! name the touched shared expressions automatically, so the precise
//! change-driven diffs never depend on caller discipline.
//!
//! # Examples
//!
//! The parameterized bounded buffer of Fig. 1, whose explicit-signal
//! version needs `signalAll`:
//!
//! ```
//! use std::sync::Arc;
//! use autosynch::tracked::{Tracked, TrackedCell, TrackedState};
//! use autosynch::Monitor;
//!
//! struct Buffer { items: Tracked<Vec<u64>>, cap: usize }
//! impl TrackedState for Buffer {
//!     fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
//!         f(&mut self.items);
//!     }
//! }
//!
//! let monitor = Arc::new(Monitor::new(Buffer { items: Tracked::new(Vec::new()), cap: 8 }));
//! let count = monitor.register_expr("count", |b| b.items.len() as i64);
//! let free = monitor.register_expr("free", |b| (b.cap - b.items.len()) as i64);
//! monitor.bind(|b| &mut b.items, &[count, free]);
//!
//! // Producer: waituntil(count + n <= cap), i.e. cap - count >= n.
//! let n = 3; // a "local variable"; its value globalizes into the condition
//! let has_room = monitor.compile(free.ge(n)); // analyzed exactly once
//! monitor.enter_tracked(|g| {
//!     g.wait(&has_room);
//!     for i in 0..n {
//!         g.state_mut().items.push(i as u64); // write names `count`/`free`
//!     }
//! });
//! assert_eq!(monitor.with_tracked(|b| b.items.len()), 3);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use autosynch_metrics::phase::Phase;
use autosynch_predicate::cond::Cond;
use autosynch_predicate::expr::{ExprHandle, ExprId, ExprTable};
use autosynch_predicate::predicate::{IntoPredicate, Predicate};
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use crate::asynch::WakerSlot;
use crate::config::{MonitorConfig, SignalMode};
use crate::eq_index::PredId;
use crate::fc::{FcOutcome, FcSlab};
use crate::manager::{ConditionManager, SnapshotRing};
use crate::parking::{snapshot_verdict, ParkOutcome, ParkSlot, ParkingLot, Verdict};
use crate::stats::{MonitorStats, StatsSnapshot};
use crate::telemetry;
use crate::tracked::{MutationSink, TrackedState};
use crate::wake::{BucketKey, RoutedWake, SweepToken, WakeLot, WakeTicket};
use crate::word::MonitorWord;

mod thread_id {
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }

    /// A small, process-unique id for the current thread.
    pub fn current() -> u64 {
        ID.with(|id| *id)
    }
}

/// Named diagnostic counts of a monitor's condition manager, read with
/// [`Monitor::counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerCounts {
    /// Live predicate-table entries (active + inactive).
    pub entries: usize,
    /// Blocked, unsignaled waiters across all entries.
    pub waiting: usize,
    /// Signaled-but-not-yet-resumed threads (the paper's *active* set).
    pub signaled: usize,
    /// Live tags across the tag indexes (or the untagged scan list).
    pub live_tags: usize,
    /// Compiled-condition slots pinned in the monitor's `CondTable`.
    pub compiled: usize,
    /// Cumulative slot buckets skipped by the threshold ladder —
    /// publishes whose value crossed none of the bucket's rungs
    /// (routed mode only; `0` elsewhere).
    pub ladder_skips: u64,
    /// Cumulative token forwards that resumed a bucket sweep from a
    /// saved cursor instead of rescanning from the FIFO head.
    pub cursor_resumes: u64,
    /// Cumulative transient admissions that hit the bounded LRU and
    /// graduated to (or stayed in) a swept per-predicate bucket.
    pub transient_cache_hits: u64,
    /// Cumulative monitor entries that took the elided (CAS) fast lane,
    /// skipping the mutex, the relay and the snapshot publish.
    pub fast_path_enters: u64,
    /// Cumulative published occupancies a combining exit adopted from
    /// the flat-combining slab.
    pub combined_exits: u64,
}

/// The monomorphized cell-drain hook installed by
/// [`Monitor::enter_tracked`]: a plain function pointer, so the guard
/// stays object-free and `Copy`-cheap for non-tracked entries.
type DrainFn<S> = fn(&mut S, &mut MutationSink);

fn drain_cells<S: TrackedState>(state: &mut S, sink: &mut MutationSink) {
    state.for_each_cell(&mut |cell| cell.drain_touched(sink));
}

/// A published occupancy in the flat-combining slab: the whole body of a
/// contended [`Monitor::with`]/[`Monitor::with_tracked`] call, boxed and
/// type-erased. The `*mut ()` is really `*mut Inner<S>` — erased so the
/// slab field on `Monitor<S>` does not force `S: 'static`. The combiner
/// runs the op under the monitor lock, which re-establishes the type.
type FcOp = Box<dyn FnOnce(*mut ()) + Send>;

/// Moves a raw pointer across the combiner boundary. The publisher
/// blocks until its op is consumed or withdrawn, so the pointee (a stack
/// slot for the closure result) strictly outlives every dereference.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}

struct Inner<S> {
    state: S,
    mgr: ConditionManager<S>,
    dirty: bool,
    // This occupancy consumed a relay signal and owes a relay on exit
    // even if it never mutates: the signal is the baton that keeps the
    // relay chain (§4.2) alive, and absorbing it without passing it on
    // would strand other waiters whose predicates are already true.
    signaled: bool,
    // A tracked occupancy touched `state_mut` and the dirty cells have
    // not yet been drained into the condition manager; the guard
    // flushes right before every relay.
    tracked_pending: bool,
    // Reusable touched-expression accumulator for tracked flushes.
    sink: MutationSink,
}

/// An automatic-signal monitor protecting shared state `S`.
///
/// See the [module documentation](self) for an example. Construction and
/// shared-expression registration normally happen before the monitor is
/// shared between threads; registration afterwards is allowed but
/// briefly contends with running relays.
pub struct Monitor<S> {
    inner: Mutex<Inner<S>>,
    exprs: RwLock<ExprTable<S>>,
    stats: Arc<MonitorStats>,
    config: MonitorConfig,
    owner: AtomicU64,
    /// The packed occupancy word gating the elided (CAS) enter/exit
    /// lane: `[fast-epoch:32][presence:31][occupied:1]`. Presence counts
    /// every thread inside the slow-lane protocol — including blocked
    /// waiters — so `presence == 0` certifies that no relay can be owed
    /// and no waiter can be starved by skipping the mutex.
    word: MonitorWord,
    /// The flat-combining publication slab: contended `with` callers
    /// park their whole occupancy here and the current holder drains
    /// the batch at exit, under its own lock hold and relay pass.
    fc: FcSlab<FcOp>,
    /// Process-unique identity token stamped into every [`Cond`] this
    /// monitor compiles, so waits reject foreign conditions.
    token: u64,
    /// The condition manager's lock-free snapshot ring, held outside the
    /// mutex so [`Monitor::latest_expr_snapshot`] never contends with
    /// occupants.
    ring: Arc<SnapshotRing>,
    /// The waiter-parking gates (per-shard wait queues + locks), held
    /// outside the mutex: `Parked`-mode waiters park, re-check and
    /// claim without touching the monitor lock.
    parking: Arc<ParkingLot>,
    /// The slot-bucketed wake gates (`Routed` mode), held outside the
    /// mutex for the same reason: routed waiters park per-`Cond`
    /// bucket, service token sweeps and claim without the monitor lock.
    wake: Arc<WakeLot>,
    /// The watchtower: continuous health signals and pathology
    /// detection over the counters and latency histograms, sampled by
    /// [`Monitor::observe_health`] without ever taking the monitor
    /// lock.
    watcher: telemetry::watch::Watcher,
}

impl<S> std::fmt::Debug for Monitor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("config", &self.config)
            .field("exprs", &self.exprs.read().len())
            .finish()
    }
}

impl<S> Monitor<S> {
    /// Creates a monitor with the paper-default configuration.
    pub fn new(state: S) -> Self {
        Self::with_config(state, MonitorConfig::default())
    }

    /// Creates a monitor with an explicit configuration (AutoSynch-T,
    /// timing, ablations).
    pub fn with_config(state: S, config: MonitorConfig) -> Self {
        static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
        let mgr = ConditionManager::new(config);
        let ring = mgr.ring();
        let parking = mgr.parking();
        let wake = mgr.wake_lot();
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        Monitor {
            inner: Mutex::new(Inner {
                state,
                mgr,
                dirty: false,
                signaled: false,
                tracked_pending: false,
                sink: MutationSink::new(),
            }),
            exprs: RwLock::new(ExprTable::new()),
            stats: MonitorStats::new(config.timing_enabled()),
            config,
            owner: AtomicU64::new(0),
            word: MonitorWord::new(),
            fc: FcSlab::new(),
            token,
            ring,
            parking,
            wake,
            watcher: telemetry::watch::Watcher::new(
                token,
                telemetry::watch::WatchConfig::default(),
            ),
        }
    }

    /// Registers a shared expression (Def. 5) used to build taggable
    /// predicates. The closure is evaluated under the monitor lock during
    /// relay signaling, so it must be cheap and must not block.
    pub fn register_expr(
        &self,
        name: impl Into<String>,
        f: impl Fn(&S) -> i64 + Send + Sync + 'static,
    ) -> ExprHandle<S> {
        self.exprs.write().register(name, f)
    }

    /// Finds a previously registered shared expression by name — useful
    /// when building conditions far from the registration site without
    /// threading handles around.
    pub fn lookup_expr(&self, name: &str) -> Option<ExprHandle<S>> {
        self.exprs.read().lookup(name)
    }

    /// Returns the handle registered under `name`, registering `f` if
    /// absent — interning for dynamically generated expressions (the DSL
    /// path).
    pub fn register_expr_or_get(
        &self,
        name: impl Into<String>,
        f: impl Fn(&S) -> i64 + Send + Sync + 'static,
    ) -> ExprHandle<S> {
        self.exprs.write().register_or_get(name, f)
    }

    /// Compiles a waiting condition: the whole predicate analysis (DNF
    /// conversion, tag assignment, dependency extraction, structural
    /// key, shard-route derivation) runs **once**, the result is
    /// interned by key in the monitor's condition table, and the
    /// returned [`Cond`] makes every subsequent [`MonitorGuard::wait`]
    /// an allocation- and hash-free, probe-ready wait.
    ///
    /// Compiling a syntax-equivalent condition twice returns handles to
    /// the same slot (and the same shared analysis). Compiled
    /// conditions are pinned for the monitor's lifetime — they are the
    /// §5.1 persistent shared predicates, generalized to any key — so
    /// compile in setup code or once per distinct globalized value, not
    /// in an unbounded-key loop.
    ///
    /// # Panics
    ///
    /// Panics when called from inside the monitor (the compile takes
    /// the monitor lock) or when the condition overflows the DNF limit.
    pub fn compile(&self, cond: impl IntoPredicate<S>) -> Cond<S> {
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            thread_id::current(),
            "Monitor::compile called from inside the monitor"
        );
        let pred = cond.into_predicate();
        let (slot, arc) = self.lock_slow().mgr.compile(pred);
        self.unlock_slow();
        Cond::new(arc, slot, self.token)
    }

    /// Binds the [`Tracked`](crate::tracked::Tracked) cell selected by
    /// `cell` to the shared expressions that read it, so writes to the
    /// cell automatically name those expressions under
    /// [`Monitor::enter_tracked`]. Call once per cell at setup time,
    /// after registering the expressions.
    ///
    /// # Panics
    ///
    /// Panics when called from inside the monitor.
    pub fn bind<T>(
        &self,
        cell: impl FnOnce(&mut S) -> &mut crate::tracked::Tracked<T>,
        deps: &[ExprHandle<S>],
    ) {
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            thread_id::current(),
            "Monitor::bind called from inside the monitor"
        );
        let mut inner = self.lock_slow();
        // Binding only touches cell metadata, but announce a blanket
        // mutation anyway: setup-time conservatism is free.
        inner.mgr.note_mutation();
        let tracked = cell(&mut inner.state);
        for handle in deps {
            tracked.bind(handle.id());
        }
        drop(inner);
        self.unlock_slow();
    }

    /// Enters the monitor (mutual exclusion) and runs `f` with a guard
    /// that can access the state and [`MonitorGuard::wait`]. On return
    /// the relay signaling rule runs and the monitor is released. When
    /// the monitor is fully quiescent the entry is a single CAS on the
    /// monitor word (no mutex, no relay work — see the module docs).
    ///
    /// # Panics
    ///
    /// Panics when called re-entrantly from the same thread: the monitor
    /// lock is not reentrant, and recursing would deadlock.
    pub fn enter<R>(&self, f: impl FnOnce(&mut MonitorGuard<'_, S>) -> R) -> R {
        self.enter_inner(None, f)
    }

    /// Like [`Monitor::enter`], for state types whose expression-feeding
    /// fields live in [`Tracked`](crate::tracked::Tracked) cells: every
    /// write inside the occupancy automatically names the touched
    /// shared expressions, so the change-driven snapshot diff evaluates
    /// only those — PR-3's precise named-mutation diffs without the
    /// manual slice-of-ids contract. A write to a cell with no bound
    /// expressions conservatively downgrades the occupancy to a blanket
    /// mutation; under-reporting is impossible by construction.
    pub fn enter_tracked<R>(&self, f: impl FnOnce(&mut MonitorGuard<'_, S>) -> R) -> R
    where
        S: TrackedState,
    {
        self.enter_inner(Some(drain_cells::<S>), f)
    }

    /// Enters the monitor for an occupancy that may register async
    /// waits. Unlike [`Monitor::enter`] — whose closure takes a guard of
    /// a caller-opaque lifetime — the guard's lifetime here is pinned to
    /// this monitor borrow, so the closure can *return* a value that
    /// borrows the monitor: the [`WaitAsync`](crate::asynch::WaitAsync)
    /// future from [`MonitorGuard::wait_async`]. The occupancy itself is
    /// synchronous (the guard is dropped, relay and all, before this
    /// returns); only the returned future outlives it.
    ///
    /// Registration always takes the slow lane: a `wait_async` must
    /// downgrade an elided occupancy anyway (its waiter joins the mutex
    /// protocol and holds slow-lane presence for its whole pending
    /// life), so the CAS lane has nothing to offer here.
    ///
    /// # Panics
    ///
    /// Panics when called re-entrantly from the same thread.
    pub fn enter_async<'m, R>(&'m self, f: impl FnOnce(&mut MonitorGuard<'m, S>) -> R) -> R {
        self.enter_async_inner(None, f)
    }

    /// [`Monitor::enter_async`] for [`Tracked`](crate::tracked::Tracked)
    /// state: writes inside the occupancy (and inside any occupancy a
    /// returned wait future resolves into) name the touched expressions
    /// automatically, exactly as [`Monitor::enter_tracked`] does.
    pub fn enter_async_tracked<'m, R>(&'m self, f: impl FnOnce(&mut MonitorGuard<'m, S>) -> R) -> R
    where
        S: TrackedState,
    {
        self.enter_async_inner(Some(drain_cells::<S>), f)
    }

    fn enter_async_inner<'m, R>(
        &'m self,
        drain: Option<DrainFn<S>>,
        f: impl FnOnce(&mut MonitorGuard<'m, S>) -> R,
    ) -> R {
        let me = thread_id::current();
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            me,
            "Monitor::enter_async called re-entrantly from the same thread"
        );
        self.stats.counters.record_enter();
        let started = self.stats.timing_enabled().then(Instant::now);
        let tctx = telemetry::context_enter(self.token);
        let lock_timer = self.stats.phases.start(Phase::Lock);
        let mut inner = self.lock_slow();
        lock_timer.finish();
        telemetry::record(telemetry::EventKind::EnterSlow, 0, 0);
        self.owner.store(me, Ordering::Relaxed);
        inner.dirty = false;
        inner.signaled = false;
        inner.tracked_pending = false;
        let mut guard = MonitorGuard {
            monitor: self,
            inner: Some(inner),
            started,
            elided: false,
            drain,
            tctx,
        };
        let result = f(&mut guard);
        drop(guard);
        result
    }

    /// Joins the slow lane: announce presence on the monitor word (which
    /// permanently blocks new elided acquires until we leave), wait out
    /// any in-flight elided holder, then take the mutex.
    fn lock_slow(&self) -> MutexGuard<'_, Inner<S>> {
        if self.config.fast_path_enabled() {
            self.word.join_slow();
            self.word.await_fast_clear();
        }
        self.inner.lock()
    }

    /// Leaves the slow lane. Call only after the matching `lock_slow`
    /// guard has been dropped: presence must outlive the mutex hold, or
    /// a fast CAS could slip in while the caller still occupies.
    fn unlock_slow(&self) {
        if self.config.fast_path_enabled() {
            self.word.leave_slow();
        }
    }

    /// Adopts every occupancy currently published in the flat-combining
    /// slab, running each against `inner` under this thread's exclusive
    /// hold. A panicking op is forwarded to its publisher, not to the
    /// combiner. Near-free when nothing is published (one relaxed load).
    fn combine_published(&self, inner: &mut Inner<S>) {
        if !self.config.fast_path_enabled() {
            return;
        }
        let ptr = inner as *mut Inner<S> as *mut ();
        self.fc.drain(|op| {
            self.stats.counters.record_combined_exit();
            catch_unwind(AssertUnwindSafe(|| op(ptr))).err()
        });
    }

    fn enter_inner<R>(
        &self,
        drain: Option<DrainFn<S>>,
        f: impl FnOnce(&mut MonitorGuard<'_, S>) -> R,
    ) -> R {
        let me = thread_id::current();
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            me,
            "Monitor::enter called re-entrantly from the same thread"
        );
        self.stats.counters.record_enter();
        let started = self.stats.timing_enabled().then(Instant::now);
        let tctx = telemetry::context_enter(self.token);
        if self.config.fast_path_enabled() && self.word.try_acquire_fast() {
            return self.run_elided(me, started, tctx, drain, f);
        }
        let lock_timer = self.stats.phases.start(Phase::Lock);
        let mut inner = self.lock_slow();
        lock_timer.finish();
        telemetry::record(telemetry::EventKind::EnterSlow, 0, 0);
        self.owner.store(me, Ordering::Relaxed);
        inner.dirty = false;
        inner.signaled = false;
        inner.tracked_pending = false;
        let mut guard = MonitorGuard {
            monitor: self,
            inner: Some(inner),
            started,
            elided: false,
            drain,
            tctx,
        };
        let result = f(&mut guard);
        drop(guard);
        result
    }

    /// Runs one occupancy over the elided lane: the CAS already granted
    /// exclusive ownership, so the guard works on the mutex's payload
    /// through a raw pointer and exit is a single atomic AND. Sound
    /// because `try_acquire_fast` only succeeds at `presence == 0` —
    /// nobody holds or awaits the mutex, and (since blocked waiters keep
    /// presence) nobody is waiting, so no relay can be owed.
    fn run_elided<R>(
        &self,
        me: u64,
        started: Option<Instant>,
        tctx: Option<u64>,
        drain: Option<DrainFn<S>>,
        f: impl FnOnce(&mut MonitorGuard<'_, S>) -> R,
    ) -> R {
        self.stats.counters.record_fast_path_enter();
        telemetry::record(telemetry::EventKind::EnterElided, 0, 0);
        self.owner.store(me, Ordering::Relaxed);
        {
            let inner = unsafe { &mut *self.inner.data_ptr() };
            inner.dirty = false;
            inner.signaled = false;
            inner.tracked_pending = false;
        }
        let mut guard = MonitorGuard {
            monitor: self,
            inner: None,
            started,
            elided: true,
            drain,
            tctx,
        };
        let result = f(&mut guard);
        drop(guard);
        result
    }

    /// Convenience: enter, mutate the state, exit (relaying as always).
    ///
    /// Unlike [`Monitor::enter`], a contended `with` does not queue on
    /// the mutex: it publishes the whole occupancy into the monitor's
    /// flat-combining slab and the current holder runs it at exit. The
    /// extra `Send` bounds let the closure and its result cross to the
    /// combining thread.
    pub fn with<R: Send>(&self, f: impl FnOnce(&mut S) -> R + Send) -> R {
        self.with_combinable(None, f)
    }

    /// Convenience: [`Monitor::enter_tracked`], mutate, exit — combined
    /// under contention exactly like [`Monitor::with`].
    pub fn with_tracked<R: Send>(&self, f: impl FnOnce(&mut S) -> R + Send) -> R
    where
        S: TrackedState,
    {
        self.with_combinable(Some(drain_cells::<S>), f)
    }

    /// The shared `with`/`with_tracked` engine: elided lane when
    /// quiescent, flat-combining publication when contended, plain slow
    /// lane when the fast path is off or the slab is full.
    fn with_combinable<R: Send>(
        &self,
        drain: Option<DrainFn<S>>,
        f: impl FnOnce(&mut S) -> R + Send,
    ) -> R {
        if !self.config.fast_path_enabled() {
            return self.enter_inner(drain, |g| f(g.state_mut()));
        }
        let me = thread_id::current();
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            me,
            "Monitor::with called re-entrantly from the same thread"
        );
        let started = self.stats.timing_enabled().then(Instant::now);
        if self.word.try_acquire_fast() {
            self.stats.counters.record_enter();
            let tctx = telemetry::context_enter(self.token);
            return self.run_elided(me, started, tctx, drain, |g| f(g.state_mut()));
        }
        // Contended: publish the occupancy and let the current holder
        // combine it into its own exit. The op writes its result into
        // `result` on this stack frame; `await_done` blocks until the
        // op was consumed (or withdrawn back to us), so the frame
        // outlives every access.
        let mut result: Option<R> = None;
        let out = SendPtr(&mut result as *mut Option<R>);
        let stats = Arc::clone(&self.stats);
        let op: Box<dyn FnOnce(*mut ()) + Send> = Box::new(move |ptr: *mut ()| {
            // Move the whole `SendPtr` in (not just its pointer field),
            // so the closure's `Send` comes from the wrapper.
            let out = out;
            let inner = unsafe { &mut *(ptr as *mut Inner<S>) };
            let value = f(&mut inner.state);
            inner.dirty = true;
            match drain {
                None => inner.mgr.note_mutation(),
                Some(drain) => {
                    // Inline tracked flush: name exactly the expressions
                    // this op's cell writes touched, as flush_tracked
                    // would for a first-class occupancy.
                    let Inner {
                        state, mgr, sink, ..
                    } = &mut *inner;
                    sink.reset();
                    drain(state, sink);
                    if sink.is_blanket() || sink.touched().is_empty() {
                        mgr.note_mutation();
                    } else {
                        stats.counters.record_named_mutation();
                        mgr.note_mutation_named(sink.touched());
                    }
                }
            }
            unsafe { *out.0 = Some(value) };
        });
        // The op borrows `f`'s captures for this call's lifetime only;
        // the slab stores it as `'static`. Sound: every path below
        // blocks until the op is consumed, withdrawn, or run locally —
        // it cannot outlive this frame.
        let op: FcOp = unsafe { std::mem::transmute(op) };
        match self.fc.publish(op) {
            Ok(ticket) => {
                self.stats.counters.record_fc_publish();
                let outcome = self
                    .fc
                    .await_done(ticket, || self.owner.load(Ordering::Relaxed) != 0);
                match outcome {
                    FcOutcome::Done => {
                        // The combiner ran us as one occupancy: count it
                        // here, on the thread that owns the semantics.
                        self.stats.counters.record_enter();
                        telemetry::record_for(
                            self.token,
                            telemetry::EventKind::EnterCombined,
                            0,
                            0,
                        );
                        if let Some(started) = started {
                            self.stats.enter_exit.record(started.elapsed());
                        }
                        result.expect("combined op finished without a result")
                    }
                    FcOutcome::Panicked(payload) => {
                        self.stats.counters.record_enter();
                        resume_unwind(payload)
                    }
                    FcOutcome::Withdrawn(op) => {
                        // Nobody was left to combine for us — run the op
                        // as a first-class slow-lane occupancy. The op
                        // does its own mutation naming, so no guard-level
                        // drain hook.
                        self.enter_inner(None, |g| g.apply_fc(op));
                        result.expect("withdrawn op ran without a result")
                    }
                }
            }
            Err(op) => {
                // Slab full: overload means combining is already paying
                // for itself elsewhere; just take the slow lane.
                self.enter_inner(None, |g| g.apply_fc(op));
                result.expect("fallback op ran without a result")
            }
        }
    }

    /// The instrumentation bundle shared by all users of this monitor.
    pub fn stats(&self) -> &Arc<MonitorStats> {
        &self.stats
    }

    /// A point-in-time snapshot of the instrumentation.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Drains the flight recorder and returns the events attributed to
    /// *this* monitor, oldest first.
    ///
    /// The recorder is process-global and consuming: events belonging
    /// to other monitors drained here are discarded, so interleave
    /// `drain_trace` calls across monitors only if that loss is
    /// acceptable (the bench harness traces one monitor at a time).
    /// Returns an empty vector unless recording was enabled via
    /// [`telemetry::set_enabled`] (or `AUTOSYNCH_TRACE=1` through the
    /// bench harness) while the traced section ran.
    pub fn drain_trace(&self) -> Vec<telemetry::TraceEvent> {
        let mut events = telemetry::drain_all().events;
        events.retain(|e| e.monitor == self.token);
        events
    }

    /// The monitor's configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Consumes the monitor and returns the protected state. Safe by
    /// construction: ownership proves no thread can be inside.
    pub fn into_inner(self) -> S {
        self.inner.into_inner().state
    }

    /// Whether the monitor is quiescent: no thread waiting, no signal
    /// in flight, no live tag. True between well-formed runs; the test
    /// suites use it to detect leaked waiters.
    pub fn is_quiescent(&self) -> bool {
        let counts = self.counts();
        counts.waiting == 0 && counts.signaled == 0 && counts.live_tags == 0
    }

    /// The most recent shared-expression snapshot the change-driven
    /// diff published, **read without taking the monitor lock**: the
    /// diff epoch plus one `Option<i64>` per registered expression.
    /// `Some` values form a *consistent cut* — they were all evaluated
    /// against the same state under one lock hold; `None` marks
    /// expressions that diff did not evaluate (no active dependents at
    /// the time). Returns `None` when no diff has been published (only
    /// the `Sharded` and `Parked` modes publish), when the monitor
    /// outgrew the ring's per-slot capacity, or when a validate-retry
    /// read could not complete. `Parked`-mode waiters run their
    /// lock-free self-checks against exactly this read.
    ///
    /// The read follows the seqlock protocol of the manager's snapshot
    /// ring: copy, then validate the slot's sequence; a torn copy is
    /// detected and retried (counted in the `ring_retries` counter),
    /// never returned.
    pub fn latest_expr_snapshot(&self) -> Option<(u64, Vec<Option<i64>>)> {
        self.ring.read_latest(&self.stats.counters)
    }

    /// Number of waiters currently enqueued on the per-shard parking
    /// gates (`Parked` mode) or slot-bucketed wake gates (`Routed`
    /// mode); always 0 in the other modes. Takes only the gate locks,
    /// never the monitor lock — usable by observers while the monitor
    /// is occupied.
    pub fn parked_waiters(&self) -> usize {
        self.parking.queued_total() + self.wake.queued_total()
    }

    /// Delivers previously announced parked-mode gate wakes, stamped
    /// with the publishing epoch. Must be called **after** the monitor
    /// lock is released — the announce (under the lock) / deliver
    /// (after it) pairing is the parked protocol's contract.
    fn deliver_wakes(&self, gates: &[u32], epoch: u64) {
        for &gate in gates {
            self.parking
                .deliver_wake(gate as usize, epoch, &self.stats.counters);
        }
    }

    /// Delivers previously announced routed-mode wakes (gate/transient
    /// broadcasts, bucket sweep starts, baton re-injections), stamped
    /// with the publishing epoch. Must be called **after** the monitor
    /// lock is released — same contract as [`Monitor::deliver_wakes`].
    fn deliver_routed_wakes(&self, wakes: &[RoutedWake], epoch: u64) {
        for &wake in wakes {
            self.wake.deliver(wake, epoch, &self.stats.counters);
        }
    }

    /// Takes one watchtower health sample: snapshots the counters and
    /// latency histograms, folds the windowed deltas into the
    /// monitor's EWMA health signals, and runs the pathology
    /// detectors. Returns the detector edges this sample crossed
    /// (pathologies arming or clearing); most samples return nothing.
    ///
    /// Never takes the monitor lock — only relaxed counter loads,
    /// histogram scans, and the park/wake gate locks
    /// ([`Monitor::parked_waiters`]) — so a sampler thread can drive
    /// this at kHz cadence against a saturated monitor. Not
    /// [`Monitor::counts`], which queues on the monitor mutex.
    pub fn observe_health(&self) -> Vec<telemetry::watch::HealthReport> {
        self.watcher.observe(self.raw_health_sample())
    }

    /// [`Monitor::observe_health`] with an explicit window length —
    /// the deterministic entry synthetic drivers and tests use.
    pub fn observe_health_window(
        &self,
        window: std::time::Duration,
    ) -> Vec<telemetry::watch::HealthReport> {
        self.watcher
            .observe_window(window, self.raw_health_sample())
    }

    fn raw_health_sample(&self) -> telemetry::watch::RawSample {
        telemetry::watch::RawSample {
            counters: self.stats.counters.snapshot(),
            wait: self.stats.wait.snapshot(),
            enter_exit: self.stats.enter_exit.snapshot(),
            parked: self.parked_waiters(),
        }
    }

    /// The retained watchtower sample history, oldest first.
    pub fn health_history(&self) -> Vec<telemetry::watch::HealthSample> {
        self.watcher.history()
    }

    /// The watchtower diagnostics bundle: latest health sample, armed
    /// pathologies, and retained detector edges. Render machine-side
    /// with [`telemetry::watch::Diagnostics::to_json`] or human-side
    /// via `Display`. Lock-free with respect to the monitor mutex,
    /// same as [`Monitor::observe_health`].
    pub fn diagnostics(&self) -> telemetry::watch::Diagnostics {
        telemetry::watch::Diagnostics {
            monitor: self.token,
            latest: self.watcher.history().last().copied(),
            active: self.watcher.active(),
            reports: self.watcher.reports(),
        }
    }

    /// Diagnostic counts of the condition manager, by name.
    pub fn counts(&self) -> ManagerCounts {
        let inner = self.lock_slow();
        let counters = self.stats.counters.snapshot();
        let counts = ManagerCounts {
            entries: inner.mgr.entry_count(),
            waiting: inner.mgr.waiting_count(),
            signaled: inner.mgr.signaled_count(),
            live_tags: inner.mgr.live_tag_count(),
            compiled: inner.mgr.compiled_count(),
            ladder_skips: counters.ladder_skips,
            cursor_resumes: counters.cursor_resumes,
            transient_cache_hits: counters.transient_cache_hits,
            fast_path_enters: counters.fast_path_enters,
            combined_exits: counters.combined_exits,
        };
        drop(inner);
        self.unlock_slow();
        counts
    }
}

/// The in-monitor view handed to [`Monitor::enter`] closures.
///
/// Dropping the guard (or returning from the closure) runs the relay
/// signaling rule and releases the monitor.
pub struct MonitorGuard<'a, S> {
    monitor: &'a Monitor<S>,
    inner: Option<MutexGuard<'a, Inner<S>>>,
    /// Entry timestamp for the `enter_exit` latency stat; `None` when
    /// timing is disabled.
    started: Option<Instant>,
    /// This occupancy holds the monitor through the elided (CAS) lane:
    /// `inner` is `None` and the payload is reached through the mutex's
    /// raw data pointer — sound because the monitor-word CAS granted
    /// the same exclusivity the mutex would. A wait downgrades the
    /// occupancy to the slow lane first.
    elided: bool,
    /// The tracked-cell drain hook, when entered via
    /// [`Monitor::enter_tracked`]. Writes defer their naming to a flush
    /// right before each relay, where the dirty cells report exactly
    /// the touched expressions.
    drain: Option<DrainFn<S>>,
    /// The previous flight-recorder monitor context, restored at exit;
    /// `None` when tracing was off at enter (no TLS traffic then).
    tctx: Option<u64>,
}

impl<S> std::fmt::Debug for MonitorGuard<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorGuard")
            .field("held", &(self.elided || self.inner.is_some()))
            .field("elided", &self.elided)
            .finish()
    }
}

impl<S> MonitorGuard<'_, S> {
    fn inner(&self) -> &Inner<S> {
        if self.elided {
            // Exclusive by the monitor-word protocol: the CAS set
            // OCCUPIED at presence 0, and both block any other access.
            return unsafe { &*self.monitor.inner.data_ptr() };
        }
        self.inner.as_ref().expect("monitor guard already released")
    }

    fn inner_mut(&mut self) -> &mut Inner<S> {
        if self.elided {
            return unsafe { &mut *self.monitor.inner.data_ptr() };
        }
        self.inner.as_mut().expect("monitor guard already released")
    }

    /// Moves an elided occupancy onto the slow lane: announce presence,
    /// take the mutex (uncontended by protocol — presence was 0 and
    /// OCCUPIED blocks newcomers from passing `await_fast_clear`), then
    /// clear OCCUPIED. Required before any blocking wait: waiters must
    /// be on the mutex/condvar protocol, and must hold presence so
    /// other threads' fast acquires stay rejected while they sleep.
    fn downgrade_if_elided(&mut self) {
        if !self.elided {
            return;
        }
        self.monitor.word.join_slow();
        let inner = self.monitor.inner.lock();
        self.inner = Some(inner);
        self.elided = false;
        self.monitor.word.release_fast();
    }

    /// Runs a flat-combining op against this occupancy's `Inner` — the
    /// local-execution path for ops that could not stay published
    /// (withdrawn, or the slab was full).
    fn apply_fc(&mut self, op: FcOp) {
        let inner = self.inner_mut();
        op(inner as *mut Inner<S> as *mut ());
    }

    /// Shared access to the monitor state.
    pub fn state(&self) -> &S {
        &self.inner().state
    }

    /// Mutable access to the monitor state. Marks the monitor dirty —
    /// used by the `relay_on_clean_exit(false)` ablation and by the
    /// change-driven mode, whose relay re-diffs the expression snapshot
    /// only after a mutation. In a tracked occupancy
    /// ([`Monitor::enter_tracked`]) the mutation's naming is deferred:
    /// the dirty cells are drained right before the next relay.
    pub fn state_mut(&mut self) -> &mut S {
        let tracked = self.drain.is_some();
        let inner = self.inner_mut();
        inner.dirty = true;
        if tracked {
            inner.tracked_pending = true;
        } else {
            inner.mgr.note_mutation();
        }
        &mut inner.state
    }

    /// Mutable access that **names the touched shared expressions** for
    /// this write: the dynamic counterpart of
    /// [`Tracked`](crate::tracked::Tracked) cells, for callers (like the
    /// DSL runtime) that know per-write which expressions a mutation
    /// can affect but cannot restructure their state into cells. The
    /// same contract as `Tracked` binding applies: `touched` must cover
    /// every expression whose value the write can change, or wakeups
    /// can be lost (the `validate_relay` checker catches violations).
    pub fn state_mut_touching(&mut self, touched: &[ExprId]) -> &mut S {
        self.monitor.stats.counters.record_named_mutation();
        let inner = self.inner_mut();
        inner.dirty = true;
        inner.mgr.note_mutation_named(touched);
        &mut inner.state
    }

    /// Compiles a condition **from inside the monitor** — the in-guard
    /// counterpart of [`Monitor::compile`], for runtimes (like the DSL
    /// interpreter) that discover conditions while already holding the
    /// lock. Interns into the same table; the returned handle is valid
    /// on this monitor forever.
    pub fn compile(&mut self, cond: impl IntoPredicate<S>) -> Cond<S> {
        let pred = cond.into_predicate();
        let token = self.monitor.token;
        let (slot, arc) = self.inner_mut().mgr.compile(pred);
        Cond::new(arc, slot, token)
    }

    /// Drains pending tracked-cell dirt into the condition manager.
    /// Must run before every relay of a tracked occupancy — a relay
    /// that misses a mutation would skip the diff and lose wakeups.
    fn flush_tracked(&mut self) {
        let Some(drain) = self.drain else { return };
        let monitor = self.monitor;
        let stats = &monitor.stats;
        let inner: &mut Inner<S> = if self.elided {
            unsafe { &mut *monitor.inner.data_ptr() }
        } else {
            match self.inner.as_mut() {
                Some(inner) => inner,
                None => return,
            }
        };
        if !inner.tracked_pending {
            return;
        }
        inner.tracked_pending = false;
        let Inner {
            state, mgr, sink, ..
        } = inner;
        sink.reset();
        drain(state, sink);
        if sink.is_blanket() || sink.touched().is_empty() {
            // A dirty unbound cell, or `state_mut` taken without
            // dirtying any cell: assume anything changed.
            mgr.note_mutation();
        } else {
            stats.counters.record_named_mutation();
            mgr.note_mutation_named(sink.touched());
        }
    }

    /// The paper's `waituntil(P)` on a **compiled** condition: blocks
    /// until `cond` holds, releasing the monitor while blocked. On
    /// return the condition is true and the monitor is held.
    ///
    /// The condition's analysis ran once, inside [`Monitor::compile`];
    /// this call performs no allocation, normalization or key hashing —
    /// just a fast-path evaluation and, if false, an O(1) registration
    /// on the precompiled predicate-table entry.
    ///
    /// # Panics
    ///
    /// Panics when `cond` was compiled by a different monitor.
    pub fn wait(&mut self, cond: &Cond<S>) {
        self.wait_cond(cond, None);
    }

    /// Like [`MonitorGuard::wait`] with a timeout. Returns `true` when
    /// the condition held within the timeout, `false` otherwise. (An
    /// extension over the paper, which has no timed waituntil.)
    ///
    /// # Panics
    ///
    /// Panics when `cond` was compiled by a different monitor.
    pub fn wait_timeout(&mut self, cond: &Cond<S>, timeout: Duration) -> bool {
        self.wait_cond(cond, Some(Instant::now() + timeout))
    }

    fn wait_cond(&mut self, cond: &Cond<S>, deadline: Option<Instant>) -> bool {
        let monitor = self.monitor;
        assert_eq!(
            cond.owner(),
            monitor.token,
            "waited on a Cond compiled by a different monitor"
        );
        // Fig. 6: "if P is false ..." — the fast path avoids registration.
        {
            let exprs = monitor.exprs.read();
            monitor.stats.counters.record_pred_eval();
            let inner = self.inner();
            if cond.predicate().eval(&inner.state, &exprs) {
                return true;
            }
        }
        monitor.stats.counters.record_wait();
        let pid = {
            let stats = Arc::clone(&monitor.stats);
            self.inner_mut()
                .mgr
                .register_waiter_slot(cond.slot(), cond.predicate_arc(), &stats)
        };
        self.wait_registered(pid, Some(cond.slot()), deadline)
    }

    /// The paper's `waituntil(P)` for **transient** conditions — ones
    /// whose globalized constants never repeat (ticket numbers, barrier
    /// generations), so compiling them would pin an unbounded set of
    /// conditions in the [`Monitor::compile`] table. The analysis runs
    /// per call and the predicate-table entry is LRU-evictable (§5.2's
    /// inactive list), exactly what one-shot conditions need.
    ///
    /// **Wake routing trade-off** (`SignalMode::Routed`): slot-targeted
    /// wakes need a stable bucket identity, and a transient entry has
    /// no compiled slot — but its *interned predicate* is still an
    /// identity, and a repeating one earns the targeted treatment. Each
    /// gate keeps a bounded **LRU of graduated per-predicate buckets**
    /// ([`MonitorConfig::transient_bucket_cap`], default 16): a
    /// transient waiter whose interned predicate owns (or is granted)
    /// a graduated bucket parks there and gets the full token-sweep
    /// discipline — one targeted unpark per transient wake instead of
    /// the herd (the `transient_cache_hits` counter reports repeat
    /// admissions). Only the overflow parks in the gate's **broadcast
    /// bucket** and is woken by the PR-3-style gate broadcast whenever
    /// any expression the gate owns changes (the global gate broadcasts
    /// on every mutation).
    ///
    /// **Capacity/eviction contract**: graduation is strictly an
    /// admission-time decision. The LRU only ever evicts an *idle*
    /// bucket — no linked waiters and no in-flight claimer — so an
    /// evicted key can have no parked waiter to lose; its *next* waiter
    /// simply re-applies and, if the cache is full of occupied buckets,
    /// falls back to the broadcast bucket. Evicted keys fall back,
    /// never strand: every slotless waiter is counted by the gate's
    /// transient mirror, so the relay announces the gate's transient
    /// wake (broadcast + one sweep per graduated bucket) exactly as if
    /// no graduation existed. For any condition whose key repeats
    /// predictably, prefer [`Monitor::compile`] + [`MonitorGuard::wait`]
    /// and get both the cheap wait path and the value-directed wakes.
    pub fn wait_transient(&mut self, cond: impl IntoPredicate<S>) {
        self.wait_until_predicate(cond.into_predicate(), None);
    }

    /// Like [`MonitorGuard::wait_transient`] with a timeout. Returns
    /// `true` when the condition held within the timeout.
    pub fn wait_transient_timeout(
        &mut self,
        cond: impl IntoPredicate<S>,
        timeout: Duration,
    ) -> bool {
        self.wait_until_predicate(cond.into_predicate(), Some(Instant::now() + timeout))
    }

    /// Non-blocking check: whether `cond` holds right now. Never waits
    /// and never registers anything with the condition manager.
    pub fn holds(&self, cond: impl IntoPredicate<S>) -> bool {
        let pred = cond.into_predicate();
        let exprs = self.monitor.exprs.read();
        self.monitor.stats.counters.record_pred_eval();
        pred.eval(&self.inner().state, &exprs)
    }

    fn wait_until_predicate(&mut self, pred: Predicate<S>, deadline: Option<Instant>) -> bool {
        let monitor = self.monitor;
        let stats = Arc::clone(&monitor.stats);

        // Fig. 6: "if P is false ..." — the fast path avoids registration.
        {
            let exprs = monitor.exprs.read();
            stats.counters.record_pred_eval();
            let inner = self.inner();
            if pred.eval(&inner.state, &exprs) {
                return true;
            }
        }

        stats.counters.record_wait();
        let pid = self.inner_mut().mgr.register_waiter(pred, &stats);
        self.wait_registered(pid, None, deadline)
    }

    /// The shared wait loop: both the compiled (`wait`) and per-call
    /// (`wait_transient`) paths land here once the waiter is registered.
    /// `slot` is the compiled-condition slot when the wait came through
    /// a [`Cond`] — the `Routed` mode's bucket identity; per-call waits
    /// have none and fall back to the broadcast bucket.
    fn wait_registered(
        &mut self,
        pid: PredId,
        slot: Option<u32>,
        deadline: Option<Instant>,
    ) -> bool {
        // Wait latency brackets the whole blocked span (registration to
        // return), feeding the `wait` histogram the tail-latency rows
        // the obs harness reports. Gated like the signaler hold stat on
        // the runtime phase switch (which run-timed harnesses flip
        // after construction), so the clock read is skipped when
        // timing is off.
        let started = self.monitor.stats.phases.is_enabled().then(Instant::now);
        let wait_id = if telemetry::enabled() {
            telemetry::next_wait_id()
        } else {
            0
        };
        telemetry::record(
            telemetry::EventKind::WaitRegistered,
            slot.map_or(u64::MAX, u64::from),
            wait_id << 1,
        );
        let satisfied = self.wait_registered_inner(pid, slot, deadline, wait_id);
        let elapsed_ns = started.map_or(0, |started| {
            let elapsed = started.elapsed();
            self.monitor.stats.wait.record(elapsed);
            elapsed.as_nanos() as u64
        });
        telemetry::record(
            telemetry::EventKind::WaitResolved,
            wait_id,
            (elapsed_ns << 1) | u64::from(satisfied),
        );
        satisfied
    }

    fn wait_registered_inner(
        &mut self,
        pid: PredId,
        slot: Option<u32>,
        deadline: Option<Instant>,
        wait_id: u64,
    ) -> bool {
        let monitor = self.monitor;
        let stats = Arc::clone(&monitor.stats);

        // An elided occupancy is about to block: move onto the mutex
        // protocol (keeping word presence, so fast acquires stay
        // rejected for as long as this waiter exists).
        self.downgrade_if_elided();

        // Any tracked writes of this occupancy must reach the manager
        // before the relay below runs its diff.
        self.flush_tracked();

        if monitor.config.signal_mode() == SignalMode::Parked {
            return self.wait_parked(pid, deadline, wait_id, &stats);
        }
        if monitor.config.signal_mode() == SignalMode::Routed {
            return self.wait_routed(pid, slot, deadline, wait_id, &stats);
        }

        loop {
            // "condMgr.relaySignal(); wait C" — pass the baton, then block.
            let cv = {
                let exprs = monitor.exprs.read();
                let guard = self.inner.as_mut().expect("guard released");
                let Inner {
                    state,
                    mgr,
                    signaled,
                    ..
                } = &mut **guard;
                mgr.relay_signal(state, &exprs, &stats);
                // Going to wait passes the baton (the relay call above), so
                // any signal this occupancy had consumed is discharged.
                *signaled = false;
                mgr.condvar(pid)
            };

            monitor.owner.store(0, Ordering::Relaxed);
            // Condvar mode has no park slot, but the commit-to-block /
            // post-wake-check pair is the same causal shape the span
            // stitcher consumes: `Park` (a = 0, no published epochs
            // here) before the block, `SelfCheck` (b = 0, the check
            // reads the live state under the lock) after it.
            telemetry::record(telemetry::EventKind::Park, 0, wait_id);
            let await_timer = stats.phases.start(Phase::Await);
            let timed_out = match deadline {
                None => {
                    cv.wait(self.inner.as_mut().expect("guard released"));
                    false
                }
                Some(deadline) => cv
                    .wait_until(self.inner.as_mut().expect("guard released"), deadline)
                    .timed_out(),
            };
            await_timer.finish();
            monitor.owner.store(thread_id::current(), Ordering::Relaxed);
            stats.counters.record_wakeup();

            let holds = {
                let exprs = monitor.exprs.read();
                let inner = self.inner();
                stats.counters.record_pred_eval();
                inner.mgr.entry_pred(pid).eval(&inner.state, &exprs)
            };
            telemetry::record(telemetry::EventKind::SelfCheck, u64::from(holds), 0);

            if holds {
                let inner = self.inner_mut();
                inner.mgr.consume_signal(pid, &stats);
                inner.dirty = false;
                inner.signaled = true;
                return true;
            }

            if timed_out {
                stats.counters.record_timeout();
                let must_relay = {
                    let inner = self.inner_mut();
                    inner.mgr.on_timeout(pid, &stats)
                };
                if must_relay {
                    // We absorbed a signal meant for someone: pass it on.
                    let exprs = monitor.exprs.read();
                    let guard = self.inner.as_mut().expect("guard released");
                    let Inner { state, mgr, .. } = &mut **guard;
                    mgr.relay_signal(state, &exprs, &stats);
                }
                self.inner_mut().dirty = false;
                return false;
            }

            // Futile wakeup: another thread barged in and falsified the
            // condition; rejoin the waiting pool.
            stats.counters.record_futile_wakeup();
            let inner = self.inner_mut();
            inner.mgr.mark_futile(pid, &stats);
            inner.dirty = false;
        }
    }

    /// The `Parked`-mode wait: instead of blocking on a per-entry
    /// condition variable under the monitor mutex, the waiter enqueues
    /// on its shard's gate, parks on a private token, and services its
    /// own wakeups — re-checking its predicate against the lock-free
    /// snapshot ring and re-parking, without any lock, while the
    /// snapshot rules the predicate out. Only a maybe-true verdict
    /// takes the shard lock (leave the queue) and the monitor lock
    /// (confirm-and-claim); that confirm is also the fallback for
    /// predicates the snapshot cannot decide (opaque/global-gate).
    ///
    /// Invariants: the waiter stays enqueued for the whole park/re-check
    /// loop (a publish during a re-check re-arms the sticky token, so
    /// the loop cannot sleep through it), and enqueue/re-enqueue happen
    /// under the monitor lock, serializing with every publish-and-wake.
    fn wait_parked(
        &mut self,
        pid: PredId,
        deadline: Option<Instant>,
        wait_id: u64,
        stats: &Arc<MonitorStats>,
    ) -> bool {
        let monitor = self.monitor;
        let (parking, pred, gate) = {
            let inner = self.inner();
            (
                inner.mgr.parking(),
                inner.mgr.entry_pred_arc(pid),
                inner.mgr.park_gate(pid),
            )
        };
        let slot = Arc::new(ParkSlot::new());
        slot.set_trace_id(wait_id);
        let mut ticket = parking.enqueue(gate, Arc::clone(&slot), pid);
        let mut wake_buf: Vec<u32> = Vec::new();
        let mut snap_buf: Vec<Option<i64>> = Vec::new();

        // Loop invariant at the top: the monitor lock is held and the
        // waiter is enqueued on its gate.
        loop {
            // Pass the baton before blocking (§4.2's relay-on-wait): in
            // parked mode this publishes any mutations of this
            // occupancy and announces wakes for the affected gates.
            let wake_epoch = {
                let exprs = monitor.exprs.read();
                let guard = self.inner.as_mut().expect("guard released");
                let Inner {
                    state,
                    mgr,
                    signaled,
                    ..
                } = &mut **guard;
                mgr.relay_signal(state, &exprs, stats);
                *signaled = false;
                mgr.drain_pending_wakes(&mut wake_buf)
            };
            monitor.owner.store(0, Ordering::Relaxed);
            drop(self.inner.take());
            // Deliver the announced unparks outside the critical
            // section (possibly including a self-unpark when this
            // waiter's own mutations touched its own gate — one cheap
            // extra self-check).
            monitor.deliver_wakes(&wake_buf, wake_epoch);

            // Park + self-service re-checks, no monitor lock held.
            let mut timed_out = false;
            loop {
                let await_timer = stats.phases.start(Phase::Await);
                let outcome = slot.park(deadline);
                await_timer.finish();
                match outcome {
                    ParkOutcome::TimedOut => {
                        timed_out = true;
                        break;
                    }
                    ParkOutcome::Woken { .. } => {
                        stats.counters.record_wakeup();
                        let recheck_timer = stats.phases.start(Phase::ParkRecheck);
                        stats.counters.record_waiter_self_check();
                        let snap_epoch = monitor
                            .ring
                            .read_latest_into(&stats.counters, &mut snap_buf);
                        let verdict = snapshot_verdict(&pred, snap_epoch, &snap_buf);
                        recheck_timer.finish();
                        telemetry::record(
                            telemetry::EventKind::SelfCheck,
                            matches!(verdict, Verdict::MayHold) as u64,
                            snap_epoch.unwrap_or(0),
                        );
                        match verdict {
                            Verdict::False { epoch } => {
                                // Still false at the newest published
                                // cut: back to sleep without touching
                                // any lock. A newer publish re-armed
                                // the token and re-runs this check.
                                stats.counters.record_false_wakeup();
                                slot.observed(epoch);
                            }
                            Verdict::MayHold => break,
                        }
                    }
                }
            }

            // Claim: leave the queue under the shard's lock, then
            // confirm against the live state under the monitor lock.
            parking.dequeue(ticket);
            let lock_timer = stats.phases.start(Phase::Lock);
            self.inner = Some(monitor.inner.lock());
            lock_timer.finish();
            monitor.owner.store(thread_id::current(), Ordering::Relaxed);

            let holds = {
                let exprs = monitor.exprs.read();
                let inner = self.inner();
                stats.counters.record_pred_eval();
                inner.mgr.entry_pred(pid).eval(&inner.state, &exprs)
            };
            if holds {
                let inner = self.inner_mut();
                inner.mgr.consume_signal(pid, stats);
                inner.dirty = false;
                inner.signaled = false;
                return true;
            }

            if timed_out {
                stats.counters.record_timeout();
                let inner = self.inner_mut();
                let _ = inner.mgr.on_timeout(pid, stats);
                inner.dirty = false;
                return false;
            }

            // Futile claim: another claimer barged in and falsified the
            // condition first. Re-enqueue under the monitor lock
            // (publishers cannot miss us) and go around.
            stats.counters.record_futile_wakeup();
            {
                let inner = self.inner_mut();
                inner.mgr.mark_futile(pid, stats);
                inner.dirty = false;
            }
            ticket = parking.enqueue(gate, Arc::clone(&slot), pid);
        }
    }

    /// The `Routed`-mode wait: the parked wait loop with slot-bucketed
    /// queues and the token-sweep discipline. Structure and invariants
    /// are `wait_parked`'s — the waiter stays enqueued for the whole
    /// park/re-check loop, enqueue and re-enqueue happen under the
    /// monitor lock, claims confirm under it — plus the token rules:
    ///
    /// * a consumed unpark in a slot bucket is a **sweep token**; a
    ///   false self-check marks this waiter observed and forwards it to
    ///   the next unobserved bucket peer (gate lock only);
    /// * a successful claim carries the token into the monitor and
    ///   re-injects it at exit (the `signaled` baton, waiter-side) —
    ///   bucket peers wait on the same compiled predicate, which may
    ///   still be true after this occupancy;
    /// * a futile claim re-enqueues, marks itself observed at the
    ///   manager's current epoch (its confirm just read the live
    ///   state), and forwards;
    /// * any dequeue drains a residual (unconsumed) token from the park
    ///   slot and folds it into the held token — tokens belong to the
    ///   bucket, never to the leaver.
    fn wait_routed(
        &mut self,
        pid: PredId,
        slot: Option<u32>,
        deadline: Option<Instant>,
        wait_id: u64,
        stats: &Arc<MonitorStats>,
    ) -> bool {
        let monitor = self.monitor;
        let (wake, pred, gate) = {
            let inner = self.inner();
            (
                inner.mgr.wake_lot(),
                inner.mgr.entry_pred_arc(pid),
                inner.mgr.park_gate(pid),
            )
        };
        let park = Arc::new(ParkSlot::new());
        park.set_trace_id(wait_id);
        // A compiled waiter goes straight to its slot bucket. A
        // slotless one runs the transient admission gate: repeat
        // `PredKey`s graduate to a swept per-predicate bucket (LRU,
        // bounded), first-timers and overflow land on the broadcast
        // bucket.
        let (mut ticket, bucket) = match slot {
            Some(s) => {
                let bucket = BucketKey::Slot(s);
                (wake.enqueue(gate, bucket, Arc::clone(&park), pid), bucket)
            }
            None => {
                let (ticket, bucket, hit) = wake.enqueue_transient(gate, Arc::clone(&park), pid);
                if hit {
                    stats.counters.record_transient_cache_hit();
                }
                (ticket, bucket)
            }
        };
        let swept = bucket.is_swept();
        let mut wake_buf: Vec<RoutedWake> = Vec::new();
        let mut snap_buf: Vec<Option<i64>> = Vec::new();
        // A token a futile claim could not hand off under the monitor
        // lock (token traffic belongs on waiter threads, off-lock): it
        // is forwarded right after the loop-top relay releases the
        // lock, with the matching in-flight claim retired then.
        let mut carried: Option<SweepToken> = None;

        // Loop invariant at the top: the monitor lock is held and the
        // waiter is enqueued in its bucket.
        loop {
            // Pass the baton before blocking (§4.2's relay-on-wait):
            // publish this occupancy's mutations and announce the
            // routed wakes, delivered below outside the lock.
            let wake_epoch = {
                let exprs = monitor.exprs.read();
                let guard = self.inner.as_mut().expect("guard released");
                let Inner {
                    state,
                    mgr,
                    signaled,
                    ..
                } = &mut **guard;
                mgr.relay_signal(state, &exprs, stats);
                *signaled = false;
                mgr.drain_routed_wakes(&mut wake_buf)
            };
            monitor.owner.store(0, Ordering::Relaxed);
            drop(self.inner.take());
            monitor.deliver_routed_wakes(&wake_buf, wake_epoch);
            if let Some(t) = carried.take() {
                // The futile claim's token, handed off now that the
                // lock is released; the in-flight claim covered its
                // bucket across the gap.
                t.forward(&wake, &stats.counters);
                wake.end_claim(gate, bucket);
            }

            // Park + self-service re-checks + token forwarding, no
            // monitor lock held.
            let mut timed_out = false;
            let mut token: Option<SweepToken> = None;
            loop {
                let await_timer = stats.phases.start(Phase::Await);
                let outcome = park.park(deadline);
                await_timer.finish();
                match outcome {
                    ParkOutcome::TimedOut => {
                        timed_out = true;
                        break;
                    }
                    ParkOutcome::Woken { epoch } => {
                        stats.counters.record_wakeup();
                        let recheck_timer = stats.phases.start(Phase::ParkRecheck);
                        stats.counters.record_waiter_self_check();
                        let snap_epoch = monitor
                            .ring
                            .read_latest_into(&stats.counters, &mut snap_buf);
                        let verdict = snapshot_verdict(&pred, snap_epoch, &snap_buf);
                        recheck_timer.finish();
                        telemetry::record(
                            telemetry::EventKind::SelfCheck,
                            matches!(verdict, Verdict::MayHold) as u64,
                            snap_epoch.unwrap_or(0),
                        );
                        match verdict {
                            Verdict::False { epoch: seen } => {
                                stats.counters.record_false_wakeup();
                                park.observed(seen);
                                if swept {
                                    // The wake we consumed belongs to
                                    // the bucket: hand it to the next
                                    // unobserved peer. The checked cut
                                    // subsumes the token's stamp.
                                    let mut t = SweepToken::new(gate, bucket, epoch);
                                    t.raise(seen);
                                    t.forward(&wake, &stats.counters);
                                }
                            }
                            Verdict::MayHold => {
                                if swept {
                                    token = Some(SweepToken::new(gate, bucket, epoch));
                                }
                                break;
                            }
                        }
                    }
                }
            }

            // Claim: leave the bucket under the gate's lock, drain any
            // residual token (it belongs to the bucket), then confirm
            // against the live state under the monitor lock. A swept
            // leaver registers as an in-flight claimer *atomically with
            // the dequeue*, so the no-lost-token audit keeps seeing the
            // bucket as covered while any token travels with us.
            wake.dequeue(ticket, swept);
            if swept {
                if let Some(residual) = park.take_pending() {
                    match &mut token {
                        Some(t) => t.raise(residual),
                        None => token = Some(SweepToken::new(gate, bucket, residual)),
                    }
                }
            }
            if timed_out {
                // A cancelling leaver has no claim to make on the
                // token's behalf: hand any residual token back to the
                // bucket now, before touching the monitor lock at all
                // (the timeout confirm below then runs token-free; if
                // it happens to find the predicate true, the already
                // forwarded token simply woke a peer early).
                if let Some(t) = token.take() {
                    t.forward(&wake, &stats.counters);
                }
            }
            let lock_timer = stats.phases.start(Phase::Lock);
            self.inner = Some(monitor.inner.lock());
            lock_timer.finish();
            monitor.owner.store(thread_id::current(), Ordering::Relaxed);

            let holds = {
                let exprs = monitor.exprs.read();
                let inner = self.inner();
                stats.counters.record_pred_eval();
                inner.mgr.entry_pred(pid).eval(&inner.state, &exprs)
            };
            if holds {
                let inner = self.inner_mut();
                inner.mgr.consume_signal(pid, stats);
                // The baton rule, waiter-side: re-inject the token at
                // monitor exit so the next bucket peer (same compiled
                // predicate, possibly still true) can confirm against
                // the post-claim state. The announcement covers the
                // bucket for the validator across this occupancy; it
                // takes over from our in-flight claim, which retires.
                if let (true, Some(_)) = (swept, token) {
                    inner.mgr.note_reinject(gate, bucket);
                }
                if swept {
                    wake.end_claim(gate, bucket);
                }
                inner.dirty = false;
                inner.signaled = false;
                return true;
            }

            if timed_out {
                stats.counters.record_timeout();
                let inner = self.inner_mut();
                let _ = inner.mgr.on_timeout(pid, stats);
                inner.dirty = false;
                // The residual token (if any) was already forwarded
                // before the lock was taken; only the claim remains.
                if swept {
                    wake.end_claim(gate, bucket);
                }
                return false;
            }

            // Futile claim: another claimer barged in and falsified the
            // condition first. Re-enqueue under the monitor lock
            // (publishers cannot miss us) and mark this waiter observed
            // at the current epoch (the confirm just read the live
            // state, at least as new as any published cut). The token
            // is *carried*, not forwarded here: the handoff is a gate
            // lock + futex wake that belongs off the monitor lock, so
            // it runs right after the loop-top relay releases it — the
            // still-open in-flight claim keeps the bucket covered until
            // then.
            stats.counters.record_futile_wakeup();
            let epoch_now = {
                let inner = self.inner_mut();
                inner.mgr.mark_futile(pid, stats);
                inner.dirty = false;
                inner.mgr.current_epoch()
            };
            ticket = wake.enqueue(gate, bucket, Arc::clone(&park), pid);
            if let Some(mut t) = token {
                park.observed(epoch_now.max(t.epoch()));
                t.raise(epoch_now);
                carried = Some(t);
            } else if swept {
                // No token travelled with us: nothing to hand off, the
                // claim retires immediately (gate lock only).
                wake.end_claim(gate, bucket);
            }
        }
    }

    fn exit(&mut self) {
        if self.elided {
            return self.exit_elided();
        }
        // Tracked writes of this occupancy must reach the manager
        // before the exit relay diffs.
        self.flush_tracked();
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        // Adopt any published flat-combining occupancies first: their
        // mutations fold into this exit's single relay pass below.
        self.monitor.combine_published(&mut inner);
        // The relay signaling rule on exit (§4.2). Under the ablation
        // config a clean occupancy may skip it, but only if it neither
        // mutated the state nor consumed a signal — a consumed signal is
        // the relay baton and must be passed on regardless.
        if self.monitor.config.relays_on_clean_exit() || inner.dirty || inner.signaled {
            let exprs = self.monitor.exprs.read();
            let Inner { state, mgr, .. } = &mut *inner;
            mgr.relay_signal(state, &exprs, &self.monitor.stats);
        }
        // Parked/Routed modes: the relay only announced its wakes;
        // perform the unparks after the lock is released so the token
        // handoffs never extend the signaler's critical section. The
        // drained wake lists live in thread-local scratch buffers, so
        // steady-state exits allocate nothing.
        thread_local! {
            static WAKE_SCRATCH: std::cell::RefCell<Vec<u32>> =
                const { std::cell::RefCell::new(Vec::new()) };
            static ROUTED_SCRATCH: std::cell::RefCell<Vec<RoutedWake>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let mode = self.monitor.config.signal_mode();
        let mut wake_epoch = 0;
        let has_wakes = mode == SignalMode::Parked
            && WAKE_SCRATCH.with(|buf| {
                let mut wakes = buf.borrow_mut();
                wake_epoch = inner.mgr.drain_pending_wakes(&mut wakes);
                !wakes.is_empty()
            });
        let has_routed = mode == SignalMode::Routed
            && ROUTED_SCRATCH.with(|buf| {
                let mut wakes = buf.borrow_mut();
                wake_epoch = inner.mgr.drain_routed_wakes(&mut wakes);
                !wakes.is_empty()
            });
        self.monitor.owner.store(0, Ordering::Relaxed);
        drop(inner);
        // Presence must outlive the mutex hold (a fast CAS sneaking in
        // between would alias the payload); it may end before the wake
        // delivery, which only touches the gates.
        self.monitor.unlock_slow();
        if has_wakes {
            WAKE_SCRATCH.with(|buf| {
                self.monitor.deliver_wakes(&buf.borrow(), wake_epoch);
            });
        }
        if has_routed {
            ROUTED_SCRATCH.with(|buf| {
                self.monitor.deliver_routed_wakes(&buf.borrow(), wake_epoch);
            });
        }
        if let Some(started) = self.started {
            self.monitor.stats.enter_exit.record(started.elapsed());
        }
        telemetry::context_exit(self.tctx.take());
    }

    /// Exit for an occupancy still on the elided lane: no relay and no
    /// snapshot publish — `try_acquire_fast` succeeded at presence 0,
    /// blocked waiters hold presence for their whole wait, and no
    /// thread can register as a waiter mid-occupancy (registration
    /// requires being inside), so there is provably nobody to signal.
    /// Mutations noted by tracked flushes or adopted ops persist in the
    /// condition manager and are diffed by the next slow-lane relay.
    fn exit_elided(&mut self) {
        let monitor = self.monitor;
        // Name this occupancy's tracked writes while the accessors
        // still route through the elided raw pointer.
        self.flush_tracked();
        {
            let inner = unsafe { &mut *monitor.inner.data_ptr() };
            monitor.combine_published(inner);
            if monitor.config.validates_relay() {
                inner.mgr.audit_fast_exit();
                telemetry::record(telemetry::EventKind::FastExitAudit, 0, 0);
            }
        }
        self.elided = false;
        // Clear ownership before opening the lane: a successor's fast
        // acquire must never have its own owner stamp clobbered by us.
        monitor.owner.store(0, Ordering::Relaxed);
        monitor.word.release_fast();
        if let Some(started) = self.started {
            monitor.stats.enter_exit.record(started.elapsed());
        }
        telemetry::context_exit(self.tctx.take());
    }
}

impl<'m, S> MonitorGuard<'m, S> {
    /// The paper's `waituntil(P)` as a **future**: registers the caller
    /// as an async waiter of `cond` under this guard's lock hold and
    /// returns a future resolving to a *fresh* guard whose occupancy
    /// observed the predicate true. Available on guards whose lifetime
    /// is pinned to the monitor borrow — inside
    /// [`Monitor::enter_async`] / [`Monitor::enter_async_tracked`]
    /// closures (a plain [`Monitor::enter`] guard's opaque lifetime
    /// cannot escape its closure, which is exactly the misuse the
    /// signature forbids).
    ///
    /// Each poll runs the parked waiter's self-service protocol without
    /// a thread: consume the waker slot's token, self-check against the
    /// lock-free snapshot ring, and take the monitor lock only on a
    /// maybe-true verdict — a decidable-false verdict forwards the
    /// sweep token to the next bucket peer and re-registers the waker
    /// without touching any monitor state. Dropping the pending future
    /// cancels the wait (deregisters the bucket entry, forwards any
    /// held token).
    ///
    /// # Panics
    ///
    /// Panics when `cond` was compiled by a different monitor, or when
    /// the monitor is not in [`SignalMode::Routed`] — async waiters are
    /// bucket entries of the routed wake subsystem.
    pub fn wait_async(&mut self, cond: &Cond<S>) -> crate::asynch::WaitAsync<'m, S> {
        crate::asynch::WaitAsync::new(self.register_async(cond))
    }

    /// [`MonitorGuard::wait_async`] with a deadline: resolves to
    /// `Some(guard)` when the condition held within `timeout`, `None`
    /// when the deadline elapsed first. A pending wake token beats an
    /// elapsed deadline, matching [`MonitorGuard::wait_timeout`].
    ///
    /// # Panics
    ///
    /// As [`MonitorGuard::wait_async`].
    pub fn wait_async_timeout(
        &mut self,
        cond: &Cond<S>,
        timeout: Duration,
    ) -> crate::asynch::WaitTimeoutAsync<'m, S> {
        crate::asynch::WaitTimeoutAsync::new(self.register_async(cond), Instant::now() + timeout)
    }

    /// Registration, under this guard's lock hold: intern the waiter on
    /// the compiled entry, enqueue a task-backed bucket entry, and
    /// capture everything the future's polls need. The relay this
    /// registration owes (§4.2's relay-on-wait baton pass) runs at the
    /// enclosing occupancy's normal exit.
    fn register_async(&mut self, cond: &Cond<S>) -> AsyncWaitCore<'m, S> {
        let monitor = self.monitor;
        assert_eq!(
            cond.owner(),
            monitor.token,
            "waited on a Cond compiled by a different monitor"
        );
        assert_eq!(
            monitor.config.signal_mode(),
            SignalMode::Routed,
            "wait_async requires SignalMode::Routed (async waiters are routed bucket entries)"
        );
        let stats = Arc::clone(&monitor.stats);
        // Async waiters live on the mutex protocol like any blocked
        // waiter; an elided registrar moves over first.
        self.downgrade_if_elided();
        // This occupancy's writes must reach the manager before the
        // registration-time evaluation below (and before the enclosing
        // exit's relay diffs).
        self.flush_tracked();
        stats.counters.record_wait();
        let pid =
            self.inner_mut()
                .mgr
                .register_waiter_slot(cond.slot(), cond.predicate_arc(), &stats);
        let (wake, pred, gate) = {
            let inner = self.inner();
            (
                inner.mgr.wake_lot(),
                inner.mgr.entry_pred_arc(pid),
                inner.mgr.park_gate(pid),
            )
        };
        let wait_id = if telemetry::enabled() {
            telemetry::next_wait_id()
        } else {
            0
        };
        let wslot = Arc::new(WakerSlot::new());
        wslot.set_trace_id(wait_id);
        let bucket = BucketKey::Slot(cond.slot());
        let ticket = wake.enqueue(gate, bucket, Arc::clone(&wslot), pid);
        // Fig. 6's "if P is false ..." check, inverted: a registration
        // that finds the predicate already true self-arms the slot, so
        // the future's first poll claims immediately instead of waiting
        // for a relay that may owe this entry nothing (no mutation need
        // ever happen). A racing claimer is harmless — the claim
        // re-confirms under the lock and goes futile if beaten.
        let holds_now = {
            let exprs = monitor.exprs.read();
            stats.counters.record_pred_eval();
            cond.predicate().eval(&self.inner().state, &exprs)
        };
        if holds_now {
            let epoch = self.inner().mgr.current_epoch();
            wslot.self_arm(epoch);
        }
        if monitor.config.fast_path_enabled() {
            // The pending future holds one slow-lane presence unit for
            // its whole life — blocked waiters keep presence, so elided
            // exits keep proving nobody is owed a relay. The unit
            // transfers to the resolved guard (whose exit releases it);
            // timeout and cancellation release it directly.
            monitor.word.join_slow();
        }
        telemetry::record(
            telemetry::EventKind::WaitRegistered,
            u64::from(cond.slot()),
            (wait_id << 1) | 1,
        );
        let started = stats.phases.is_enabled().then(Instant::now);
        AsyncWaitCore {
            monitor,
            wake,
            wslot,
            pred,
            pid,
            gate,
            bucket,
            ticket: Some(ticket),
            drain: self.drain,
            started,
            wait_id,
            wake_buf: Vec::new(),
            snap_buf: Vec::new(),
            done: false,
        }
    }
}

/// The engine of one pending `wait_async`: the registration state plus
/// the poll/timeout/cancel protocol. It lives inside the returned
/// future (`WaitAsync` / `WaitTimeoutAsync` in [`crate::asynch`]); the
/// implementation sits here, next to `wait_routed`, because a poll is
/// exactly one turn of the routed wait loop with the park replaced by
/// `Poll::Pending` — the two must stay in lockstep.
pub(crate) struct AsyncWaitCore<'m, S> {
    monitor: &'m Monitor<S>,
    wake: Arc<WakeLot>,
    wslot: Arc<WakerSlot>,
    pred: Arc<Predicate<S>>,
    pid: PredId,
    gate: usize,
    /// Always `BucketKey::Slot(..)` — async waits require a compiled
    /// [`Cond`], so the entry is always swept (never broadcast-only).
    bucket: BucketKey,
    /// The bucket position while enqueued; `None` mid-claim (the entry
    /// left its bucket as an in-flight claimer) and after completion.
    ticket: Option<WakeTicket>,
    drain: Option<DrainFn<S>>,
    /// Registration timestamp for the `wait` latency histogram; `None`
    /// when phase timing is off.
    started: Option<Instant>,
    /// Flight-recorder wait id (0 when tracing was off at
    /// registration); pairs the `WaitResolved` event the claim/timeout
    /// paths record with the registration's `WaitRegistered`.
    wait_id: u64,
    wake_buf: Vec<RoutedWake>,
    snap_buf: Vec<Option<i64>>,
    /// Completed (claimed, timed out, or cancelled): every resource —
    /// ticket, claim, presence unit, manager registration — is settled.
    done: bool,
}

impl<S> std::fmt::Debug for AsyncWaitCore<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncWaitCore")
            .field("gate", &self.gate)
            .field("bucket", &self.bucket)
            .field("enqueued", &self.ticket.is_some())
            .field("done", &self.done)
            .finish()
    }
}

impl<'m, S> AsyncWaitCore<'m, S> {
    /// One turn of the routed wait loop (see `wait_routed`): consume
    /// the slot's token or suspend; on a token, self-check against the
    /// ring; forward on decidable-false, claim under the monitor lock
    /// on maybe-true. A futile claim re-enqueues, relays the baton it
    /// briefly held, and tries the next token.
    ///
    /// # Panics
    ///
    /// Panics when polled after completion, or when polled by a thread
    /// currently holding this monitor — the claim would self-deadlock
    /// on the monitor mutex (never `await` a monitor's wait future from
    /// inside one of its occupancies).
    pub(crate) fn poll_claim(&mut self, cx: &mut Context<'_>) -> Poll<MonitorGuard<'m, S>> {
        assert!(!self.done, "polled a completed wait_async future");
        let monitor = self.monitor;
        let me = thread_id::current();
        assert_ne!(
            monitor.owner.load(Ordering::Relaxed),
            me,
            "polled a wait_async future while holding its monitor"
        );
        let stats = Arc::clone(&monitor.stats);
        loop {
            let Some(epoch) = self.wslot.poll_token(cx.waker()) else {
                return Poll::Pending;
            };
            stats.counters.record_wakeup();
            let recheck_timer = stats.phases.start(Phase::ParkRecheck);
            stats.counters.record_waiter_self_check();
            let snap_epoch = monitor
                .ring
                .read_latest_into(&stats.counters, &mut self.snap_buf);
            let verdict = snapshot_verdict(&self.pred, snap_epoch, &self.snap_buf);
            recheck_timer.finish();
            // Executor threads have no monitor context in TLS, so the
            // poll events attribute explicitly.
            telemetry::record_for(
                monitor.token,
                telemetry::EventKind::SelfCheck,
                matches!(verdict, Verdict::MayHold) as u64,
                snap_epoch.unwrap_or(0),
            );
            telemetry::record_for(
                monitor.token,
                telemetry::EventKind::AsyncPoll,
                matches!(verdict, Verdict::MayHold) as u64,
                snap_epoch.unwrap_or(0),
            );
            if let Verdict::False { epoch: seen } = verdict {
                // Still false at the newest published cut: forward the
                // bucket's token to the next unobserved peer and stay
                // suspended (the waker re-registered in `poll_token`).
                // No monitor state is touched.
                stats.counters.record_false_wakeup();
                self.wslot.observed(seen);
                let mut t = SweepToken::new(self.gate, self.bucket, epoch);
                t.raise(seen);
                t.forward(&self.wake, &stats.counters);
                continue;
            }
            // MayHold: leave the bucket as an in-flight claimer (the
            // dequeue registers the claim atomically, so the audit
            // never sees a coverage gap), drain any residual token, and
            // confirm against the live state under the monitor lock.
            let mut token = SweepToken::new(self.gate, self.bucket, epoch);
            let ticket = self.ticket.take().expect("claiming without a ticket");
            self.wake.dequeue(ticket, true);
            if let Some(residual) = self.wslot.take_pending() {
                token.raise(residual);
            }
            let lock_timer = stats.phases.start(Phase::Lock);
            let mut inner = monitor.inner.lock();
            lock_timer.finish();
            monitor.owner.store(me, Ordering::Relaxed);

            let holds = {
                let exprs = monitor.exprs.read();
                stats.counters.record_pred_eval();
                inner.mgr.entry_pred(self.pid).eval(&inner.state, &exprs)
            };
            if holds {
                inner.mgr.consume_signal(self.pid, &stats);
                // The baton rule, task-side: re-inject the token at the
                // resolved guard's exit so the next bucket peer can
                // confirm against the post-claim state. The
                // announcement takes over from our in-flight claim.
                inner.mgr.note_reinject(self.gate, self.bucket);
                self.wake.end_claim(self.gate, self.bucket);
                inner.dirty = false;
                inner.signaled = false;
                return Poll::Ready(self.finish_claim(inner));
            }

            // Futile claim: a barger falsified the condition first.
            // Re-enqueue under the monitor lock (publishers cannot miss
            // us), mark observed at the live epoch, then mirror the
            // sync loop-top: relay the baton, release the lock, deliver
            // the announced wakes, and hand the token off outside the
            // lock (the still-open claim covers the bucket until then).
            stats.counters.record_futile_wakeup();
            let epoch_now = {
                inner.mgr.mark_futile(self.pid, &stats);
                inner.dirty = false;
                inner.mgr.current_epoch()
            };
            self.ticket =
                Some(
                    self.wake
                        .enqueue(self.gate, self.bucket, Arc::clone(&self.wslot), self.pid),
                );
            self.wslot.observed(epoch_now.max(token.epoch()));
            token.raise(epoch_now);
            let wake_epoch = {
                let exprs = monitor.exprs.read();
                let Inner {
                    state,
                    mgr,
                    signaled,
                    ..
                } = &mut *inner;
                mgr.relay_signal(state, &exprs, &stats);
                *signaled = false;
                mgr.drain_routed_wakes(&mut self.wake_buf)
            };
            monitor.owner.store(0, Ordering::Relaxed);
            drop(inner);
            monitor.deliver_routed_wakes(&self.wake_buf, wake_epoch);
            token.forward(&self.wake, &stats.counters);
            self.wake.end_claim(self.gate, self.bucket);
        }
    }

    /// [`AsyncWaitCore::poll_claim`] with a deadline: a pending token
    /// is always tried first (it beats an elapsed deadline), then the
    /// deadline is checked, then — once — the process-wide timer is
    /// armed to interrupt this slot at the deadline.
    pub(crate) fn poll_claim_deadline(
        &mut self,
        cx: &mut Context<'_>,
        deadline: Instant,
        timer_armed: &mut bool,
    ) -> Poll<Option<MonitorGuard<'m, S>>> {
        if let Poll::Ready(guard) = self.poll_claim(cx) {
            return Poll::Ready(Some(guard));
        }
        if Instant::now() >= deadline {
            return Poll::Ready(self.finish_timeout());
        }
        if !*timer_armed {
            *timer_armed = true;
            crate::asynch::timer::schedule(deadline, Arc::clone(&self.wslot));
        }
        Poll::Pending
    }

    /// Completes a claim: settle the wait-latency stat and build the
    /// guard the future resolves to. The registration's presence unit
    /// transfers to the guard — its exit runs the normal slow-lane
    /// release, balancing the `join_slow` taken at registration.
    fn finish_claim(&mut self, inner: MutexGuard<'m, Inner<S>>) -> MonitorGuard<'m, S> {
        self.done = true;
        let monitor = self.monitor;
        let elapsed_ns = self.started.take().map_or(0, |started| {
            let elapsed = started.elapsed();
            monitor.stats.wait.record(elapsed);
            elapsed.as_nanos() as u64
        });
        // Executor threads have no monitor context in TLS, so the
        // resolve attributes explicitly, like the poll events.
        telemetry::record_for(
            monitor.token,
            telemetry::EventKind::WaitResolved,
            self.wait_id,
            (elapsed_ns << 1) | 1,
        );
        let started = monitor.stats.timing_enabled().then(Instant::now);
        let tctx = telemetry::context_enter(monitor.token);
        MonitorGuard {
            monitor,
            inner: Some(inner),
            started,
            elided: false,
            drain: self.drain,
            tctx,
        }
    }

    /// The deadline elapsed with no claim: deregister exactly as the
    /// thread-backed timed wait does — dequeue as an in-flight claimer,
    /// hand any residual token back to the bucket *before* touching the
    /// monitor lock, then confirm once under it (the predicate may have
    /// just turned true; a token-free success needs no re-injection).
    fn finish_timeout(&mut self) -> Option<MonitorGuard<'m, S>> {
        let monitor = self.monitor;
        let stats = Arc::clone(&monitor.stats);
        let ticket = self.ticket.take().expect("timing out without a ticket");
        self.wake.dequeue(ticket, true);
        if let Some(residual) = self.wslot.take_pending() {
            SweepToken::new(self.gate, self.bucket, residual).forward(&self.wake, &stats.counters);
        }
        let lock_timer = stats.phases.start(Phase::Lock);
        let mut inner = monitor.inner.lock();
        lock_timer.finish();
        monitor.owner.store(thread_id::current(), Ordering::Relaxed);

        let holds = {
            let exprs = monitor.exprs.read();
            stats.counters.record_pred_eval();
            inner.mgr.entry_pred(self.pid).eval(&inner.state, &exprs)
        };
        if holds {
            inner.mgr.consume_signal(self.pid, &stats);
            self.wake.end_claim(self.gate, self.bucket);
            inner.dirty = false;
            inner.signaled = false;
            return Some(self.finish_claim(inner));
        }
        stats.counters.record_timeout();
        let _ = inner.mgr.on_timeout(self.pid, &stats);
        inner.dirty = false;
        self.wake.end_claim(self.gate, self.bucket);
        monitor.owner.store(0, Ordering::Relaxed);
        drop(inner);
        self.done = true;
        let elapsed_ns = self.started.take().map_or(0, |started| {
            let elapsed = started.elapsed();
            stats.wait.record(elapsed);
            elapsed.as_nanos() as u64
        });
        telemetry::record_for(
            monitor.token,
            telemetry::EventKind::WaitResolved,
            self.wait_id,
            elapsed_ns << 1,
        );
        if monitor.config.fast_path_enabled() {
            monitor.word.leave_slow();
        }
        None
    }

    /// Cancellation: the future was dropped while pending. Mirrors the
    /// timeout path's resource discipline — dequeue as an in-flight
    /// claimer (the bucket stays covered for the no-lost-token audit
    /// across the whole teardown), forward any residual token to the
    /// bucket before touching the monitor lock, then deregister from
    /// the manager under it and release the presence unit. No-op after
    /// completion.
    ///
    /// # Panics
    ///
    /// Panics when the dropping thread holds this monitor (the
    /// deregistration would self-deadlock). During an unwind the panic
    /// is suppressed and the registration leaks instead: the open claim
    /// keeps the audit sound, and masking the original panic would be
    /// worse than the leak.
    pub(crate) fn cancel(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let monitor = self.monitor;
        let stats = Arc::clone(&monitor.stats);
        let ticket = self.ticket.take().expect("cancelling without a ticket");
        self.wake.dequeue(ticket, true);
        if let Some(residual) = self.wslot.take_pending() {
            SweepToken::new(self.gate, self.bucket, residual).forward(&self.wake, &stats.counters);
        }
        if monitor.owner.load(Ordering::Relaxed) == thread_id::current() {
            if std::thread::panicking() {
                return;
            }
            panic!("dropped a pending wait_async future while holding its monitor");
        }
        let mut inner = monitor.inner.lock();
        let _ = inner.mgr.on_timeout(self.pid, &stats);
        self.wake.end_claim(self.gate, self.bucket);
        drop(inner);
        if monitor.config.fast_path_enabled() {
            monitor.word.leave_slow();
        }
    }
}

impl<S> Drop for MonitorGuard<'_, S> {
    fn drop(&mut self) {
        self.exit();
    }
}

// A monitor is shared between threads; the state never leaves the mutex.
// These bounds follow from the field types, spelled out for clarity.
#[allow(dead_code)]
fn _assert_send_sync<S: Send>() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<Monitor<S>>();
    is_send_sync::<Arc<Condvar>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignalMode;
    use crate::tracked::{Tracked, TrackedCell};
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    struct Counter {
        value: i64,
    }

    fn value_expr(monitor: &Monitor<Counter>) -> ExprHandle<Counter> {
        monitor.register_expr("value", |s| s.value)
    }

    #[test]
    fn wait_returns_immediately_when_true() {
        let m = Monitor::new(Counter { value: 5 });
        let v = value_expr(&m);
        let at_least_five = m.compile(v.ge(5));
        m.enter(|g| g.wait(&at_least_five));
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.waits, 0);
        assert_eq!(snap.counters.wakeups, 0);
    }

    #[test]
    fn waiter_is_woken_by_state_change() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let v = value_expr(&m);
        let at_least_three = m.compile(v.ge(3));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| {
                g.wait(&at_least_three);
                g.state().value
            })
        });
        // Give the waiter time to block, then satisfy the predicate.
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 3);
        assert_eq!(waiter.join().unwrap(), 3);
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.signals, 1);
        assert_eq!(snap.counters.broadcasts, 0, "AutoSynch never broadcasts");
    }

    #[test]
    fn closure_predicates_work_via_none_tag() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let divisible = m.compile(|s: &Counter| s.value % 7 == 0 && s.value > 0);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| g.wait(&divisible));
        });
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 14);
        waiter.join().unwrap();
    }

    #[test]
    fn relay_chains_through_multiple_waiters() {
        // Producer satisfies A; A's action satisfies B; B's satisfies C.
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let v = value_expr(&m);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for stage in 1..=3 {
            let m = Arc::clone(&m);
            let order = Arc::clone(&order);
            let cond = m.compile(v.ge(stage));
            handles.push(thread::spawn(move || {
                m.enter(|g| {
                    g.wait(&cond);
                    g.state_mut().value += 1; // unlocks the next stage
                                              // Record while still inside the monitor: the chain
                                              // order is the monitor-transit order, and recording
                                              // after release would race with the next stage.
                    order.lock().push(stage);
                });
            }));
        }
        thread::sleep(Duration::from_millis(30));
        m.with(|s| s.value = 1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock(), &[1, 2, 3]);
    }

    #[test]
    fn many_waiters_same_predicate_all_proceed() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            let positive = positive.clone();
            handles.push(thread::spawn(move || {
                m.enter(|g| {
                    g.wait(&positive);
                    g.state_mut().value += 1;
                });
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        thread::sleep(Duration::from_millis(30));
        m.with(|s| s.value = 1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(m.with(|s| s.value), 9);
    }

    #[test]
    fn timeout_expires_when_never_satisfied() {
        let m = Monitor::new(Counter { value: 0 });
        let v = value_expr(&m);
        let unreachable = m.compile(v.ge(10));
        let start = Instant::now();
        let ok = m.enter(|g| g.wait_timeout(&unreachable, Duration::from_millis(50)));
        assert!(!ok);
        assert!(start.elapsed() >= Duration::from_millis(45));
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.timeouts, 1);
        // The monitor is clean afterwards: no leaked waiters or tags.
        let counts = m.counts();
        assert_eq!(
            (counts.waiting, counts.signaled, counts.live_tags),
            (0, 0, 0)
        );
    }

    #[test]
    fn timeout_succeeds_when_satisfied_in_time() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter =
            thread::spawn(move || m2.enter(|g| g.wait_timeout(&positive, Duration::from_secs(5))));
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 1);
        assert!(waiter.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_enter_panics() {
        let m = Monitor::new(Counter { value: 0 });
        m.enter(|_| {
            m.enter(|_| {});
        });
    }

    #[test]
    #[should_panic(expected = "compile called from inside")]
    fn compile_inside_the_monitor_panics() {
        let m = Monitor::new(Counter { value: 0 });
        let v = value_expr(&m);
        m.enter(|_| {
            let _ = m.compile(v.ge(1));
        });
    }

    #[test]
    #[should_panic(expected = "different monitor")]
    fn waiting_on_a_foreign_cond_panics() {
        let a = Monitor::new(Counter { value: 0 });
        let b = Monitor::new(Counter { value: 0 });
        let v = value_expr(&a);
        let foreign = a.compile(v.ge(1));
        b.enter(|g| g.wait(&foreign));
    }

    #[test]
    fn compile_interns_by_structural_key() {
        let m = Monitor::new(Counter { value: 0 });
        let v = value_expr(&m);
        let a = m.compile(v.ge(5));
        let b = m.compile(v.ge(5));
        assert_eq!(a.slot(), b.slot(), "key-equal conditions share a slot");
        let c = m.compile(v.ge(6));
        assert_ne!(a.slot(), c.slot());
        let counts = m.counts();
        assert_eq!(counts.compiled, 2);
        assert_eq!(counts.entries, 2, "one persistent entry per slot");
    }

    #[test]
    fn transient_and_compiled_waits_share_one_entry() {
        // The per-call transient path interns through the same predicate
        // table the compiled path pins its entries in: no duplicate
        // entry, no duplicate condvar. (Timed waits on a false predicate
        // force a real registration on both paths.)
        let m = Monitor::new(Counter { value: 1 });
        let v = value_expr(&m);
        m.enter(|g| {
            assert!(!g.wait_transient_timeout(v.gt(5), Duration::from_millis(10)));
        });
        let entries_before = m.counts().entries;
        assert_eq!(entries_before, 1, "the transient wait registered one entry");
        let cond = m.compile(v.gt(5));
        assert_eq!(
            m.counts().entries,
            entries_before,
            "compile reused the transient entry"
        );
        assert!(!m.enter(|g| g.wait_timeout(&cond, Duration::from_millis(10))));
        assert_eq!(m.counts().entries, entries_before);
    }

    #[test]
    fn panic_in_enter_releases_and_relays() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| g.wait(&positive));
        });
        thread::sleep(Duration::from_millis(20));
        let m3 = Arc::clone(&m);
        let panicker = thread::spawn(move || {
            m3.enter(|g| {
                g.state_mut().value = 1;
                panic!("boom");
            });
        });
        assert!(panicker.join().is_err());
        // The waiter must still be released by the exit relay of the
        // panicking thread.
        waiter.join().unwrap();
    }

    fn mode_behaves_identically(mode: SignalMode) {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(mode).validate_relay(true),
        ));
        assert_eq!(m.config().signal_mode(), mode);
        let v = value_expr(&m);
        let at_least_two = m.compile(v.ge(2));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| {
                g.wait(&at_least_two);
                g.state().value
            })
        });
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 2);
        assert_eq!(waiter.join().unwrap(), 2);
        assert!(m.is_quiescent());
        assert_eq!(m.stats_snapshot().counters.broadcasts, 0);
    }

    #[test]
    fn untagged_mode_behaves_identically() {
        mode_behaves_identically(SignalMode::Untagged);
    }

    #[test]
    fn change_driven_mode_behaves_identically() {
        mode_behaves_identically(SignalMode::ChangeDriven);
    }

    #[test]
    fn sharded_mode_behaves_identically() {
        mode_behaves_identically(SignalMode::Sharded);
    }

    fn relay_chain(config: MonitorConfig) {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            config.validate_relay(true),
        ));
        let v = value_expr(&m);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for stage in 1..=3 {
            let m = Arc::clone(&m);
            let order = Arc::clone(&order);
            let cond = m.compile(v.ge(stage));
            handles.push(thread::spawn(move || {
                m.enter(|g| {
                    g.wait(&cond);
                    g.state_mut().value += 1;
                    order.lock().push(stage); // in-monitor: transit order
                });
            }));
        }
        thread::sleep(Duration::from_millis(30));
        m.with(|s| s.value = 1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock(), &[1, 2, 3]);
    }

    #[test]
    fn change_driven_relay_chains_through_multiple_waiters() {
        relay_chain(MonitorConfig::preset(SignalMode::ChangeDriven));
    }

    #[test]
    fn sharded_relay_chains_through_multiple_waiters() {
        relay_chain(MonitorConfig::preset(SignalMode::Sharded).shards(3));
    }

    #[test]
    fn parked_relay_chains_through_multiple_waiters() {
        relay_chain(MonitorConfig::preset(SignalMode::Parked).shards(3));
    }

    #[test]
    fn routed_relay_chains_through_multiple_waiters() {
        relay_chain(MonitorConfig::preset(SignalMode::Routed).shards(3));
    }

    #[test]
    fn routed_mode_behaves_identically() {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Routed).validate_relay(true),
        ));
        assert_eq!(m.config().signal_mode(), SignalMode::Routed);
        let v = value_expr(&m);
        let at_least_two = m.compile(v.ge(2));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| {
                g.wait(&at_least_two);
                g.state().value
            })
        });
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 2);
        assert_eq!(waiter.join().unwrap(), 2);
        assert!(m.is_quiescent());
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.broadcasts, 0);
        assert_eq!(snap.counters.signals, 0, "a routed signaler only unparks");
        assert!(snap.counters.waiter_self_checks >= 1);
        assert!(snap.counters.routed_unparks >= 1, "the wake was targeted");
        assert_eq!(m.parked_waiters(), 0, "claimed waiters leave the buckets");
    }

    #[test]
    fn routed_eq_conditions_get_single_targeted_unparks() {
        // The fig11 microcosm: three waiters on turn==1/2/3. Every
        // published turn value must wake at most the one matching
        // bucket — never the whole gate — so total unparks stay near
        // the number of handoffs while parked mode would broadcast to
        // every waiter each time.
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Routed).validate_relay(true),
        ));
        let v = value_expr(&m);
        let mut handles = Vec::new();
        for stage in 1..=3 {
            let m = Arc::clone(&m);
            let cond = m.compile(v.eq(stage));
            handles.push(thread::spawn(move || {
                m.enter(|g| {
                    g.wait(&cond);
                    g.state_mut().value += 1; // hands the turn onward
                });
            }));
        }
        thread::sleep(Duration::from_millis(30));
        m.with(|s| s.value = 1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.with(|s| s.value), 4);
        let snap = m.stats_snapshot();
        assert!(
            snap.counters.eq_routed_wakes >= 1,
            "equivalence conditions must route through the eq index ({snap:?})"
        );
        // Three handoffs; each wakes one bucket head plus at most a
        // couple of re-injections/forwards — nowhere near the 3-per-
        // publish broadcast herd.
        assert!(
            snap.counters.unparks <= 8,
            "wakes must be targeted, got {} unparks",
            snap.counters.unparks
        );
        assert!(m.is_quiescent());
    }

    #[test]
    fn routed_token_sweep_serves_shared_buckets() {
        // Several waiters share one compiled condition (one bucket).
        // The publish wakes only the bucket head; claimers re-inject
        // the baton at exit, so every peer still proceeds.
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Routed).validate_relay(true),
        ));
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            let positive = positive.clone();
            handles.push(thread::spawn(move || {
                m.enter(|g| {
                    g.wait(&positive);
                });
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        thread::sleep(Duration::from_millis(30));
        m.with(|s| s.value = 1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 6);
        let snap = m.stats_snapshot();
        assert!(
            snap.counters.token_forwards >= 1,
            "claimers must re-inject the baton for their bucket peers ({snap:?})"
        );
        assert!(m.is_quiescent());
    }

    #[test]
    fn routed_timeout_expires_and_cleans_up() {
        let m = Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Routed).validate_relay(true),
        );
        let v = value_expr(&m);
        let unreachable = m.compile(v.ge(10));
        let start = Instant::now();
        let ok = m.enter(|g| g.wait_timeout(&unreachable, Duration::from_millis(50)));
        assert!(!ok);
        assert!(start.elapsed() >= Duration::from_millis(45));
        assert_eq!(m.stats_snapshot().counters.timeouts, 1);
        assert!(m.is_quiescent());
        assert_eq!(m.parked_waiters(), 0);
    }

    #[test]
    fn routed_closure_predicates_use_the_global_gate_broadcast() {
        // Opaque predicates route to the global gate, whose wake stays
        // the conservative parked-style broadcast.
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Routed).validate_relay(true),
        ));
        let divisible = m.compile(|s: &Counter| s.value % 7 == 0 && s.value > 0);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| g.wait(&divisible));
        });
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 14);
        waiter.join().unwrap();
        assert!(m.is_quiescent());
    }

    #[test]
    fn routed_transient_waiters_ride_the_broadcast_bucket() {
        // wait_transient conditions have no slot: they park in the
        // broadcast bucket and the gate-affected broadcast must still
        // wake them (the documented fallback — never stranded).
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Routed).validate_relay(true),
        ));
        let v = value_expr(&m);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| {
                g.wait_transient(v.ge(3));
                g.state().value
            })
        });
        thread::sleep(Duration::from_millis(20));
        for k in 1..=3 {
            m.with(|s| s.value = k);
        }
        assert_eq!(waiter.join().unwrap(), 3);
        assert!(m.is_quiescent());
        assert_eq!(m.parked_waiters(), 0);
    }

    #[test]
    fn parked_mode_behaves_identically() {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Parked).validate_relay(true),
        ));
        assert_eq!(m.config().signal_mode(), SignalMode::Parked);
        let v = value_expr(&m);
        let at_least_two = m.compile(v.ge(2));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| {
                g.wait(&at_least_two);
                g.state().value
            })
        });
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 2);
        assert_eq!(waiter.join().unwrap(), 2);
        assert!(m.is_quiescent());
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.broadcasts, 0);
        assert!(
            snap.counters.waiter_self_checks >= 1,
            "the parked waiter must have re-checked itself"
        );
        assert!(snap.counters.unparks >= 1);
        assert_eq!(m.parked_waiters(), 0, "claimed waiters leave the gates");
    }

    #[test]
    fn parked_false_wakeups_stay_lock_free() {
        // Two waiters on disjoint predicates over one expression: every
        // publish wakes both gates' queues, but the waiter whose
        // predicate the snapshot rules out re-parks without the lock —
        // visible as false_wakeups without futile_wakeups.
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Parked).validate_relay(true),
        ));
        let v = value_expr(&m);
        let far_cond = m.compile(v.ge(100));
        let near_cond = m.compile(v.ge(3));
        let m2 = Arc::clone(&m);
        let far = thread::spawn(move || m2.enter(|g| g.wait(&far_cond)));
        let m3 = Arc::clone(&m);
        let near = thread::spawn(move || m3.enter(|g| g.wait(&near_cond)));
        thread::sleep(Duration::from_millis(30));
        for k in 1..=3 {
            m.with(|s| s.value = k);
        }
        near.join().unwrap();
        let snap = m.stats_snapshot();
        assert!(
            snap.counters.false_wakeups >= 1,
            "the far waiter's self-checks must have ruled its predicate out \
             ({} false wakeups)",
            snap.counters.false_wakeups
        );
        m.with(|s| s.value = 100);
        far.join().unwrap();
        assert!(m.is_quiescent());
    }

    #[test]
    fn parked_timeout_expires_and_cleans_up() {
        let m = Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Parked).validate_relay(true),
        );
        let v = value_expr(&m);
        let unreachable = m.compile(v.ge(10));
        let start = Instant::now();
        let ok = m.enter(|g| g.wait_timeout(&unreachable, Duration::from_millis(50)));
        assert!(!ok);
        assert!(start.elapsed() >= Duration::from_millis(45));
        assert_eq!(m.stats_snapshot().counters.timeouts, 1);
        assert!(m.is_quiescent());
        assert_eq!(m.parked_waiters(), 0);
    }

    #[test]
    fn parked_timeout_succeeds_when_satisfied_in_time() {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Parked),
        ));
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter =
            thread::spawn(move || m2.enter(|g| g.wait_timeout(&positive, Duration::from_secs(5))));
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 1);
        assert!(waiter.join().unwrap());
        assert!(m.is_quiescent());
    }

    #[test]
    fn parked_closure_predicates_fall_back_to_the_monitor_lock() {
        // Opaque predicates route to the global gate and their
        // self-checks cannot decide — every wake confirms under the
        // monitor lock, which must still be correct (just less cheap).
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Parked).validate_relay(true),
        ));
        let divisible = m.compile(|s: &Counter| s.value % 7 == 0 && s.value > 0);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| g.wait(&divisible));
        });
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 14);
        waiter.join().unwrap();
        assert!(m.is_quiescent());
    }

    struct Pair {
        x: Tracked<i64>,
        y: Tracked<i64>,
    }

    impl TrackedState for Pair {
        fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
            f(&mut self.x);
            f(&mut self.y);
        }
    }

    fn tracked_pair(
        config: MonitorConfig,
    ) -> (Arc<Monitor<Pair>>, ExprHandle<Pair>, ExprHandle<Pair>) {
        let m = Arc::new(Monitor::with_config(
            Pair {
                x: Tracked::new(0),
                y: Tracked::new(0),
            },
            config.validate_relay(true),
        ));
        let x = m.register_expr("x", |s: &Pair| *s.x.get());
        let y = m.register_expr("y", |s: &Pair| *s.y.get());
        m.bind(|s| &mut s.x, &[x]);
        m.bind(|s| &mut s.y, &[y]);
        (m, x, y)
    }

    #[test]
    fn tracked_writes_narrow_the_diff() {
        let (m, x, y) = tracked_pair(MonitorConfig::preset(SignalMode::Sharded));
        let x_cond = m.compile(x.ge(5));
        let y_cond = m.compile(y.ge(5));
        // Two pinned waiters keep both expressions in the dependency
        // set; x's waiter is released at the end.
        let m2 = Arc::clone(&m);
        let wx = thread::spawn(move || m2.enter_tracked(|g| g.wait(&x_cond)));
        let m3 = Arc::clone(&m);
        let y_cond2 = y_cond.clone();
        let wy = thread::spawn(move || m3.enter_tracked(|g| g.wait(&y_cond2)));
        thread::sleep(Duration::from_millis(30));
        let before = m.stats_snapshot().counters;
        // Tracked writes touch only x: the diff must skip y — without
        // the caller naming anything.
        for _ in 0..10 {
            m.enter_tracked(|g| {
                *g.state_mut().x += 0; // mutated but value unchanged
            });
        }
        let diff = m.stats_snapshot().counters.since(&before);
        assert_eq!(diff.named_mutations, 10, "every write was auto-named");
        assert!(
            diff.expr_evals <= 12,
            "tracked diffs must evaluate only x (+slack for waiter \
             registration races), got {} expr evals",
            diff.expr_evals
        );
        m.enter_tracked(|g| *g.state_mut().x = 5);
        wx.join().unwrap();
        m.with_tracked(|s| *s.y = 5);
        wy.join().unwrap();
        assert!(m.is_quiescent());
    }

    #[test]
    fn tracked_writes_wake_parked_waiters() {
        let (m, x, _y) = tracked_pair(MonitorConfig::preset(SignalMode::Parked));
        let x_cond = m.compile(x.ge(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter_tracked(|g| {
                g.wait(&x_cond);
                *g.state().x.get()
            })
        });
        thread::sleep(Duration::from_millis(20));
        m.with_tracked(|s| *s.x = 1);
        assert_eq!(waiter.join().unwrap(), 1);
        assert!(m.is_quiescent());
        assert!(m.stats_snapshot().counters.named_mutations >= 1);
    }

    #[test]
    fn unbound_tracked_writes_fall_back_to_blanket_mutations() {
        // A dirty cell with no bound expressions must not vanish from
        // the diff: the occupancy downgrades to a blanket mutation and
        // the waiter still wakes.
        struct Loose {
            v: Tracked<i64>,
        }
        impl TrackedState for Loose {
            fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut dyn TrackedCell)) {
                f(&mut self.v);
            }
        }
        let m = Arc::new(Monitor::with_config(
            Loose { v: Tracked::new(0) },
            MonitorConfig::preset(SignalMode::ChangeDriven).validate_relay(true),
        ));
        let v = m.register_expr("v", |s: &Loose| *s.v.get());
        // Deliberately NOT bound to the cell.
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter_tracked(|g| g.wait(&positive)));
        thread::sleep(Duration::from_millis(20));
        m.with_tracked(|s| *s.v = 1);
        waiter.join().unwrap();
        assert!(m.is_quiescent());
        assert_eq!(
            m.stats_snapshot().counters.named_mutations,
            0,
            "unbound writes must not claim the named-mutation contract"
        );
    }

    #[test]
    fn state_mut_touching_names_per_write() {
        // The dynamic naming entry point (the DSL runtime's path).
        struct Raw {
            x: i64,
            y: i64,
        }
        let m = Arc::new(Monitor::with_config(
            Raw { x: 0, y: 0 },
            MonitorConfig::preset(SignalMode::Sharded).validate_relay(true),
        ));
        let x = m.register_expr("x", |s: &Raw| s.x);
        let y = m.register_expr("y", |s: &Raw| s.y);
        assert_eq!(m.lookup_expr("y"), Some(y));
        let x_cond = m.compile(x.ge(5));
        let y_cond = m.compile(y.ge(5));
        let m2 = Arc::clone(&m);
        let wx = thread::spawn(move || m2.enter(|g| g.wait(&x_cond)));
        let m3 = Arc::clone(&m);
        let wy = thread::spawn(move || m3.enter(|g| g.wait(&y_cond)));
        thread::sleep(Duration::from_millis(30));
        let before = m.stats_snapshot().counters;
        for _ in 0..10 {
            m.enter(|g| {
                g.state_mut_touching(&[x.id()]).x += 0;
            });
        }
        let diff = m.stats_snapshot().counters.since(&before);
        assert_eq!(diff.named_mutations, 10);
        assert!(diff.expr_evals <= 12, "got {} expr evals", diff.expr_evals);
        m.enter(|g| g.state_mut_touching(&[x.id()]).x = 5);
        wx.join().unwrap();
        m.enter(|g| g.state_mut_touching(&[y.id()]).y = 5);
        wy.join().unwrap();
        assert!(m.is_quiescent());
    }

    #[test]
    fn latest_expr_snapshot_reads_without_the_monitor_lock() {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::Sharded),
        ));
        let v = value_expr(&m);
        let at_least_five = m.compile(v.ge(5));
        assert_eq!(m.latest_expr_snapshot(), None, "nothing published yet");
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter(|g| g.wait(&at_least_five)));
        thread::sleep(Duration::from_millis(20));
        for k in 1..=4 {
            m.with(|s| s.value = k);
        }
        // The waiter still waits (4 < 5), so `value` has an active
        // dependent and every diff published it. The ring read holds
        // the last consistent cut — readable while this thread occupies
        // the monitor, because it never touches the lock.
        m.enter(|g| {
            let _ = g.state();
            let (epoch, values) = m.latest_expr_snapshot().expect("diffs have been published");
            assert!(epoch >= 1);
            assert_eq!(values[v.id().index()], Some(4));
        });
        m.with(|s| s.value = 5);
        waiter.join().unwrap();
    }

    #[test]
    fn tagged_mode_publishes_no_snapshots() {
        let m = Monitor::new(Counter { value: 3 });
        let v = value_expr(&m);
        let cond = m.compile(v.ge(3));
        m.enter(|g| g.wait(&cond));
        assert_eq!(m.latest_expr_snapshot(), None);
    }

    #[test]
    fn change_driven_skips_relays_on_read_only_traffic() {
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::ChangeDriven),
        ));
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter(|g| g.wait(&positive)));
        thread::sleep(Duration::from_millis(20));
        // Read-only occupancies relay on exit (the paper's rule), but the
        // change-driven relay recognizes the unmutated state and skips
        // the search outright.
        let before = m.stats_snapshot().counters;
        for _ in 0..10 {
            m.enter(|g| {
                let _ = g.state().value;
            });
        }
        let diff = m.stats_snapshot().counters.since(&before);
        assert!(
            diff.relay_skips >= 9,
            "read-only relays should be skipped, got {} skips",
            diff.relay_skips
        );
        // At most one diff can land in the window (the waiter's own
        // registration relay when scheduling is slow); the read-only
        // occupancies themselves evaluate nothing.
        assert!(diff.expr_evals <= 1, "got {} expr evals", diff.expr_evals);
        m.with(|s| s.value = 1);
        waiter.join().unwrap();
    }

    #[test]
    fn stats_futile_wakeups_stay_zero_without_barging_conflicts() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let v = value_expr(&m);
        let exactly_one = m.compile(v.eq(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter(|g| g.wait(&exactly_one)));
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 1);
        waiter.join().unwrap();
        // Relay only signals threads whose predicate is true, and nobody
        // else runs: the wakeup cannot be futile.
        assert_eq!(m.stats_snapshot().counters.futile_wakeups, 0);
    }

    #[test]
    fn compiled_entry_is_reused_by_transient_waits() {
        // A compiled condition's persistent entry is the same table row
        // a later transient wait on the same predicate interns into.
        let m = Monitor::new(Counter { value: 1 });
        let v = value_expr(&m);
        let _pinned = m.compile(v.gt(0));
        let entries_before = m.counts().entries;
        m.enter(|g| g.wait_transient(v.gt(0)));
        assert_eq!(m.counts().entries, entries_before, "no duplicate entry");
    }

    #[test]
    fn uncontended_entries_take_the_fast_lane() {
        let m = Monitor::new(Counter { value: 0 });
        for _ in 0..10 {
            m.with(|s| s.value += 1);
        }
        m.enter(|g| g.state_mut().value += 1);
        let snap = m.stats_snapshot().counters;
        assert_eq!(snap.enters, 11);
        assert_eq!(
            snap.fast_path_enters, 11,
            "a quiescent monitor never touches the mutex"
        );
        assert_eq!(snap.signals, 0);
        assert_eq!(m.with(|s| s.value), 11);
    }

    #[test]
    fn fast_path_off_is_mutex_only() {
        let m = Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::default().fast_path(false),
        );
        for _ in 0..5 {
            m.with(|s| s.value += 1);
        }
        let snap = m.stats_snapshot().counters;
        assert_eq!(snap.enters, 5);
        assert_eq!(snap.fast_path_enters, 0, "the ablation never elides");
        assert_eq!(snap.fc_publishes, 0);
    }

    #[test]
    fn elided_mutations_reach_the_next_relay() {
        // A mutation made over the elided lane must not be lost: the
        // next slow-lane relay's change-driven diff has to see it. The
        // armed validator cross-checks every relay against a full scan.
        let m = Arc::new(Monitor::with_config(
            Counter { value: 0 },
            MonitorConfig::preset(SignalMode::ChangeDriven).validate_relay(true),
        ));
        let v = value_expr(&m);
        let done = m.compile(v.ge(3));
        m.with(|s| s.value = 2); // elided: no relay, mutation noted
        assert!(m.stats_snapshot().counters.fast_path_enters >= 1);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter(|g| g.wait(&done)));
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value += 1); // slow (the waiter holds presence)
        waiter.join().unwrap();
        assert!(m.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_with_panics() {
        let m = Monitor::new(Counter { value: 0 });
        m.enter(|_| {
            m.with(|s| s.value += 1);
        });
    }

    #[test]
    fn quiescence_is_reported() {
        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        assert!(m.is_quiescent());
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter(|g| g.wait(&positive)));
        thread::sleep(Duration::from_millis(20));
        assert!(!m.is_quiescent(), "a registered waiter shows up");
        m.with(|s| s.value = 1);
        waiter.join().unwrap();
        assert!(m.is_quiescent());
    }

    #[test]
    fn into_inner_returns_the_state() {
        let m = Monitor::new(Counter { value: 9 });
        m.with(|s| s.value += 1);
        assert_eq!(m.into_inner().value, 10);
    }

    #[test]
    fn holds_is_a_pure_check() {
        let m = Monitor::new(Counter { value: 3 });
        let v = value_expr(&m);
        m.enter(|g| {
            assert!(g.holds(v.ge(3)));
            assert!(!g.holds(v.ge(4)));
        });
        // Nothing was registered.
        let counts = m.counts();
        assert_eq!((counts.entries, counts.waiting), (0, 0));
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let m = Monitor::new(Counter { value: 0 });
        assert!(format!("{m:?}").contains("Monitor"));
        m.enter(|g| {
            assert!(format!("{g:?}").contains("held"));
        });
    }

    #[test]
    fn drain_trace_attributes_events_to_the_right_monitor() {
        use crate::telemetry::EventKind;
        // The recorder is process-global: serialize against the other
        // enable-toggling telemetry tests.
        let _guard = crate::telemetry::test_lock();
        crate::telemetry::set_enabled(true);

        let m = Arc::new(Monitor::new(Counter { value: 0 }));
        let other = Monitor::new(Counter { value: 0 });
        let v = value_expr(&m);
        let positive = m.compile(v.ge(1));
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.enter(|g| g.wait(&positive)));
        thread::sleep(Duration::from_millis(20));
        m.with(|s| s.value = 1);
        waiter.join().unwrap();
        other.with(|s| s.value = 7); // traffic on a different monitor

        let events = m.drain_trace();
        crate::telemetry::set_enabled(false);

        assert!(!events.is_empty(), "an enabled run records events");
        assert!(
            events.iter().all(|e| e.monitor != 0),
            "every event carries a monitor token"
        );
        assert!(
            events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "drained events are time-ordered"
        );
        // Both the waiter and the mutator entered this monitor.
        let enters = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::EnterElided | EventKind::EnterSlow | EventKind::EnterCombined
                )
            })
            .count();
        assert!(enters >= 2, "expected at least two enters, got {enters}");
        assert!(
            events.iter().any(|e| e.kind == EventKind::WaitRegistered),
            "the wait registration was recorded"
        );
        // The `other` monitor's traffic was filtered out (drained and
        // discarded), so a fresh drain has nothing left for it.
        assert!(other.drain_trace().is_empty());
    }
}
