//! Per-monitor instrumentation bundle.
//!
//! Every monitor (automatic, explicit, baseline) owns a [`MonitorStats`]
//! so the harness compares the mechanisms with identical bookkeeping.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use autosynch_metrics::counters::{CounterSnapshot, SyncCounters};
use autosynch_metrics::phase::{PhaseSnapshot, PhaseTimes};

/// Shared counters and phase timers for one monitor instance.
#[derive(Debug)]
pub struct MonitorStats {
    /// Event counters (signals, wakeups, predicate evaluations, ...).
    pub counters: SyncCounters,
    /// Per-phase wall-clock accumulators (Table 1).
    pub phases: PhaseTimes,
    /// Signaler-lock hold times: how long each relay call keeps the
    /// monitor lock busy doing signaling work. Recorded only while
    /// `phases` timing is enabled (clock reads are not free).
    pub hold: HoldTimes,
    /// Whole-occupancy enter→exit wall times: what a `Monitor::enter`
    /// (or `with`) costs end to end, the number the uncontended
    /// fast-path lane exists to shrink. Recorded only while timing is
    /// enabled, same as [`MonitorStats::hold`].
    pub enter_exit: HoldTimes,
    timed: bool,
}

impl MonitorStats {
    /// Creates a stats bundle; `timing` enables the phase accumulators.
    pub fn new(timing: bool) -> Arc<Self> {
        Arc::new(MonitorStats {
            counters: SyncCounters::new(),
            phases: if timing {
                PhaseTimes::enabled()
            } else {
                PhaseTimes::disabled()
            },
            hold: HoldTimes::new(),
            enter_exit: HoldTimes::new(),
            timed: timing,
        })
    }

    /// Whether per-phase/latency timing was enabled at construction.
    pub fn timing_enabled(&self) -> bool {
        self.timed
    }

    /// Captures both counter and phase snapshots.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.snapshot(),
            phases: self.phases.snapshot(),
            hold: self.hold.snapshot(),
            enter_exit: self.enter_exit.snapshot(),
        }
    }

    /// Resets counters and phase accumulators.
    pub fn reset(&self) {
        self.counters.reset();
        self.phases.reset();
        self.hold.reset();
        self.enter_exit.reset();
    }
}

/// Accumulated signaler-lock hold time: the in-lock duration of every
/// relay call (snapshot diffing, index probing, queue wakes — everything
/// the signaler does for *other* threads while occupying the monitor).
/// The parked mode exists to shrink this number: its relay neither
/// probes indexes nor evaluates waiters' predicates.
#[derive(Debug, Default)]
pub struct HoldTimes {
    nanos: AtomicU64,
    holds: AtomicU64,
}

impl HoldTimes {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one relay's in-lock duration.
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.holds.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the accumulated totals.
    pub fn snapshot(&self) -> HoldSnapshot {
        HoldSnapshot {
            nanos: self.nanos.load(Ordering::Relaxed),
            holds: self.holds.load(Ordering::Relaxed),
        }
    }

    /// Resets the accumulator to zero.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
        self.holds.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`HoldTimes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoldSnapshot {
    /// Total nanoseconds the signaler's relay work held the lock.
    pub nanos: u64,
    /// Number of recorded relay calls.
    pub holds: u64,
}

impl HoldSnapshot {
    /// Mean in-lock nanoseconds per relay call; `0` with no records.
    pub fn mean_nanos(&self) -> f64 {
        if self.holds == 0 {
            0.0
        } else {
            self.nanos as f64 / self.holds as f64
        }
    }

    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &HoldSnapshot) -> HoldSnapshot {
        HoldSnapshot {
            nanos: self.nanos.saturating_sub(earlier.nanos),
            holds: self.holds.saturating_sub(earlier.holds),
        }
    }
}

/// A point-in-time copy of [`MonitorStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Counter values.
    pub counters: CounterSnapshot,
    /// Phase times.
    pub phases: PhaseSnapshot,
    /// Signaler-lock hold times (zero unless timing was enabled).
    pub hold: HoldSnapshot,
    /// Whole-occupancy enter→exit wall times (zero unless timing was
    /// enabled).
    pub enter_exit: HoldSnapshot,
}

impl StatsSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.since(&earlier.counters),
            phases: self.phases.since(&earlier.phases),
            hold: self.hold.since(&earlier.hold),
            enter_exit: self.enter_exit.since(&earlier.enter_exit),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {}", self.counters, self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosynch_metrics::phase::Phase;
    use std::time::Duration;

    #[test]
    fn timing_flag_controls_phases() {
        let on = MonitorStats::new(true);
        on.phases.add(Phase::Lock, Duration::from_nanos(5));
        assert_eq!(on.snapshot().phases.nanos(Phase::Lock), 5);

        let off = MonitorStats::new(false);
        off.phases.add(Phase::Lock, Duration::from_nanos(5));
        assert_eq!(off.snapshot().phases.nanos(Phase::Lock), 0);
    }

    #[test]
    fn snapshot_and_since() {
        let s = MonitorStats::new(false);
        s.counters.record_signal();
        let first = s.snapshot();
        s.counters.record_signal();
        s.counters.record_wakeup();
        let diff = s.snapshot().since(&first);
        assert_eq!(diff.counters.signals, 1);
        assert_eq!(diff.counters.wakeups, 1);
    }

    #[test]
    fn reset_clears_both() {
        let s = MonitorStats::new(true);
        s.counters.record_signal();
        s.phases.add(Phase::Await, Duration::from_nanos(9));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn enter_exit_times_accumulate() {
        let s = MonitorStats::new(true);
        assert!(s.timing_enabled());
        s.enter_exit.record(Duration::from_nanos(40));
        s.enter_exit.record(Duration::from_nanos(60));
        let snap = s.snapshot().enter_exit;
        assert_eq!(snap.holds, 2);
        assert!((snap.mean_nanos() - 50.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot().enter_exit, HoldSnapshot::default());
        assert!(!MonitorStats::new(false).timing_enabled());
    }

    #[test]
    fn hold_times_accumulate_and_average() {
        let s = MonitorStats::new(true);
        s.hold.record(Duration::from_nanos(100));
        s.hold.record(Duration::from_nanos(300));
        let snap = s.snapshot().hold;
        assert_eq!(snap.nanos, 400);
        assert_eq!(snap.holds, 2);
        assert!((snap.mean_nanos() - 200.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot().hold, HoldSnapshot::default());
        assert_eq!(HoldSnapshot::default().mean_nanos(), 0.0);
    }

    #[test]
    fn hold_since_is_component_wise() {
        let a = HoldSnapshot {
            nanos: 500,
            holds: 5,
        };
        let b = HoldSnapshot {
            nanos: 200,
            holds: 2,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            HoldSnapshot {
                nanos: 300,
                holds: 3
            }
        );
    }

    #[test]
    fn display_combines_parts() {
        let s = MonitorStats::new(false);
        let text = s.snapshot().to_string();
        assert!(text.contains("signals="));
        assert!(text.contains("total="));
    }
}
