//! Per-monitor instrumentation bundle.
//!
//! Every monitor (automatic, explicit, baseline) owns a [`MonitorStats`]
//! so the harness compares the mechanisms with identical bookkeeping.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use autosynch_metrics::counters::{CounterSnapshot, SyncCounters};
use autosynch_metrics::hist::LogLinearHist;
use autosynch_metrics::phase::{PhaseSnapshot, PhaseTimes};

/// Shared counters and phase timers for one monitor instance.
#[derive(Debug)]
pub struct MonitorStats {
    /// Event counters (signals, wakeups, predicate evaluations, ...).
    pub counters: SyncCounters,
    /// Per-phase wall-clock accumulators (Table 1).
    pub phases: PhaseTimes,
    /// Signaler-lock hold times: how long each relay call keeps the
    /// monitor lock busy doing signaling work. Recorded only while
    /// `phases` timing is enabled (clock reads are not free).
    pub hold: HoldTimes,
    /// Whole-occupancy enter→exit wall times: what a `Monitor::enter`
    /// (or `with`) costs end to end, the number the uncontended
    /// fast-path lane exists to shrink. Recorded only while timing is
    /// enabled, same as [`MonitorStats::hold`].
    pub enter_exit: HoldTimes,
    /// Wait latencies: registration→satisfied wall time of every
    /// `wait`/`wait_transient` call, the production tail-latency
    /// metric. Recorded only while timing is enabled.
    pub wait: HoldTimes,
    timed: bool,
}

impl MonitorStats {
    /// Creates a stats bundle; `timing` enables the phase accumulators.
    pub fn new(timing: bool) -> Arc<Self> {
        Arc::new(MonitorStats {
            counters: SyncCounters::new(),
            phases: if timing {
                PhaseTimes::enabled()
            } else {
                PhaseTimes::disabled()
            },
            hold: HoldTimes::new(),
            enter_exit: HoldTimes::new(),
            wait: HoldTimes::new(),
            timed: timing,
        })
    }

    /// Whether per-phase/latency timing was enabled at construction.
    pub fn timing_enabled(&self) -> bool {
        self.timed
    }

    /// Captures both counter and phase snapshots.
    ///
    /// **Consistency contract:** the snapshot is per-field atomic but
    /// not globally consistent — fields recorded by concurrently
    /// running threads may be captured mid-update relative to each
    /// other. For the harness's before/after pattern this is benign
    /// (quiesce the workload, or accept one boundary event of skew);
    /// when an exact final reading *and* a zeroed restart are needed in
    /// one step, use [`MonitorStats::reset`], which drains instead of
    /// reading-then-zeroing.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.snapshot(),
            phases: self.phases.snapshot(),
            hold: self.hold.snapshot(),
            enter_exit: self.enter_exit.snapshot(),
            wait: self.wait.snapshot(),
        }
    }

    /// Resets counters and phase accumulators, returning the final
    /// values as of the reset.
    ///
    /// Unlike `snapshot()` followed by a zeroing pass — which loses any
    /// event recorded between the read and the zero — every field is
    /// drained by a single atomic swap, so each concurrent record lands
    /// in exactly one of {the returned snapshot, the zeroed stats}. A
    /// `snapshot().since(&earlier)` whose `earlier` straddles a
    /// concurrent `reset` would mix pre- and post-reset readings;
    /// prefer the drain pattern (`let final_ = stats.reset();`) at
    /// run boundaries.
    pub fn reset(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.drain(),
            phases: self.phases.drain(),
            hold: self.hold.drain(),
            enter_exit: self.enter_exit.drain(),
            wait: self.wait.drain(),
        }
    }
}

/// Accumulated signaler-lock hold time: the in-lock duration of every
/// relay call (snapshot diffing, index probing, queue wakes — everything
/// the signaler does for *other* threads while occupying the monitor).
/// The parked mode exists to shrink this number: its relay neither
/// probes indexes nor evaluates waiters' predicates.
///
/// Besides the mean (`nanos`/`holds`), every record also lands in a
/// log-linear histogram so snapshots carry p50/p90/p99/p999 quantiles —
/// recording is three relaxed `fetch_add`s plus one histogram-bucket
/// `fetch_add`, still lock-free from any thread.
#[derive(Debug, Default)]
pub struct HoldTimes {
    nanos: AtomicU64,
    holds: AtomicU64,
    hist: LogLinearHist,
}

impl HoldTimes {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one relay's in-lock duration.
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        self.nanos.fetch_add(ns, Ordering::Relaxed);
        self.holds.fetch_add(1, Ordering::Relaxed);
        self.hist.record(ns);
    }

    /// Captures the accumulated totals and distribution quantiles.
    pub fn snapshot(&self) -> HoldSnapshot {
        let h = self.hist.snapshot();
        HoldSnapshot {
            nanos: self.nanos.load(Ordering::Relaxed),
            holds: self.holds.load(Ordering::Relaxed),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }

    /// Resets the accumulator to zero.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
        self.holds.store(0, Ordering::Relaxed);
        self.hist.reset();
    }

    /// Atomically swaps the accumulator to zero and returns the final
    /// reading (totals and quantiles). Per-field atomic; see
    /// [`MonitorStats::reset`] for the contract.
    pub fn drain(&self) -> HoldSnapshot {
        let h = self.hist.drain();
        HoldSnapshot {
            nanos: self.nanos.swap(0, Ordering::Relaxed),
            holds: self.holds.swap(0, Ordering::Relaxed),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// A point-in-time copy of [`HoldTimes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoldSnapshot {
    /// Total nanoseconds the signaler's relay work held the lock.
    pub nanos: u64,
    /// Number of recorded relay calls.
    pub holds: u64,
    /// Median recorded duration (ns, log-linear bucket upper bound —
    /// within ~3.1% above the exact order statistic, never below).
    pub p50: u64,
    /// 90th-percentile recorded duration (ns, same bounding).
    pub p90: u64,
    /// 99th-percentile recorded duration (ns, same bounding).
    pub p99: u64,
    /// 99.9th-percentile recorded duration (ns, same bounding).
    pub p999: u64,
}

impl HoldSnapshot {
    /// Mean in-lock nanoseconds per relay call; `0` with no records.
    pub fn mean_nanos(&self) -> f64 {
        if self.holds == 0 {
            0.0
        } else {
            self.nanos as f64 / self.holds as f64
        }
    }

    /// Component-wise difference `self - earlier` for the additive
    /// totals (`nanos`, `holds`), saturating at zero. Quantiles are
    /// order statistics, not additive — the difference keeps `self`'s
    /// values, i.e. the quantiles over the *whole* window ending at
    /// `self`. For window-exact quantiles, drain at the window start
    /// with [`MonitorStats::reset`] and snapshot at the end.
    pub fn since(&self, earlier: &HoldSnapshot) -> HoldSnapshot {
        HoldSnapshot {
            nanos: self.nanos.saturating_sub(earlier.nanos),
            holds: self.holds.saturating_sub(earlier.holds),
            p50: self.p50,
            p90: self.p90,
            p99: self.p99,
            p999: self.p999,
        }
    }
}

/// A point-in-time copy of [`MonitorStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Counter values.
    pub counters: CounterSnapshot,
    /// Phase times.
    pub phases: PhaseSnapshot,
    /// Signaler-lock hold times (zero unless timing was enabled).
    pub hold: HoldSnapshot,
    /// Whole-occupancy enter→exit wall times (zero unless timing was
    /// enabled).
    pub enter_exit: HoldSnapshot,
    /// Wait latencies, registration→satisfied (zero unless timing was
    /// enabled).
    pub wait: HoldSnapshot,
}

impl StatsSnapshot {
    /// Component-wise difference `self - earlier` (quantile fields keep
    /// `self`'s whole-window values; see [`HoldSnapshot::since`]).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.since(&earlier.counters),
            phases: self.phases.since(&earlier.phases),
            hold: self.hold.since(&earlier.hold),
            enter_exit: self.enter_exit.since(&earlier.enter_exit),
            wait: self.wait.since(&earlier.wait),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {}", self.counters, self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosynch_metrics::phase::Phase;
    use std::time::Duration;

    #[test]
    fn timing_flag_controls_phases() {
        let on = MonitorStats::new(true);
        on.phases.add(Phase::Lock, Duration::from_nanos(5));
        assert_eq!(on.snapshot().phases.nanos(Phase::Lock), 5);

        let off = MonitorStats::new(false);
        off.phases.add(Phase::Lock, Duration::from_nanos(5));
        assert_eq!(off.snapshot().phases.nanos(Phase::Lock), 0);
    }

    #[test]
    fn snapshot_and_since() {
        let s = MonitorStats::new(false);
        s.counters.record_signal();
        let first = s.snapshot();
        s.counters.record_signal();
        s.counters.record_wakeup();
        let diff = s.snapshot().since(&first);
        assert_eq!(diff.counters.signals, 1);
        assert_eq!(diff.counters.wakeups, 1);
    }

    #[test]
    fn reset_clears_both() {
        let s = MonitorStats::new(true);
        s.counters.record_signal();
        s.phases.add(Phase::Await, Duration::from_nanos(9));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn reset_returns_the_final_reading() {
        let s = MonitorStats::new(true);
        s.counters.record_signal();
        s.counters.record_signal();
        s.hold.record(Duration::from_nanos(128));
        s.wait.record(Duration::from_nanos(640));
        let final_ = s.reset();
        assert_eq!(final_.counters.signals, 2);
        assert_eq!(final_.hold.holds, 1);
        assert_eq!(final_.wait.holds, 1);
        assert!(final_.wait.p999 >= 640);
        // Drained: the live stats restart from zero.
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn enter_exit_times_accumulate() {
        let s = MonitorStats::new(true);
        assert!(s.timing_enabled());
        s.enter_exit.record(Duration::from_nanos(40));
        s.enter_exit.record(Duration::from_nanos(60));
        let snap = s.snapshot().enter_exit;
        assert_eq!(snap.holds, 2);
        assert!((snap.mean_nanos() - 50.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot().enter_exit, HoldSnapshot::default());
        assert!(!MonitorStats::new(false).timing_enabled());
    }

    #[test]
    fn hold_times_accumulate_and_average() {
        let s = MonitorStats::new(true);
        s.hold.record(Duration::from_nanos(100));
        s.hold.record(Duration::from_nanos(300));
        let snap = s.snapshot().hold;
        assert_eq!(snap.nanos, 400);
        assert_eq!(snap.holds, 2);
        assert!((snap.mean_nanos() - 200.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot().hold, HoldSnapshot::default());
        assert_eq!(HoldSnapshot::default().mean_nanos(), 0.0);
    }

    #[test]
    fn hold_snapshots_carry_quantiles() {
        let h = HoldTimes::new();
        for ns in 1..=1000u64 {
            h.record(Duration::from_nanos(ns));
        }
        let snap = h.snapshot();
        assert_eq!(snap.holds, 1000);
        // Upper-bound reporting: each quantile is at least the exact
        // order statistic and within the histogram's ~3.1% bucket.
        assert!(snap.p50 >= 500 && snap.p50 <= 520);
        assert!(snap.p90 >= 900 && snap.p90 <= 936);
        assert!(snap.p99 >= 990 && snap.p99 <= 1030);
        assert!(snap.p999 >= 999 && snap.p999 <= 1040);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.p999);
    }

    #[test]
    fn hold_since_is_component_wise() {
        let a = HoldSnapshot {
            nanos: 500,
            holds: 5,
            ..HoldSnapshot::default()
        };
        let b = HoldSnapshot {
            nanos: 200,
            holds: 2,
            ..HoldSnapshot::default()
        };
        let d = a.since(&b);
        assert_eq!(d.nanos, 300);
        assert_eq!(d.holds, 3);
    }

    #[test]
    fn since_keeps_latest_window_quantiles() {
        let h = HoldTimes::new();
        h.record(Duration::from_nanos(100));
        let first = h.snapshot();
        h.record(Duration::from_nanos(900));
        let diff = h.snapshot().since(&first);
        assert_eq!(diff.holds, 1);
        // Quantiles are whole-window (not subtractable): p999 covers
        // both records.
        assert!(diff.p999 >= 900);
    }

    #[test]
    fn display_combines_parts() {
        let s = MonitorStats::new(false);
        let text = s.snapshot().to_string();
        assert!(text.contains("signals="));
        assert!(text.contains("total="));
    }
}
