//! Per-monitor instrumentation bundle.
//!
//! Every monitor (automatic, explicit, baseline) owns a [`MonitorStats`]
//! so the harness compares the mechanisms with identical bookkeeping.

use std::fmt;
use std::sync::Arc;

use autosynch_metrics::counters::{CounterSnapshot, SyncCounters};
use autosynch_metrics::phase::{PhaseSnapshot, PhaseTimes};

/// Shared counters and phase timers for one monitor instance.
#[derive(Debug)]
pub struct MonitorStats {
    /// Event counters (signals, wakeups, predicate evaluations, ...).
    pub counters: SyncCounters,
    /// Per-phase wall-clock accumulators (Table 1).
    pub phases: PhaseTimes,
}

impl MonitorStats {
    /// Creates a stats bundle; `timing` enables the phase accumulators.
    pub fn new(timing: bool) -> Arc<Self> {
        Arc::new(MonitorStats {
            counters: SyncCounters::new(),
            phases: if timing {
                PhaseTimes::enabled()
            } else {
                PhaseTimes::disabled()
            },
        })
    }

    /// Captures both counter and phase snapshots.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.snapshot(),
            phases: self.phases.snapshot(),
        }
    }

    /// Resets counters and phase accumulators.
    pub fn reset(&self) {
        self.counters.reset();
        self.phases.reset();
    }
}

/// A point-in-time copy of [`MonitorStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Counter values.
    pub counters: CounterSnapshot,
    /// Phase times.
    pub phases: PhaseSnapshot,
}

impl StatsSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counters.since(&earlier.counters),
            phases: self.phases.since(&earlier.phases),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {}", self.counters, self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosynch_metrics::phase::Phase;
    use std::time::Duration;

    #[test]
    fn timing_flag_controls_phases() {
        let on = MonitorStats::new(true);
        on.phases.add(Phase::Lock, Duration::from_nanos(5));
        assert_eq!(on.snapshot().phases.nanos(Phase::Lock), 5);

        let off = MonitorStats::new(false);
        off.phases.add(Phase::Lock, Duration::from_nanos(5));
        assert_eq!(off.snapshot().phases.nanos(Phase::Lock), 0);
    }

    #[test]
    fn snapshot_and_since() {
        let s = MonitorStats::new(false);
        s.counters.record_signal();
        let first = s.snapshot();
        s.counters.record_signal();
        s.counters.record_wakeup();
        let diff = s.snapshot().since(&first);
        assert_eq!(diff.counters.signals, 1);
        assert_eq!(diff.counters.wakeups, 1);
    }

    #[test]
    fn reset_clears_both() {
        let s = MonitorStats::new(true);
        s.counters.record_signal();
        s.phases.add(Phase::Await, Duration::from_nanos(9));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn display_combines_parts() {
        let s = MonitorStats::new(false);
        let text = s.snapshot().to_string();
        assert!(text.contains("signals="));
        assert!(text.contains("total="));
    }
}
