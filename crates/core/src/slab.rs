//! A minimal slab allocator with stable keys.
//!
//! The condition manager needs stable identifiers for predicate entries
//! (and the indexed heap for its nodes) that survive insertions and
//! removals. This is the classic `Vec<Option<T>>` + free-list slab,
//! implemented locally so the runtime has no dependencies beyond
//! `parking_lot`.

use std::fmt;

/// A stable key into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey(u32);

impl SlabKey {
    /// The raw index (for diagnostics).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A slab of `T` with O(1) insert/remove and stable keys.
///
/// # Examples
///
/// ```
/// use autosynch::slab::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab[a], "alpha");
/// slab.remove(a);
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab[b], "beta");
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value and returns its stable key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.entries[slot as usize].is_none());
                self.entries[slot as usize] = Some(value);
                SlabKey(slot)
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("slab exceeded u32::MAX slots");
                self.entries.push(Some(value));
                SlabKey(slot)
            }
        }
    }

    /// Removes and returns the value at `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of range.
    pub fn remove(&mut self, key: SlabKey) -> T {
        let value = self.entries[key.index()]
            .take()
            .expect("slab key is vacant");
        self.free.push(key.0);
        self.len -= 1;
        value
    }

    /// Returns the value at `key`, if occupied.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        self.entries.get(key.index()).and_then(Option::as_ref)
    }

    /// Returns the value at `key` mutably, if occupied.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        self.entries.get_mut(key.index()).and_then(Option::as_mut)
    }

    /// Whether `key` refers to an occupied slot.
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over `(key, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (SlabKey(i as u32), v)))
    }
}

impl<T> std::ops::Index<SlabKey> for Slab<T> {
    type Output = T;

    fn index(&self, key: SlabKey) -> &T {
        self.get(key).expect("slab key is vacant")
    }
}

impl<T> std::ops::IndexMut<SlabKey> for Slab<T> {
    fn index_mut(&mut self, key: SlabKey) -> &mut T {
        self.get_mut(key).expect("slab key is vacant")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], 10);
        assert_eq!(slab[b], 20);
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.get(a), None);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_reused() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        assert_eq!(a.index(), b.index());
        assert_eq!(slab[b], 2);
    }

    #[test]
    fn keys_stay_stable_across_other_removals() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        slab.remove(keys[3]);
        slab.remove(keys[7]);
        for (i, &k) in keys.iter().enumerate() {
            if i == 3 || i == 7 {
                assert_eq!(slab.get(k), None);
            } else {
                assert_eq!(slab[k], i);
            }
        }
    }

    #[test]
    fn iter_yields_occupied_in_slot_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        slab.remove(b);
        let collected: Vec<_> = slab.iter().collect();
        assert_eq!(collected, vec![(a, &"a"), (c, &"c")]);
    }

    #[test]
    fn get_mut_mutates() {
        let mut slab = Slab::new();
        let a = slab.insert(5);
        *slab.get_mut(a).unwrap() += 1;
        slab[a] += 1;
        assert_eq!(slab[a], 7);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn remove_vacant_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn empty_checks() {
        let mut slab: Slab<u8> = Slab::new();
        assert!(slab.is_empty());
        let k = slab.insert(0);
        assert!(!slab.is_empty());
        slab.remove(k);
        assert!(slab.is_empty());
    }
}
