//! The threshold-tag index (§4.3.2, "Threshold tag signaling") and the
//! search of Fig. 4.
//!
//! Per shared expression the paper keeps a **min-heap** for `{>, >=}` tags
//! and a **max-heap** for `{<, <=}` tags, ordered so the *weakest*
//! condition sits at the root: if the root tag is false every descendant
//! is false too, and the whole side is pruned with one comparison. At
//! equal keys the inclusive operator (`>=`/`<=`) is weaker and sorts
//! first.
//!
//! The search is Fig. 4 verbatim: peek the root; while the root tag is
//! true, evaluate the predicates carrying it; if none is signalable, poll
//! the node to a backup list and look at the new root; finally reinsert
//! the backups.
//!
//! Both sides are realized over one min-[`IndexedHeap`] by mapping
//! `(key, strictness)` to a *rank*: `2·key + strict` on the min side and
//! `−2·key + strict` on the max side, so ascending rank always means
//! weakest-to-strongest. An ordered-map variant
//! ([`ThresholdIndexKind::OrderedMap`]) exists as an ablation — it walks
//! the same ranks in order without the backup dance.

use std::collections::{BTreeMap, HashMap};

use autosynch_predicate::expr::ExprId;
use autosynch_predicate::tag::ThresholdOp;

use crate::config::ThresholdIndexKind;
use crate::eq_index::TaggedConj;
use crate::indexed_heap::{IndexedHeap, NodeId};

/// Which heap a tag belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SideKind {
    /// `{>, >=}` — weakest condition has the smallest key.
    Min,
    /// `{<, <=}` — weakest condition has the largest key.
    Max,
}

impl SideKind {
    fn of(op: ThresholdOp) -> SideKind {
        if op.is_min_side() {
            SideKind::Min
        } else {
            SideKind::Max
        }
    }

    /// Heap rank: ascending rank = weakest condition first.
    fn rank(self, key: i64, inclusive: bool) -> i128 {
        let strict = i128::from(!inclusive);
        match self {
            SideKind::Min => 2 * i128::from(key) + strict,
            SideKind::Max => -2 * i128::from(key) + strict,
        }
    }

    /// Whether the tag `expr op key` is true for the current `value` of
    /// the expression.
    fn tag_true(self, value: i64, key: i64, inclusive: bool) -> bool {
        match (self, inclusive) {
            (SideKind::Min, true) => value >= key,
            (SideKind::Min, false) => value > key,
            (SideKind::Max, true) => value <= key,
            (SideKind::Max, false) => value < key,
        }
    }
}

/// One distinct threshold tag with the conjunctions that carry it.
#[derive(Debug, Clone)]
struct Bucket {
    key: i64,
    inclusive: bool,
    entries: Vec<TaggedConj>,
}

/// One side (min or max) for one shared expression.
enum SideStore {
    Heap {
        heap: IndexedHeap<i128, Bucket>,
        nodes: HashMap<i128, NodeId>,
    },
    Map(BTreeMap<i128, Bucket>),
}

impl std::fmt::Debug for SideStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SideStore::Heap { heap, .. } => write!(f, "Heap(len={})", heap.len()),
            SideStore::Map(map) => write!(f, "Map(len={})", map.len()),
        }
    }
}

impl SideStore {
    fn new(kind: ThresholdIndexKind) -> Self {
        match kind {
            ThresholdIndexKind::PaperHeap => SideStore::Heap {
                heap: IndexedHeap::new(),
                nodes: HashMap::new(),
            },
            ThresholdIndexKind::OrderedMap => SideStore::Map(BTreeMap::new()),
        }
    }

    fn insert(&mut self, side: SideKind, key: i64, inclusive: bool, entry: TaggedConj) {
        let rank = side.rank(key, inclusive);
        match self {
            SideStore::Heap { heap, nodes } => {
                if let Some(&id) = nodes.get(&rank) {
                    heap.value_mut(id).entries.push(entry);
                } else {
                    let id = heap.insert(
                        rank,
                        Bucket {
                            key,
                            inclusive,
                            entries: vec![entry],
                        },
                    );
                    nodes.insert(rank, id);
                }
            }
            SideStore::Map(map) => {
                map.entry(rank)
                    .or_insert_with(|| Bucket {
                        key,
                        inclusive,
                        entries: Vec::new(),
                    })
                    .entries
                    .push(entry);
            }
        }
    }

    fn remove(&mut self, side: SideKind, key: i64, inclusive: bool, entry: TaggedConj) {
        let rank = side.rank(key, inclusive);
        match self {
            SideStore::Heap { heap, nodes } => {
                let Some(&id) = nodes.get(&rank) else { return };
                let bucket = heap.value_mut(id);
                if let Some(pos) = bucket.entries.iter().position(|&e| e == entry) {
                    bucket.entries.swap_remove(pos);
                }
                if bucket.entries.is_empty() {
                    heap.remove(id);
                    nodes.remove(&rank);
                }
            }
            SideStore::Map(map) => {
                if let Some(bucket) = map.get_mut(&rank) {
                    if let Some(pos) = bucket.entries.iter().position(|&e| e == entry) {
                        bucket.entries.swap_remove(pos);
                    }
                    if bucket.entries.is_empty() {
                        map.remove(&rank);
                    }
                }
            }
        }
    }

    /// Fig. 4: walk tags from weakest to strongest while they are true,
    /// evaluating candidate conjunctions through `check`; stop at the
    /// first false tag.
    fn search(
        &mut self,
        side: SideKind,
        value: i64,
        check: &mut dyn FnMut(TaggedConj) -> bool,
    ) -> Option<TaggedConj> {
        match self {
            SideStore::Heap { heap, nodes } => {
                let mut backup: Vec<(i128, Bucket)> = Vec::new();
                let mut found = None;
                // "tag t = heap.peek(); while t is true ..."
                while let Some((id, _, bucket)) = heap.peek() {
                    if !side.tag_true(value, bucket.key, bucket.inclusive) {
                        break;
                    }
                    if let Some(hit) = bucket.entries.iter().copied().find(|&e| check(e)) {
                        found = Some(hit);
                        break;
                    }
                    // "backup.insert(heap.poll())"
                    let (rank, bucket) = heap.remove(id);
                    nodes.remove(&rank);
                    backup.push((rank, bucket));
                }
                // "foreach b in backup: heap.add(b)"
                for (rank, bucket) in backup {
                    let id = heap.insert(rank, bucket);
                    nodes.insert(rank, id);
                }
                found
            }
            SideStore::Map(map) => {
                for bucket in map.values() {
                    if !side.tag_true(value, bucket.key, bucket.inclusive) {
                        break;
                    }
                    if let Some(hit) = bucket.entries.iter().copied().find(|&e| check(e)) {
                        return Some(hit);
                    }
                }
                None
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            SideStore::Heap { heap, .. } => heap.iter().map(|(_, _, b)| b.entries.len()).sum(),
            SideStore::Map(map) => map.values().map(|b| b.entries.len()).sum(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            SideStore::Heap { heap, .. } => heap.is_empty(),
            SideStore::Map(map) => map.is_empty(),
        }
    }
}

/// The full threshold index: both sides for every shared expression.
#[derive(Debug)]
pub struct ThresholdIndex {
    kind: ThresholdIndexKind,
    sides: HashMap<(ExprId, bool), SideStore>, // bool = is_min_side
}

impl ThresholdIndex {
    /// Creates an empty index of the given implementation kind.
    pub fn new(kind: ThresholdIndexKind) -> Self {
        ThresholdIndex {
            kind,
            sides: HashMap::new(),
        }
    }

    /// Registers the threshold tag `(expr op key)` for a conjunction.
    pub fn insert(&mut self, expr: ExprId, key: i64, op: ThresholdOp, entry: TaggedConj) {
        let side = SideKind::of(op);
        self.sides
            .entry((expr, op.is_min_side()))
            .or_insert_with(|| SideStore::new(self.kind))
            .insert(side, key, op.is_inclusive(), entry);
    }

    /// Unregisters a previously inserted tag.
    pub fn remove(&mut self, expr: ExprId, key: i64, op: ThresholdOp, entry: TaggedConj) {
        let side = SideKind::of(op);
        if let Some(store) = self.sides.get_mut(&(expr, op.is_min_side())) {
            store.remove(side, key, op.is_inclusive(), entry);
            if store.is_empty() {
                self.sides.remove(&(expr, op.is_min_side()));
            }
        }
    }

    /// Expressions that currently carry at least one threshold tag.
    pub fn exprs(&self) -> impl Iterator<Item = ExprId> + '_ {
        let mut seen: Vec<ExprId> = self.sides.keys().map(|&(e, _)| e).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// Like [`ThresholdIndex::exprs`] but filling a caller-owned buffer,
    /// so per-relay hot paths avoid a fresh allocation.
    pub fn collect_exprs(&self, out: &mut Vec<ExprId>) {
        out.clear();
        out.extend(self.sides.keys().map(|&(e, _)| e));
        out.sort_unstable();
        out.dedup();
    }

    /// Runs the Fig. 4 search over both sides of `expr` given its current
    /// `value`. `check` evaluates a candidate conjunction; the first
    /// signalable candidate is returned.
    pub fn search(
        &mut self,
        expr: ExprId,
        value: i64,
        check: &mut dyn FnMut(TaggedConj) -> bool,
    ) -> Option<TaggedConj> {
        for is_min in [true, false] {
            if let Some(store) = self.sides.get_mut(&(expr, is_min)) {
                let side = if is_min { SideKind::Min } else { SideKind::Max };
                if let Some(hit) = store.search(side, value, check) {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// Total number of registered tags.
    pub fn len(&self) -> usize {
        self.sides.values().map(SideStore::len).sum()
    }

    /// Whether no tags are registered.
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::Slab;

    fn pids(n: usize) -> Vec<TaggedConj> {
        let mut slab = Slab::new();
        (0..n).map(|_| (slab.insert(()), 0u32)).collect()
    }

    fn index(kind: ThresholdIndexKind) -> ThresholdIndex {
        ThresholdIndex::new(kind)
    }

    fn both_kinds(test: impl Fn(ThresholdIndexKind)) {
        test(ThresholdIndexKind::PaperHeap);
        test(ThresholdIndexKind::OrderedMap);
    }

    #[test]
    fn min_side_prunes_when_root_false() {
        both_kinds(|kind| {
            // Tags: x >= 5 and x > 7 (paper's Q1, Q2 example).
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, 5, ThresholdOp::Ge, ps[0]);
            idx.insert(e, 7, ThresholdOp::Gt, ps[1]);

            // x = 3: root (>=5) false → nothing checked at all.
            let mut checked = Vec::new();
            let hit = idx.search(e, 3, &mut |c| {
                checked.push(c);
                false
            });
            assert_eq!(hit, None);
            assert!(checked.is_empty(), "root-false must prune everything");
        });
    }

    #[test]
    fn paper_q1_q2_walkthrough() {
        both_kinds(|kind| {
            // x = 9: Q1 (>=5) true but its predicate false; Q2 (>7) true
            // and its predicate true → signal P2, Q1 reinserted.
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, 5, ThresholdOp::Ge, ps[0]); // P1's tag Q1
            idx.insert(e, 7, ThresholdOp::Gt, ps[1]); // P2's tag Q2

            let p2 = ps[1];
            let hit = idx.search(e, 9, &mut |c| c == p2);
            assert_eq!(hit, Some(p2));

            // Q1 must be back in the structure: a later search where P1's
            // predicate is true finds it.
            let p1 = ps[0];
            let hit = idx.search(e, 9, &mut |c| c == p1);
            assert_eq!(hit, Some(p1));
        });
    }

    #[test]
    fn inclusive_sorts_before_strict_at_equal_keys() {
        both_kinds(|kind| {
            // x > 3 and x >= 3: at x == 3 only >= is true; the search must
            // probe >= (the weaker root) and stop before > .
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, 3, ThresholdOp::Gt, ps[0]);
            idx.insert(e, 3, ThresholdOp::Ge, ps[1]);
            let mut checked = Vec::new();
            let hit = idx.search(e, 3, &mut |c| {
                checked.push(c);
                true
            });
            assert_eq!(hit, Some(ps[1]));
            assert_eq!(
                checked,
                vec![ps[1]],
                "strict tag must not be probed at x==3"
            );
        });
    }

    #[test]
    fn max_side_mirrors_min_side() {
        both_kinds(|kind| {
            // Tags: x <= 3 (weaker) and x < 2 (stronger).
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, 2, ThresholdOp::Lt, ps[0]);
            idx.insert(e, 3, ThresholdOp::Le, ps[1]);

            // x = 4: both false, nothing probed.
            let mut count = 0;
            assert_eq!(
                idx.search(e, 4, &mut |_| {
                    count += 1;
                    false
                }),
                None
            );
            assert_eq!(count, 0);

            // x = 3: only <=3 true.
            let mut checked = Vec::new();
            idx.search(e, 3, &mut |c| {
                checked.push(c);
                false
            });
            assert_eq!(checked, vec![ps[1]]);

            // x = 1: both true; weakest (<=3) probed first.
            let mut checked = Vec::new();
            idx.search(e, 1, &mut |c| {
                checked.push(c);
                false
            });
            assert_eq!(checked, vec![ps[1], ps[0]]);
        });
    }

    #[test]
    fn shared_tags_bucket_together() {
        both_kinds(|kind| {
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(3);
            for &p in &ps {
                idx.insert(e, 10, ThresholdOp::Ge, p);
            }
            assert_eq!(idx.len(), 3);
            let mut checked = Vec::new();
            idx.search(e, 10, &mut |c| {
                checked.push(c);
                false
            });
            assert_eq!(checked.len(), 3);
        });
    }

    #[test]
    fn remove_clears_empty_structures() {
        both_kinds(|kind| {
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, 5, ThresholdOp::Ge, ps[0]);
            idx.insert(e, 5, ThresholdOp::Le, ps[1]);
            assert_eq!(idx.exprs().count(), 1);
            idx.remove(e, 5, ThresholdOp::Ge, ps[0]);
            idx.remove(e, 5, ThresholdOp::Le, ps[1]);
            assert!(idx.is_empty());
            assert_eq!(idx.exprs().count(), 0);
        });
    }

    #[test]
    fn search_respects_check_veto_then_continues() {
        both_kinds(|kind| {
            // Both tags true; the weakest's predicates all false → poll,
            // check next; the paper's backup/reinsert path.
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, 1, ThresholdOp::Ge, ps[0]);
            idx.insert(e, 2, ThresholdOp::Ge, ps[1]);
            let veto = ps[0];
            let hit = idx.search(e, 5, &mut |c| c != veto);
            assert_eq!(hit, Some(ps[1]));
            // Both still present afterwards.
            assert_eq!(idx.len(), 2);
            let hit = idx.search(e, 5, &mut |_| true);
            assert_eq!(hit, Some(ps[0]), "weakest probed first again");
        });
    }

    #[test]
    fn distinct_exprs_are_independent() {
        both_kinds(|kind| {
            let mut idx = index(kind);
            let (e0, e1) = (ExprId::from_raw(0), ExprId::from_raw(1));
            let ps = pids(2);
            idx.insert(e0, 5, ThresholdOp::Ge, ps[0]);
            idx.insert(e1, 5, ThresholdOp::Ge, ps[1]);
            let mut exprs: Vec<_> = idx.exprs().collect();
            exprs.sort();
            assert_eq!(exprs, vec![e0, e1]);
            let hit = idx.search(e1, 9, &mut |_| true);
            assert_eq!(hit, Some(ps[1]));
        });
    }

    #[test]
    fn extreme_keys_do_not_overflow_ranks() {
        both_kinds(|kind| {
            let mut idx = index(kind);
            let e = ExprId::from_raw(0);
            let ps = pids(2);
            idx.insert(e, i64::MAX, ThresholdOp::Ge, ps[0]);
            idx.insert(e, i64::MIN, ThresholdOp::Ge, ps[1]);
            // value = i64::MAX satisfies both; weakest (i64::MIN) first.
            let mut checked = Vec::new();
            idx.search(e, i64::MAX, &mut |c| {
                checked.push(c);
                false
            });
            assert_eq!(checked, vec![ps[1], ps[0]]);
        });
    }
}
