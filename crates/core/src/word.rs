//! The packed monitor word backing the uncontended enter/exit fast path.
//!
//! A single `AtomicU64` per monitor encodes everything the CAS
//! lock-elision lane needs to know before touching the mutex:
//!
//! ```text
//! bit 63 ........ 32 | 31 ............. 1 | 0
//!   fast-epoch (32)  |   presence (31)    | OCCUPIED
//! ```
//!
//! * **OCCUPIED** (bit 0) — set while a thread holds the monitor through
//!   the elided lane (no mutex held). The elided holder has exclusive
//!   access to `Inner<S>` by protocol, not by lock.
//! * **presence** (bits 1–31) — the number of threads currently inside
//!   the *slow-lane* protocol: every mutex-path occupancy holds one
//!   presence unit from enter to exit, **including while blocked in a
//!   wait** (condvar, parked, or routed). Because registered waiters
//!   keep their presence unit, `presence == 0` certifies that no waiter
//!   exists and no relay work can be pending — the quiescence the fast
//!   lane requires.
//! * **fast-epoch** (bits 32–63) — incremented on every successful
//!   elided acquisition. Purely observational (stats, tests, debugging);
//!   it wraps freely and never participates in the protocol itself.
//!
//! The elision protocol:
//!
//! * Fast enter: one-shot CAS from a fully quiescent word
//!   (`presence == 0 && !OCCUPIED`) to `OCCUPIED` with the epoch bumped.
//!   Any other state falls through to the mutex path.
//! * Slow enter: `join_slow` (presence += 1), then `await_fast_clear`
//!   (spin, then park on the gate while OCCUPIED is set), then lock the
//!   mutex. Once a slow enterer holds a presence unit and has observed
//!   `OCCUPIED == 0`, no fast acquisition can succeed again until it
//!   leaves — so locking the mutex afterwards cannot race an elided
//!   holder.
//! * Fast exit: clear OCCUPIED; if any presence units arrived while we
//!   held the word, wake the gate so spinners stop parking.
//! * Slow exit: drop the mutex guard first, then `leave_slow`
//!   (presence -= 1, `Release`) — the ordering makes every
//!   mutex-protected write visible to the next successful fast CAS,
//!   which loads with `Acquire`.
//!
//! Threads that re-lock the mutex mid-occupancy (condvar wake, parked
//! re-entry, routed claim) still hold their presence unit, so they never
//! need to consult the word again: an elided holder cannot coexist with
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Bit 0: set while an elided (mutex-free) holder occupies the monitor.
pub(crate) const OCCUPIED: u64 = 1;
/// First bit of the presence field.
pub(crate) const PRESENCE_SHIFT: u32 = 1;
/// Width of the presence field in bits.
pub(crate) const PRESENCE_BITS: u32 = 31;
/// One presence unit (the slow-lane enter/exit increment).
pub(crate) const PRESENCE_ONE: u64 = 1 << PRESENCE_SHIFT;
/// Mask selecting the presence field.
pub(crate) const PRESENCE_MASK: u64 = ((1u64 << PRESENCE_BITS) - 1) << PRESENCE_SHIFT;
/// First bit of the fast-epoch field.
pub(crate) const EPOCH_SHIFT: u32 = 32;
/// One epoch tick (added on each successful elided acquisition).
pub(crate) const EPOCH_ONE: u64 = 1 << EPOCH_SHIFT;
/// Mask selecting the fast-epoch field.
pub(crate) const EPOCH_MASK: u64 = !(OCCUPIED | PRESENCE_MASK);

// Lock the layout at compile time: the three fields must tile the u64
// exactly, with the unoccupied-and-unattended state being the all-zero
// niche the fast CAS targets. Future field additions that break any of
// these stop the build instead of silently corrupting the protocol.
const _: () = {
    assert!(OCCUPIED == 1, "OCCUPIED must be the lowest bit");
    assert!(
        PRESENCE_SHIFT == 1,
        "presence must sit directly above OCCUPIED"
    );
    assert!(
        PRESENCE_MASK == 0x0000_0000_FFFF_FFFE,
        "presence occupies bits 1..=31"
    );
    assert!(
        EPOCH_MASK == 0xFFFF_FFFF_0000_0000,
        "epoch occupies bits 32..=63"
    );
    assert!(
        OCCUPIED & PRESENCE_MASK == 0 && OCCUPIED & EPOCH_MASK == 0,
        "fields must not overlap"
    );
    assert!(PRESENCE_MASK & EPOCH_MASK == 0, "fields must not overlap");
    assert!(
        OCCUPIED | PRESENCE_MASK | EPOCH_MASK == u64::MAX,
        "fields must tile the whole word"
    );
    assert!(
        PRESENCE_ONE == 2 && EPOCH_ONE == 1 << 32,
        "field increments must match the shifts"
    );
    // The quiescent niche: epoch bits alone never block a fast CAS,
    // which compares only OCCUPIED | PRESENCE_MASK.
    assert!(!(EPOCH_MASK) & EPOCH_ONE == 0);
};

/// How many times a slow enterer spins on OCCUPIED before parking on
/// the gate. Elided occupancies are short (no waits are possible inside
/// them), so a brief spin usually avoids the syscall.
const FAST_CLEAR_SPINS: u32 = 64;

/// The per-monitor elision word plus the gate slow enterers park on
/// while an elided holder is inside.
pub(crate) struct MonitorWord {
    word: AtomicU64,
    gate: Mutex<()>,
    gate_cv: Condvar,
}

impl MonitorWord {
    /// A fresh, fully quiescent word.
    pub(crate) fn new() -> Self {
        MonitorWord {
            word: AtomicU64::new(0),
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
        }
    }

    /// One-shot attempt to acquire the elided lane. Succeeds only from a
    /// fully quiescent word (no holder, no slow-lane presence); bumps the
    /// fast epoch as it takes the OCCUPIED bit.
    pub(crate) fn try_acquire_fast(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        if w & (OCCUPIED | PRESENCE_MASK) != 0 {
            return false;
        }
        self.word
            .compare_exchange(
                w,
                w.wrapping_add(EPOCH_ONE) | OCCUPIED,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Release the elided lane. If slow enterers accumulated presence
    /// while we held the word they may be parked on the gate — wake them.
    pub(crate) fn release_fast(&self) {
        let prev = self.word.fetch_and(!OCCUPIED, Ordering::Release);
        debug_assert!(
            prev & OCCUPIED != 0,
            "release_fast without holding OCCUPIED"
        );
        if prev & PRESENCE_MASK != 0 {
            // Taking the gate lock orders this notify against any enterer
            // that checked OCCUPIED under the same lock (no lost wakeups).
            drop(self.gate.lock().unwrap_or_else(|p| p.into_inner()));
            self.gate_cv.notify_all();
        }
    }

    /// Enter the slow-lane protocol: take one presence unit. Must be
    /// paired with [`leave_slow`](Self::leave_slow) after the occupancy
    /// fully ends (including any waits).
    pub(crate) fn join_slow(&self) {
        let prev = self.word.fetch_add(PRESENCE_ONE, Ordering::AcqRel);
        debug_assert!(
            (prev & PRESENCE_MASK) != PRESENCE_MASK,
            "slow-lane presence overflow (2^31 concurrent occupancies)"
        );
    }

    /// Leave the slow-lane protocol. Call only after every reference into
    /// the mutex-protected state is dropped: the `Release` here is what
    /// publishes the occupancy's writes to the next fast-lane CAS.
    pub(crate) fn leave_slow(&self) {
        let prev = self.word.fetch_sub(PRESENCE_ONE, Ordering::AcqRel);
        debug_assert!(prev & PRESENCE_MASK != 0, "leave_slow without presence");
    }

    /// Block until no elided holder occupies the monitor. Caller must
    /// already hold a presence unit, which guarantees that once OCCUPIED
    /// reads clear it stays clear until the caller leaves.
    pub(crate) fn await_fast_clear(&self) {
        for _ in 0..FAST_CLEAR_SPINS {
            if self.word.load(Ordering::Acquire) & OCCUPIED == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        // Spins exhausted: this enterer is about to block on the gate
        // behind an elided holder — the contention signature the flight
        // recorder exists to surface.
        crate::telemetry::record(
            crate::telemetry::EventKind::GateWait,
            FAST_CLEAR_SPINS as u64,
            0,
        );
        let mut gate = self.gate.lock().unwrap_or_else(|p| p.into_inner());
        while self.word.load(Ordering::Acquire) & OCCUPIED != 0 {
            gate = self.gate_cv.wait(gate).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Number of elided acquisitions so far (wrapping, observational).
    #[cfg(test)]
    pub(crate) fn fast_epochs(&self) -> u64 {
        self.word.load(Ordering::Relaxed) >> EPOCH_SHIFT
    }

    /// Current slow-lane presence count (observational).
    #[cfg(test)]
    pub(crate) fn presence(&self) -> u64 {
        (self.word.load(Ordering::Relaxed) & PRESENCE_MASK) >> PRESENCE_SHIFT
    }

    /// Whether an elided holder currently occupies the monitor
    /// (observational; racy by nature).
    #[cfg(test)]
    pub(crate) fn is_fast_held(&self) -> bool {
        self.word.load(Ordering::Relaxed) & OCCUPIED != 0
    }
}

impl std::fmt::Debug for MonitorWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.word.load(Ordering::Relaxed);
        f.debug_struct("MonitorWord")
            .field("occupied", &(w & OCCUPIED != 0))
            .field("presence", &((w & PRESENCE_MASK) >> PRESENCE_SHIFT))
            .field("fast_epochs", &(w >> EPOCH_SHIFT))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn layout_is_locked() {
        // Runtime mirror of the const assertions, so a failure names the
        // field instead of aborting the build anonymously.
        assert_eq!(OCCUPIED, 1);
        assert_eq!(PRESENCE_MASK, 0x0000_0000_FFFF_FFFE);
        assert_eq!(EPOCH_MASK, 0xFFFF_FFFF_0000_0000);
        assert_eq!(OCCUPIED | PRESENCE_MASK | EPOCH_MASK, u64::MAX);
        assert_eq!(PRESENCE_ONE, 1 << PRESENCE_SHIFT);
        assert_eq!(EPOCH_ONE, 1 << EPOCH_SHIFT);
        // The quiescent state the fast CAS targets is all-zero in the
        // protocol fields regardless of accumulated epoch ticks.
        let w = MonitorWord::new();
        assert!(!w.is_fast_held());
        assert_eq!(w.presence(), 0);
    }

    #[test]
    fn fast_acquire_bumps_epoch_and_excludes() {
        let w = MonitorWord::new();
        assert!(w.try_acquire_fast());
        assert!(w.is_fast_held());
        assert_eq!(w.fast_epochs(), 1);
        assert!(!w.try_acquire_fast(), "reacquire while held must fail");
        w.release_fast();
        assert!(!w.is_fast_held());
        assert!(w.try_acquire_fast());
        assert_eq!(w.fast_epochs(), 2);
        w.release_fast();
    }

    #[test]
    fn presence_blocks_fast_acquire() {
        let w = MonitorWord::new();
        w.join_slow();
        assert!(!w.try_acquire_fast(), "presence must block elision");
        w.join_slow();
        w.leave_slow();
        assert!(!w.try_acquire_fast());
        w.leave_slow();
        assert!(w.try_acquire_fast());
        w.release_fast();
    }

    #[test]
    fn slow_enterers_park_until_fast_release() {
        let w = Arc::new(MonitorWord::new());
        assert!(w.try_acquire_fast());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    w.join_slow();
                    w.await_fast_clear();
                    w.leave_slow();
                })
            })
            .collect();
        // Let the enterers reach the gate, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.release_fast();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.presence(), 0);
        assert!(w.try_acquire_fast(), "word must return to quiescence");
        w.release_fast();
    }
}
