//! The explicit-signal monitor — the paper's comparison baseline.
//!
//! This is the classic Java/pthreads style (§2, "Explicit-signal
//! monitor"): the programmer declares named condition variables, waits on
//! them in a re-check loop, and is responsible for signaling the right
//! one (`signal`) or all of them (`signal_all`). It exists here so the
//! seven evaluation problems can be implemented the way the paper's
//! explicit versions are, with the **same instrumentation** as the
//! automatic monitors.
//!
//! # Examples
//!
//! The classic bounded buffer of Fig. 1 (left column), one-item ops:
//!
//! ```
//! use std::sync::Arc;
//! use autosynch::explicit::ExplicitMonitor;
//!
//! struct Buffer { items: Vec<u64>, cap: usize }
//!
//! let mut m = ExplicitMonitor::new(Buffer { items: Vec::new(), cap: 4 });
//! let not_full = m.add_condition();
//! let not_empty = m.add_condition();
//! let m = Arc::new(m);
//!
//! m.enter(|g| {
//!     g.wait_while(not_full, |b| b.items.len() == b.cap); // await in a loop
//!     g.state_mut().items.push(7);
//!     g.signal(not_empty);
//! });
//! assert_eq!(m.enter(|g| g.state().items.len()), 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use autosynch_metrics::phase::Phase;
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::stats::{MonitorStats, StatsSnapshot};

/// Identifier of a condition variable declared on an
/// [`ExplicitMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CondId(usize);

/// An explicit-signal monitor over state `S` with named condition
/// variables.
pub struct ExplicitMonitor<S> {
    inner: Mutex<S>,
    conds: Vec<Condvar>,
    stats: Arc<MonitorStats>,
    owner: AtomicU64,
}

impl<S> std::fmt::Debug for ExplicitMonitor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplicitMonitor")
            .field("conditions", &self.conds.len())
            .finish()
    }
}

mod thread_id {
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }

    pub fn current() -> u64 {
        ID.with(|id| *id)
    }
}

impl<S> ExplicitMonitor<S> {
    /// Creates a monitor with no condition variables yet; declare them
    /// with [`ExplicitMonitor::add_condition`] before sharing.
    pub fn new(state: S) -> Self {
        Self::with_conditions(state, 0)
    }

    /// Creates a monitor with `n` condition variables (ids `0..n`).
    pub fn with_conditions(state: S, n: usize) -> Self {
        ExplicitMonitor {
            inner: Mutex::new(state),
            conds: (0..n).map(|_| Condvar::new()).collect(),
            stats: MonitorStats::new(false),
            owner: AtomicU64::new(0),
        }
    }

    /// Enables per-phase timing (Table 1 runs).
    pub fn enable_timing(&self) {
        self.stats.phases.set_enabled(true);
    }

    /// Declares one more condition variable. Requires exclusive access,
    /// i.e. happens during setup.
    pub fn add_condition(&mut self) -> CondId {
        self.conds.push(Condvar::new());
        CondId(self.conds.len() - 1)
    }

    /// Declares `n` condition variables (e.g. one per thread for the
    /// round-robin pattern).
    pub fn add_conditions(&mut self, n: usize) -> Vec<CondId> {
        (0..n).map(|_| self.add_condition()).collect()
    }

    /// Number of declared condition variables.
    pub fn condition_count(&self) -> usize {
        self.conds.len()
    }

    /// Enters the monitor and runs `f` under mutual exclusion.
    ///
    /// # Panics
    ///
    /// Panics when called re-entrantly from the same thread.
    pub fn enter<R>(&self, f: impl FnOnce(&mut ExplicitGuard<'_, S>) -> R) -> R {
        let me = thread_id::current();
        assert_ne!(
            self.owner.load(Ordering::Relaxed),
            me,
            "ExplicitMonitor::enter called re-entrantly from the same thread"
        );
        self.stats.counters.record_enter();
        let lock_timer = self.stats.phases.start(Phase::Lock);
        let guard = self.inner.lock();
        lock_timer.finish();
        self.owner.store(me, Ordering::Relaxed);
        let mut g = ExplicitGuard {
            monitor: self,
            inner: Some(guard),
        };
        let r = f(&mut g);
        drop(g);
        r
    }

    /// Convenience: enter and mutate the state.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        self.enter(|g| f(g.state_mut()))
    }

    /// The instrumentation bundle.
    pub fn stats(&self) -> &Arc<MonitorStats> {
        &self.stats
    }

    /// A point-in-time snapshot of the instrumentation.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

/// The in-monitor view for [`ExplicitMonitor::enter`] closures.
pub struct ExplicitGuard<'a, S> {
    monitor: &'a ExplicitMonitor<S>,
    inner: Option<MutexGuard<'a, S>>,
}

impl<S> std::fmt::Debug for ExplicitGuard<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplicitGuard")
            .field("held", &self.inner.is_some())
            .finish()
    }
}

impl<S> ExplicitGuard<'_, S> {
    /// Shared access to the monitor state.
    pub fn state(&self) -> &S {
        self.inner.as_ref().expect("guard released")
    }

    /// Mutable access to the monitor state.
    pub fn state_mut(&mut self) -> &mut S {
        self.inner.as_mut().expect("guard released")
    }

    /// One bare `await` on `cond` (no predicate re-check — the caller
    /// loops, exactly like Java's `Condition.await`).
    pub fn wait(&mut self, cond: CondId) {
        let monitor = self.monitor;
        monitor.stats.counters.record_wait();
        self.block_on(cond);
    }

    fn block_on(&mut self, cond: CondId) {
        let monitor = self.monitor;
        let cv = &monitor.conds[cond.0];
        monitor.owner.store(0, Ordering::Relaxed);
        let timer = monitor.stats.phases.start(Phase::Await);
        cv.wait(self.inner.as_mut().expect("guard released"));
        timer.finish();
        monitor.owner.store(thread_id::current(), Ordering::Relaxed);
        monitor.stats.counters.record_wakeup();
    }

    /// The canonical explicit-monitor idiom `while (pred) cond.await()`.
    /// Returns when `pred(state)` is false. Wakeups that find the
    /// predicate still true are counted as futile.
    pub fn wait_while(&mut self, cond: CondId, pred: impl Fn(&S) -> bool) {
        let monitor = self.monitor;
        monitor.stats.counters.record_pred_eval();
        if !pred(self.state()) {
            return;
        }
        monitor.stats.counters.record_wait();
        loop {
            self.block_on(cond);
            monitor.stats.counters.record_pred_eval();
            if !pred(self.state()) {
                return;
            }
            monitor.stats.counters.record_futile_wakeup();
        }
    }

    /// Like [`ExplicitGuard::wait`] but with a timeout; returns `false`
    /// on timeout.
    pub fn wait_timeout(&mut self, cond: CondId, timeout: Duration) -> bool {
        let monitor = self.monitor;
        monitor.stats.counters.record_wait();
        let cv = &monitor.conds[cond.0];
        monitor.owner.store(0, Ordering::Relaxed);
        let timer = monitor.stats.phases.start(Phase::Await);
        let result = cv.wait_for(self.inner.as_mut().expect("guard released"), timeout);
        timer.finish();
        monitor.owner.store(thread_id::current(), Ordering::Relaxed);
        monitor.stats.counters.record_wakeup();
        if result.timed_out() {
            monitor.stats.counters.record_timeout();
            false
        } else {
            true
        }
    }

    /// `cond.signal()` — wakes one thread waiting on `cond`.
    pub fn signal(&self, cond: CondId) {
        self.monitor.stats.counters.record_signal();
        self.monitor.conds[cond.0].notify_one();
    }

    /// `cond.signalAll()` — wakes every thread waiting on `cond`. This is
    /// the call AutoSynch never needs (§3).
    pub fn signal_all(&self, cond: CondId) {
        self.monitor.stats.counters.record_broadcast();
        self.monitor.conds[cond.0].notify_all();
    }
}

impl<S> Drop for ExplicitGuard<'_, S> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.monitor.owner.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn wait_while_and_signal() {
        let mut m = ExplicitMonitor::new(0i64);
        let nonzero = m.add_condition();
        let m = Arc::new(m);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.enter(|g| {
                g.wait_while(nonzero, |s| *s == 0);
                *g.state()
            })
        });
        thread::sleep(Duration::from_millis(20));
        m.enter(|g| {
            *g.state_mut() = 42;
            g.signal(nonzero);
        });
        assert_eq!(waiter.join().unwrap(), 42);
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.signals, 1);
        assert_eq!(snap.counters.wakeups, 1);
        assert_eq!(snap.counters.futile_wakeups, 0);
    }

    #[test]
    fn signal_all_wakes_everyone_and_counts_futile() {
        let mut m = ExplicitMonitor::new(0i64);
        let cond = m.add_condition();
        let m = Arc::new(m);
        let mut handles = Vec::new();
        for want in [1i64, 2, 3] {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                m.enter(|g| g.wait_while(cond, |s| *s < want));
            }));
        }
        thread::sleep(Duration::from_millis(30));
        // Satisfies only `want == 1`; the other two wake futilely.
        m.enter(|g| {
            *g.state_mut() = 1;
            g.signal_all(cond);
        });
        thread::sleep(Duration::from_millis(30));
        m.enter(|g| {
            *g.state_mut() = 3;
            g.signal_all(cond);
        });
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.stats_snapshot();
        assert_eq!(snap.counters.broadcasts, 2);
        assert!(
            snap.counters.futile_wakeups >= 2,
            "threads 2 and 3 wake futilely after the first broadcast; got {}",
            snap.counters.futile_wakeups
        );
    }

    #[test]
    fn wait_while_returns_immediately_when_false() {
        let mut m = ExplicitMonitor::new(5i64);
        let cond = m.add_condition();
        m.enter(|g| g.wait_while(cond, |s| *s == 0));
        assert_eq!(m.stats_snapshot().counters.waits, 0);
    }

    #[test]
    fn wait_timeout_expires() {
        let mut m = ExplicitMonitor::new(());
        let cond = m.add_condition();
        let ok = m.enter(|g| g.wait_timeout(cond, Duration::from_millis(30)));
        assert!(!ok);
        assert_eq!(m.stats_snapshot().counters.timeouts, 1);
    }

    #[test]
    fn add_conditions_allocates_distinct_ids() {
        let mut m = ExplicitMonitor::new(());
        let ids = m.add_conditions(3);
        assert_eq!(ids.len(), 3);
        assert_eq!(m.condition_count(), 3);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_enter_panics() {
        let m = ExplicitMonitor::new(());
        m.enter(|_| m.enter(|_| {}));
    }

    #[test]
    fn signals_without_waiters_are_lost() {
        // Java `Condition` semantics: a signal delivered while nobody
        // waits is dropped — the classic lost-wakeup hazard that makes
        // programmers reach for signalAll. (AutoSynch has no analogous
        // hazard: predicates are re-evaluated on entry.)
        let mut m = ExplicitMonitor::new(());
        let cond = m.add_condition();
        m.enter(|g| g.signal(cond));
        let woken = m.enter(|g| g.wait_timeout(cond, Duration::from_millis(30)));
        assert!(!woken, "the earlier signal must not satisfy a later wait");
    }

    #[test]
    fn with_conditions_constructor() {
        let m = ExplicitMonitor::with_conditions(0u8, 4);
        assert_eq!(m.condition_count(), 4);
    }
}
