//! A fixed-size, seqlock-style ring of expression-value snapshots.
//!
//! The change-driven diff produces, once per mutated occupancy, the
//! value of every live shared expression. Before this ring existed that
//! snapshot was only reachable under the monitor lock; the ring
//! publishes each diff into a lock-free structure so observers
//! (diagnostics, tests, dashboards) can read the latest expression
//! values **without acquiring the monitor lock** and therefore without
//! perturbing the relay hot path they are observing.
//!
//! ## Protocol
//!
//! The ring is single-writer (the diff runs under the monitor lock,
//! which serializes writers), multi-reader. Each slot is guarded by a
//! sequence counter: even = stable, odd = mid-write. The writer bumps
//! the sequence to odd, publishes the payload through relaxed atomic
//! stores fenced by a release fence, and bumps the sequence to the next
//! even value with a release store; `head` then names the slot. A
//! reader loads the slot's sequence (acquire), copies the payload with
//! relaxed loads, issues an acquire fence, and re-loads the sequence: a
//! torn read — the writer advanced mid-copy — shows up as a sequence
//! mismatch (or an odd value) and the reader retries on the new head
//! slot, counting a `ring_retries` tick. Because every payload cell is
//! an atomic, a torn read is *stale or retried*, never undefined
//! behaviour; the validate-retry loop means a successful return is
//! always an untorn snapshot. With `SLOTS` slots a reader only retries
//! when the writer laps the whole ring during one copy, so retries are
//! rare even under heavy publishing.
//!
//! ## Capacity
//!
//! Lock-free readers preclude growing a slot's payload in place, so
//! every slot is sized at construction ([`SnapshotRing::EXPR_CAPACITY`]
//! expressions by default — far above any workload in this repository).
//! A monitor that registers more expressions than that marks its
//! publishes as overflowed and readers get `None`; the relay itself is
//! unaffected (it reads the writer-side cache, not the ring).

use std::sync::atomic::{fence, AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

use autosynch_metrics::counters::SyncCounters;

/// Number of slots in the ring. A reader must race a full lap of
/// publishes during one copy before it retries.
const SLOTS: usize = 4;

/// Sentinel head value before the first publish.
const EMPTY: usize = usize::MAX;

struct Slot {
    /// Seqlock guard: even = stable, odd = being written.
    seq: AtomicU64,
    /// The diff epoch this snapshot belongs to (monotonic).
    epoch: AtomicU64,
    /// Number of meaningful entries in `values`/`present`.
    len: AtomicUsize,
    /// The monitor outgrew the slot capacity; the payload is partial.
    overflow: AtomicBool,
    /// Whether the expression at each index has ever been diffed.
    present: Box<[AtomicBool]>,
    /// The last diffed value of the expression at each index.
    values: Box<[AtomicI64]>,
}

impl Slot {
    fn with_capacity(capacity: usize) -> Self {
        Slot {
            seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            overflow: AtomicBool::new(false),
            present: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            values: (0..capacity).map(|_| AtomicI64::new(0)).collect(),
        }
    }
}

/// The published snapshot ring. See the module docs for the protocol.
pub(crate) struct SnapshotRing {
    slots: [Slot; SLOTS],
    /// Index of the most recently published slot, or [`EMPTY`].
    head: AtomicUsize,
}

impl std::fmt::Debug for SnapshotRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRing")
            .field("slots", &SLOTS)
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SnapshotRing {
    /// Per-slot expression capacity.
    pub(crate) const EXPR_CAPACITY: usize = 256;

    pub(crate) fn new() -> Self {
        SnapshotRing {
            slots: std::array::from_fn(|_| Slot::with_capacity(Self::EXPR_CAPACITY)),
            head: AtomicUsize::new(EMPTY),
        }
    }

    /// Publishes one diff snapshot. Single writer only — callers hold
    /// the monitor lock, which serializes publishes.
    ///
    /// `values[i]` is `Some(v)` when expression `i` was evaluated **by
    /// this diff** (callers pass `None` for slots last refreshed at an
    /// older epoch). Restricting a snapshot to one epoch makes every
    /// published value set a *consistent cut*: all `Some` values were
    /// read from the monitor state under a single lock hold, so
    /// cross-expression invariants (`level + free == cap`) hold within
    /// one snapshot — the property the ring's consistency test checks.
    pub(crate) fn publish(&self, epoch: u64, values: &[Option<i64>]) {
        let head = self.head.load(Ordering::Relaxed);
        let next = if head == EMPTY { 0 } else { (head + 1) % SLOTS };
        let slot = &self.slots[next];

        // Seqlock write side (the crossbeam recipe): odd sequence, then
        // a release fence so the payload stores cannot be observed
        // before the odd mark, then payload, then the even sequence
        // with release ordering.
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);

        let overflow = values.len() > slot.values.len();
        let len = values.len().min(slot.values.len());
        slot.epoch.store(epoch, Ordering::Relaxed);
        slot.len.store(len, Ordering::Relaxed);
        slot.overflow.store(overflow, Ordering::Relaxed);
        for (idx, value) in values.iter().take(len).enumerate() {
            match value {
                Some(v) => {
                    slot.values[idx].store(*v, Ordering::Relaxed);
                    slot.present[idx].store(true, Ordering::Relaxed);
                }
                None => slot.present[idx].store(false, Ordering::Relaxed),
            }
        }

        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(next, Ordering::Release);
    }

    /// Reads the latest published snapshot without any lock. Returns
    /// the diff epoch and the per-expression values (`None` for
    /// expressions never diffed), or `None` when nothing has been
    /// published yet, the ring overflowed, or the writer kept lapping
    /// the reader. Validation retries are counted in
    /// `counters.ring_retries`.
    pub(crate) fn read_latest(&self, counters: &SyncCounters) -> Option<(u64, Vec<Option<i64>>)> {
        let mut values = Vec::new();
        self.read_latest_into(counters, &mut values)
            .map(|epoch| (epoch, values))
    }

    /// Allocation-free variant of [`SnapshotRing::read_latest`]: copies
    /// the latest snapshot into `values` (cleared first, capacity
    /// reused) and returns its epoch. Parked-mode waiters call this in
    /// their re-check loop, so steady-state self-checks allocate
    /// nothing.
    pub(crate) fn read_latest_into(
        &self,
        counters: &SyncCounters,
        values: &mut Vec<Option<i64>>,
    ) -> Option<u64> {
        // With SLOTS slots a retry needs the writer to lap the ring
        // mid-copy; a handful of attempts is plenty.
        for _ in 0..64 {
            values.clear();
            let head = self.head.load(Ordering::Acquire);
            if head == EMPTY {
                return None;
            }
            let slot = &self.slots[head];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before & 1 == 1 {
                counters.record_ring_retry();
                std::hint::spin_loop();
                continue;
            }

            let epoch = slot.epoch.load(Ordering::Relaxed);
            let len = slot.len.load(Ordering::Relaxed);
            let overflow = slot.overflow.load(Ordering::Relaxed);
            values.reserve(len.min(slot.values.len()));
            for idx in 0..len.min(slot.values.len()) {
                values.push(if slot.present[idx].load(Ordering::Relaxed) {
                    Some(slot.values[idx].load(Ordering::Relaxed))
                } else {
                    None
                });
            }

            // Seqlock read validation: if the sequence moved, a writer
            // overlapped the copy — discard and retry.
            fence(Ordering::Acquire);
            let seq_after = slot.seq.load(Ordering::Relaxed);
            if seq_before != seq_after {
                counters.record_ring_retry();
                continue;
            }
            if overflow {
                return None;
            }
            return Some(epoch);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool as StdAtomicBool;
    use std::sync::Arc;

    #[test]
    fn empty_ring_reads_none() {
        let ring = SnapshotRing::new();
        let counters = SyncCounters::new();
        assert_eq!(ring.read_latest(&counters), None);
        assert_eq!(counters.snapshot().ring_retries, 0);
    }

    #[test]
    fn publish_then_read_roundtrips() {
        let ring = SnapshotRing::new();
        let counters = SyncCounters::new();
        ring.publish(7, &[Some(10), None, Some(-3)]);
        let (epoch, values) = ring.read_latest(&counters).expect("published");
        assert_eq!(epoch, 7);
        assert_eq!(values, vec![Some(10), None, Some(-3)]);
    }

    #[test]
    fn newer_publish_wins() {
        let ring = SnapshotRing::new();
        let counters = SyncCounters::new();
        for epoch in 1..=10u64 {
            ring.publish(epoch, &[Some(epoch as i64)]);
        }
        let (epoch, values) = ring.read_latest(&counters).expect("published");
        assert_eq!(epoch, 10);
        assert_eq!(values, vec![Some(10)]);
    }

    #[test]
    fn oversized_snapshot_reports_overflow_as_none() {
        let ring = SnapshotRing::new();
        let counters = SyncCounters::new();
        let big = vec![Some(1i64); SnapshotRing::EXPR_CAPACITY + 1];
        ring.publish(1, &big);
        assert_eq!(ring.read_latest(&counters), None);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        // The writer publishes internally-consistent snapshots (every
        // value equals the epoch); a torn read would mix values from
        // two publishes. Readers validate every successful read.
        let ring = Arc::new(SnapshotRing::new());
        let stop = Arc::new(StdAtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let counters = SyncCounters::new();
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let Some((epoch, values)) = ring.read_latest(&counters) {
                            assert!(epoch >= seen, "epochs regressed: {epoch} < {seen}");
                            seen = epoch;
                            for v in &values {
                                assert_eq!(
                                    *v,
                                    Some(epoch as i64),
                                    "torn snapshot: {values:?} at epoch {epoch}"
                                );
                            }
                        }
                    }
                    counters.snapshot().ring_retries
                })
            })
            .collect();
        for epoch in 1..=50_000u64 {
            ring.publish(epoch, &[Some(epoch as i64); 8]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
    }
}
