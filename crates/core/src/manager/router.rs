//! Deterministic conjunction → shard assignment.
//!
//! The router is a thin policy wrapper over the predicate crate's stable
//! routing key ([`autosynch_predicate::deps::expr_shard`]): a data shard
//! owns every expression whose key hashes into it, and a conjunction
//! lives in the data shard that owns *all* of its dependencies. A
//! conjunction that cannot be confined to one data shard — opaque,
//! dependency-free, or spanning several — is assigned to the **global
//! shard**, the extra trailing shard the relay probes last.
//!
//! Soundness (see `DESIGN.md`): Def. 4 of the paper constrains *which*
//! waiter may be signaled (one whose predicate is true), not where its
//! predicate is stored, so any total, deterministic partition preserves
//! relay invariance as long as the relay's skip decisions remain sound
//! per shard. Confinement gives exactly that: a data-shard conjunction
//! can only flip false→true when one of its dependencies changes, and
//! all of its dependencies are owned by its own shard, so "no owned
//! expression changed" implies "no candidate in this shard flipped".

use autosynch_predicate::deps::{expr_shard, ConjDeps};
use autosynch_predicate::expr::ExprId;

/// Assigns conjunctions and expressions to shards.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardRouter {
    data_shards: usize,
}

impl ShardRouter {
    /// A router over `data_shards` partitions (plus the implicit global
    /// shard at index `data_shards`).
    ///
    /// # Panics
    ///
    /// Panics when `data_shards` is zero.
    pub(super) fn new(data_shards: usize) -> Self {
        assert!(data_shards >= 1, "need at least one data shard");
        ShardRouter { data_shards }
    }

    /// Index of the global shard: one past the data shards.
    pub(super) fn global(&self) -> usize {
        self.data_shards
    }

    /// Total shard count including the global shard.
    pub(super) fn shard_count(&self) -> usize {
        self.data_shards + 1
    }

    /// The shard a conjunction lives in — total and deterministic:
    /// confined conjunctions go to the data shard owning their
    /// dependency set, everything else to the global shard.
    pub(super) fn route(&self, deps: &ConjDeps) -> usize {
        deps.route(self.data_shards).unwrap_or(self.data_shards)
    }

    /// The data shard owning `expr` (where its changes are announced).
    pub(super) fn shard_of_expr(&self, expr: ExprId) -> usize {
        expr_shard(expr, self.data_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_one_past_data_shards() {
        let r = ShardRouter::new(4);
        assert_eq!(r.global(), 4);
        assert_eq!(r.shard_count(), 5);
    }

    #[test]
    fn expr_routing_is_within_data_shards() {
        let r = ShardRouter::new(3);
        for raw in 0..64u32 {
            let sid = r.shard_of_expr(ExprId::from_raw(raw));
            assert!(sid < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_data_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
