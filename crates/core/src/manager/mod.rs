//! The condition manager (§5.2): predicate table, waiter bookkeeping and
//! the relay-signaling search.
//!
//! One manager lives inside each monitor's mutex. It owns:
//!
//! * a **slab of predicate entries** — each entry is one globalized
//!   predicate with its own condition variable, shared by every thread
//!   waiting on a syntax-equivalent condition;
//! * the **predicate table** mapping structural keys to entries, so
//!   syntax-equivalent predicates reuse one condition variable;
//! * one or more **shards** (`shard::Shard`), each holding the tag
//!   indexes (equivalence hash table, threshold heaps, `None` lists)
//!   for a disjoint partition of the expression space. The `Tagged` and
//!   `ChangeDriven` modes run the degenerate 1-way partition; the
//!   `Sharded` mode partitions by dependency footprint via the
//!   router (`router::ShardRouter`) and probes only the shards a
//!   mutation can have affected, following the batched
//!   relay plan (`relay_plan::RelayPlan`);
//! * the **snapshot ring** (`snapshot_ring::SnapshotRing`) — a
//!   lock-free seqlock ring the change-driven diff publishes into, so
//!   observers read the latest expression values without the monitor
//!   lock;
//! * the **inactive list** — an LRU of predicates with no waiters, kept
//!   around for reuse and evicted beyond a cap (§5.2); explicitly
//!   registered shared predicates are persistent and never evicted
//!   (§5.1).
//!
//! Waiter lifecycle per entry: `waiting` counts blocked, unsignaled
//! threads; `signaled` counts threads that have been picked by the relay
//! rule but have not yet resumed (the paper's *active* threads). Tags are
//! live exactly while `waiting > 0` — a fully signaled entry must not be
//! signaled again.

mod relay_plan;
mod router;
mod shard;
mod snapshot_ring;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use autosynch_metrics::phase::Phase;
use autosynch_predicate::cond::CondTable;
use autosynch_predicate::expr::{ExprId, ExprTable};
use autosynch_predicate::key::PredKey;
use autosynch_predicate::predicate::Predicate;
use autosynch_predicate::tag::Tag;
use parking_lot::Condvar;

use crate::config::{MonitorConfig, SignalMode};
use crate::eq_index::PredId;
use crate::parking::ParkingLot;
use crate::slab::Slab;
use crate::stats::MonitorStats;
use crate::wake::{BucketKey, RoutedWake, SlotRoute, WakeLot, WakeRouter};

use relay_plan::RelayPlan;
use router::ShardRouter;
use shard::{Shard, ValueCache};
pub(crate) use snapshot_ring::SnapshotRing;

/// One predicate entry: the globalized condition, its condition variable
/// and the waiter counters. The predicate is `Arc`-shared so compiled
/// conditions (`Cond`) and parked waiters hold it without deep-cloning
/// the DNF.
pub(crate) struct PredEntry<S> {
    pred: Arc<Predicate<S>>,
    condvar: Arc<Condvar>,
    waiting: u32,
    signaled: u32,
    tags_active: bool,
    persistent: bool,
    in_inactive: bool,
    /// Per-conjunction shard assignment, recorded at tag activation
    /// (`Sharded` mode only; empty otherwise). Deactivation removes each
    /// conjunction from exactly the shard it was inserted into, and the
    /// Def. 4 checker re-derives every route to verify the partition
    /// stayed total and deterministic.
    routes: Vec<u32>,
    /// The compiled-condition slot pinned to this entry, when one
    /// exists (`Monitor::compile` interned it). Slots and keyed entries
    /// are 1:1, and the slot is the `Routed` mode's bucket identity:
    /// waiters of a slotted entry park in their slot's bucket and are
    /// woken by targeted sweeps; slotless entries (transient waits)
    /// park in the gate's broadcast bucket.
    slot: Option<u32>,
}

/// The per-monitor condition manager.
pub(crate) struct ConditionManager<S> {
    entries: Slab<PredEntry<S>>,
    table: HashMap<PredKey, PredId>,
    /// The compiled-condition intern table (`Monitor::compile`): one
    /// slot per distinct `PredKey`, pinned for the monitor's lifetime.
    conds: CondTable<S>,
    /// Slot → predicate-table entry, aligned with `conds`. Compiled
    /// entries are persistent, so these ids never dangle.
    cond_pids: Vec<PredId>,
    /// Every active entry, for the untagged linear scan.
    scan_list: Vec<PredId>,
    /// The tag-index partitions. One shard for `Tagged`/`ChangeDriven`;
    /// `shard_count() + 1` (data shards + trailing global) for `Sharded`.
    shards: Vec<Shard>,
    router: ShardRouter,
    plan: RelayPlan,
    inactive: VecDeque<PredId>,
    config: MonitorConfig,
    // --- change-driven relay state (ChangeDriven + Sharded) -------------
    /// How many active conjunctions depend on each expression — the set
    /// the snapshot diff evaluates.
    dep_refs: HashMap<ExprId, u32>,
    /// Last diffed value per expression (`ExprId::index`-indexed).
    value_cache: Vec<Option<i64>>,
    /// The diff epoch at which each slot was last evaluated. A slot that
    /// skipped a diff (its expression had no active dependents) has a
    /// gap; comparing across a gap is unsound — the value could have
    /// changed and coincidentally returned — so a non-contiguous slot is
    /// reported changed regardless of its cached value.
    slot_epoch: Vec<u64>,
    /// Monotonic diff counter backing the contiguity check.
    epoch: u64,
    /// Scratch bitmap: expressions whose value changed in this relay's
    /// snapshot diff.
    changed: Vec<bool>,
    /// Reusable staging buffer for ring publishes: the slice of
    /// `value_cache` restricted to the expressions this diff evaluated.
    publish_scratch: Vec<Option<i64>>,
    /// Reusable buffer for the threshold-index expression walk, so the
    /// probe does not allocate per relay.
    expr_scratch: Vec<ExprId>,
    /// The state was mutated since the last snapshot diff (fed by
    /// [`ConditionManager::note_mutation`]).
    state_dirty: bool,
    /// All mutations since the last diff came through the named API and
    /// touched only the expressions in `named` — the diff may carry the
    /// rest forward as unchanged. Cleared by any blanket mutation.
    named_only: bool,
    /// The union of named-mutation expression sets since the last diff.
    named: Vec<ExprId>,
    /// Scratch bitmap over `named`, rebuilt per named diff.
    named_scratch: Vec<bool>,
    /// Scratch bitmap: gates a parked relay must wake.
    gate_scratch: Vec<bool>,
    /// Gates whose wake this relay announced but has not delivered:
    /// the monitor drains this right before releasing the lock and
    /// performs the unparks outside the critical section.
    pending_wake_gates: Vec<u32>,
    /// Lock-free publication of the diff snapshot.
    ring: Arc<SnapshotRing>,
    /// Per-shard gates: wait queues + shard locks (`Parked` mode parks
    /// waiters here; `Sharded` mode takes the same locks around its
    /// index probes). Empty in the other modes.
    parking: Arc<ParkingLot>,
    /// Per-shard slot-bucketed gates (`Routed` mode only; empty
    /// otherwise): waiters park per `Cond`-slot bucket and wakes are
    /// targeted sweeps instead of gate broadcasts.
    wake: Arc<WakeLot>,
    /// The routed mode's slot index: eq-routes (value-directed) and
    /// dependency routes (change-directed) for every active slotted
    /// entry parked on a data gate.
    wake_router: WakeRouter,
    /// Routed wakes this relay announced but has not delivered — the
    /// `Routed` counterpart of `pending_wake_gates`, drained by the
    /// monitor right before releasing the lock.
    pending_routed: Vec<RoutedWake>,
    /// Scratch bitmap over compiled slots: buckets already announced in
    /// this relay (a slot with several changed dependencies is swept
    /// once).
    slot_seen: Vec<bool>,
}

impl<S> ConditionManager<S> {
    pub(crate) fn new(config: MonitorConfig) -> Self {
        let data_shards = match config.signal_mode() {
            SignalMode::Sharded | SignalMode::Parked | SignalMode::Routed => config.shard_count(),
            _ => 1,
        };
        let router = ShardRouter::new(data_shards);
        let shard_slots = match config.signal_mode() {
            SignalMode::Sharded | SignalMode::Parked | SignalMode::Routed => router.shard_count(),
            _ => 1,
        };
        let gates = match config.signal_mode() {
            SignalMode::Sharded | SignalMode::Parked => router.shard_count(),
            _ => 0,
        };
        let wake_gates = match config.signal_mode() {
            SignalMode::Routed => router.shard_count(),
            _ => 0,
        };
        ConditionManager {
            entries: Slab::new(),
            table: HashMap::new(),
            conds: CondTable::new(),
            cond_pids: Vec::new(),
            scan_list: Vec::new(),
            shards: (0..shard_slots)
                .map(|_| Shard::new(config.threshold_index_kind()))
                .collect(),
            router,
            plan: RelayPlan::new(),
            inactive: VecDeque::new(),
            config,
            dep_refs: HashMap::new(),
            value_cache: Vec::new(),
            slot_epoch: Vec::new(),
            epoch: 0,
            changed: Vec::new(),
            publish_scratch: Vec::new(),
            expr_scratch: Vec::new(),
            state_dirty: true,
            named_only: false,
            named: Vec::new(),
            named_scratch: Vec::new(),
            gate_scratch: Vec::new(),
            pending_wake_gates: Vec::new(),
            ring: Arc::new(SnapshotRing::new()),
            parking: Arc::new(ParkingLot::new(gates)),
            wake: Arc::new(WakeLot::with_config(
                wake_gates,
                config.transient_bucket_capacity(),
                config.sweep_cursors_enabled(),
            )),
            wake_router: WakeRouter::new(),
            pending_routed: Vec::new(),
            slot_seen: Vec::new(),
        }
    }

    /// Records that the monitor state was mutated. Change-driven relays
    /// diff the expression snapshot only when this has been called since
    /// the previous diff; callers that mutate the state without
    /// announcing it here would make the change-driven mode miss
    /// wakeups. The monitor runtime calls it from `state_mut`.
    pub(crate) fn note_mutation(&mut self) {
        self.state_dirty = true;
        // A blanket mutation poisons any named-only window: the next
        // diff must evaluate every live dependency.
        self.named_only = false;
        self.named.clear();
    }

    /// Records a mutation whose writes, by the caller's contract
    /// (a tracked-cell drain or `MonitorGuard::state_mut_touching`),
    /// can only have changed the named expressions. The next snapshot
    /// diff evaluates the intersection of `touched` with the live
    /// dependency set and carries every other contiguous slot forward
    /// as unchanged.
    pub(crate) fn note_mutation_named(&mut self, touched: &[ExprId]) {
        if self.state_dirty && !self.named_only {
            return; // already inside a blanket window: stay blanket
        }
        if !self.state_dirty {
            self.state_dirty = true;
            self.named_only = true;
            self.named.clear();
        }
        for &expr in touched {
            if !self.named.contains(&expr) {
                self.named.push(expr);
            }
        }
    }

    /// The lock-free snapshot ring this manager publishes diffs into.
    pub(crate) fn ring(&self) -> Arc<SnapshotRing> {
        Arc::clone(&self.ring)
    }

    /// The per-shard parking gates (queues + locks).
    pub(crate) fn parking(&self) -> Arc<ParkingLot> {
        Arc::clone(&self.parking)
    }

    /// The per-shard slot-bucketed wake gates (`Routed` mode).
    pub(crate) fn wake_lot(&self) -> Arc<WakeLot> {
        Arc::clone(&self.wake)
    }

    /// The current diff epoch (the stamp of the newest published
    /// snapshot). A routed futile claimer forwards its sweep token at
    /// this epoch: its monitor-lock confirm just evaluated the live
    /// state, which is at least as new as any published cut.
    pub(crate) fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The gate the recorded routes confine a waiter to: the data gate
    /// owning the whole dependency footprint when every conjunction
    /// routes there, else the global gate (the conservative home of
    /// cross-shard and opaque predicates).
    fn gate_of_routes(router: &ShardRouter, routes: &[u32]) -> usize {
        match routes {
            [] => router.global(),
            [first, rest @ ..] if rest.iter().all(|r| r == first) => *first as usize,
            _ => router.global(),
        }
    }

    /// The gate a `Parked`- or `Routed`-mode waiter of `pid` enqueues
    /// on (see [`ConditionManager::gate_of_routes`]).
    pub(crate) fn park_gate(&self, pid: PredId) -> usize {
        debug_assert!(matches!(
            self.config.signal_mode(),
            SignalMode::Parked | SignalMode::Routed
        ));
        Self::gate_of_routes(&self.router, &self.entries[pid].routes)
    }

    /// Interns a predicate: returns the existing entry for a
    /// syntax-equivalent predicate or creates a new one.
    fn find_or_create(&mut self, pred: Arc<Predicate<S>>, persistent: bool) -> PredId {
        if let Some(key) = pred.key() {
            if let Some(&pid) = self.table.get(key) {
                if persistent {
                    self.entries[pid].persistent = true;
                }
                return pid;
            }
        }
        let key = pred.key().cloned();
        let pid = self.entries.insert(PredEntry {
            pred,
            condvar: Arc::new(Condvar::new()),
            waiting: 0,
            signaled: 0,
            tags_active: false,
            persistent,
            in_inactive: false,
            routes: Vec::new(),
            slot: None,
        });
        if let Some(key) = key {
            self.table.insert(key, pid);
        }
        pid
    }

    /// Pre-registers a shared predicate (§5.1: shared predicates are added
    /// in the constructor and never removed).
    #[cfg(test)]
    pub(crate) fn register_persistent(&mut self, pred: Predicate<S>) -> PredId {
        let pid = self.find_or_create(Arc::new(pred), true);
        self.unlink_inactive(pid);
        pid
    }

    /// Compiles a predicate into a condition slot: the analysis is
    /// interned by structural key in the [`CondTable`], the predicate
    /// table gets (or reuses) a **persistent** entry for it, and the
    /// returned slot resolves to that entry in O(1) forever after —
    /// `register_waiter_slot` is the allocation- and hash-free wait
    /// path built on top.
    ///
    /// Persistence is what keeps slots valid: compiled conditions are
    /// the paper's §5.1 shared predicates ("added in the constructor
    /// and never removed"), generalized to any key.
    pub(crate) fn compile(&mut self, pred: Predicate<S>) -> (u32, Arc<Predicate<S>>) {
        let (slot, arc) = self.conds.intern(pred);
        if slot as usize == self.cond_pids.len() {
            let pid = self.find_or_create(Arc::clone(&arc), true);
            self.unlink_inactive(pid);
            self.cond_pids.push(pid);
            let entry = &mut self.entries[pid];
            entry.slot = Some(slot);
            // The entry may predate the compile (a transient wait
            // interned it first) and already be active: register its
            // freshly assigned slot with the wake router now, so routed
            // bucket wakes cover compiled waiters that arrive while the
            // transient ones are still parked.
            if self.config.signal_mode() == SignalMode::Routed && entry.tags_active {
                let gate = Self::gate_of_routes(&self.router, &entry.routes);
                let route = WakeRouter::classify(&entry.pred, gate, self.router.global());
                self.wake_router.register(slot, gate, route);
            }
        }
        debug_assert!((slot as usize) < self.cond_pids.len());
        (slot, arc)
    }

    /// Registers the calling thread as a waiter on the compiled
    /// condition at `slot` and activates the entry's tags — no key
    /// hashing, no interning, no allocation. The predicate handle is
    /// cross-checked against the slot's entry, so a hand-forged `Cond`
    /// (constructed via `Cond::new` instead of `Monitor::compile`)
    /// fails loudly instead of registering on the wrong entry.
    pub(crate) fn register_waiter_slot(
        &mut self,
        slot: u32,
        pred: &Arc<Predicate<S>>,
        stats: &MonitorStats,
    ) -> PredId {
        let timer = stats.phases.start(Phase::TagManager);
        let pid = *self
            .cond_pids
            .get(slot as usize)
            .expect("Cond slot was not issued by this monitor's compile table");
        let entry = &mut self.entries[pid];
        // A compiled cond usually shares the entry's Arc; when the
        // entry predates the compile (a v1 shim wait interned it
        // first), the two are distinct allocations of syntax-equivalent
        // predicates — equal structural keys. Keyless conditions are
        // never interned by key, so for them only pointer identity
        // proves the pairing.
        let matches = Arc::ptr_eq(&entry.pred, pred)
            || (entry.pred.key().is_some() && entry.pred.key() == pred.key());
        assert!(
            matches,
            "Cond predicate does not match its slot — construct Conds via Monitor::compile"
        );
        entry.waiting += 1;
        if !entry.tags_active {
            self.activate_tags(pid, stats);
        }
        timer.finish();
        pid
    }

    /// Registers the calling thread as a waiter on `pred` and activates
    /// the entry's tags. Returns the entry id the waiter keeps for the
    /// rest of its `waituntil`. (The per-wait interning path — compiled
    /// conditions use [`ConditionManager::register_waiter_slot`].)
    pub(crate) fn register_waiter(&mut self, pred: Predicate<S>, stats: &MonitorStats) -> PredId {
        let timer = stats.phases.start(Phase::TagManager);
        let pid = self.find_or_create(Arc::new(pred), false);
        self.unlink_inactive(pid);
        let entry = &mut self.entries[pid];
        entry.waiting += 1;
        if !entry.tags_active {
            self.activate_tags(pid, stats);
        }
        timer.finish();
        pid
    }

    /// The condition variable of an entry (cloned so the waiter can block
    /// on it without borrowing the manager).
    pub(crate) fn condvar(&self, pid: PredId) -> Arc<Condvar> {
        Arc::clone(&self.entries[pid].condvar)
    }

    /// The entry's predicate, for re-evaluation after a wakeup.
    pub(crate) fn entry_pred(&self, pid: PredId) -> &Predicate<S> {
        &self.entries[pid].pred
    }

    /// The entry's predicate by shared handle (parked waiters keep it
    /// across lock releases without deep-cloning the DNF).
    pub(crate) fn entry_pred_arc(&self, pid: PredId) -> Arc<Predicate<S>> {
        Arc::clone(&self.entries[pid].pred)
    }

    /// Number of compiled-condition slots (diagnostics and tests).
    pub(crate) fn compiled_count(&self) -> usize {
        self.conds.len()
    }

    /// A woken thread found its predicate false (another thread barged in
    /// and falsified it): it returns to the waiting pool.
    ///
    /// Signals are anonymous per-entry tokens, so a *spurious* wakeup
    /// (possible with a std-backed condvar, unlike `parking_lot`'s) is
    /// indistinguishable from a signaled one at the call site. With no
    /// token outstanding the thread's unit never left `waiting` and
    /// nothing moves; with a token outstanding the thread absorbs it on
    /// behalf of the entry — either way `waiting + signaled` keeps
    /// counting exactly the blocked threads, and the caller re-runs the
    /// relay rule before blocking again.
    pub(crate) fn mark_futile(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        if entry.signaled == 0 {
            // Spurious wakeup: the thread is still accounted in
            // `waiting` and its tags are still live.
            debug_assert!(entry.waiting > 0);
            debug_assert!(entry.tags_active);
            return;
        }
        entry.signaled -= 1;
        entry.waiting += 1;
        if !entry.tags_active {
            let timer = stats.phases.start(Phase::TagManager);
            self.activate_tags(pid, stats);
            timer.finish();
        }
    }

    /// A woken thread found its predicate true and proceeds: its unit
    /// leaves the entry — from `signaled` when a token is outstanding,
    /// else from `waiting` (a spurious wakeup that happened to find the
    /// predicate true, or a signal token absorbed by a futile peer). An
    /// entry with no threads left is retired to the inactive list.
    pub(crate) fn consume_signal(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        if entry.signaled > 0 {
            entry.signaled -= 1;
        } else {
            debug_assert!(entry.waiting > 0, "consuming thread was not accounted");
            entry.waiting -= 1;
            if entry.waiting == 0 && entry.tags_active {
                let timer = stats.phases.start(Phase::TagManager);
                self.deactivate_tags(pid, stats);
                timer.finish();
            }
        }
        self.maybe_retire(pid, stats);
    }

    /// A timed wait elapsed. Returns `true` when the thread absorbed a
    /// pending signal, in which case the caller must run the relay rule
    /// to pass the baton onward (otherwise relay invariance could break).
    pub(crate) fn on_timeout(&mut self, pid: PredId, stats: &MonitorStats) -> bool {
        let entry = &mut self.entries[pid];
        if entry.waiting > 0 {
            // The normal case: we were still an unsignaled waiter. Any
            // `signaled` tokens belong to threads that really were woken.
            entry.waiting -= 1;
            if entry.waiting == 0 && entry.tags_active {
                let timer = stats.phases.start(Phase::TagManager);
                self.deactivate_tags(pid, stats);
                timer.finish();
            }
            self.maybe_retire(pid, stats);
            false
        } else {
            // All remaining slots of this entry are "signaled": one of
            // those notifications was aimed at us and is now orphaned.
            debug_assert!(entry.signaled > 0);
            entry.signaled -= 1;
            self.maybe_retire(pid, stats);
            true
        }
    }

    /// The relay signaling rule (§4.2): find one waiting thread whose
    /// predicate is true and signal it. Called whenever a thread exits
    /// the monitor or goes to wait. In `Sharded` mode one call may
    /// signal up to `relay_width` waiters from independent shards in a
    /// single batched pass.
    pub(crate) fn relay_signal(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        stats.counters.record_relay_call();
        // The signaler-lock hold-time stat: everything a relay does
        // happens under the monitor lock on behalf of other threads, so
        // its duration is the signaling share of the critical section.
        let hold_start = stats.phases.is_enabled().then(Instant::now);
        // Flight-recorder summary of the pass, reconstructed from
        // counter deltas so the probe loops themselves stay untouched.
        // The extra snapshots only happen while tracing is on.
        let before = crate::telemetry::enabled().then(|| stats.counters.snapshot());
        let result = self.relay_dispatch(state, exprs, stats);
        if let Some(before) = before {
            let delta = stats.counters.snapshot().since(&before);
            crate::telemetry::record(
                crate::telemetry::EventKind::RelayPass,
                delta.pred_evals,
                delta.probes_skipped + delta.relay_skips,
            );
        }
        if let Some(start) = hold_start {
            stats.hold.record(start.elapsed());
        }
        result
    }

    fn relay_dispatch(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        let mode = self.config.signal_mode();
        if mode == SignalMode::Sharded {
            return self.relay_sharded(state, exprs, stats);
        }
        if mode == SignalMode::Parked {
            return self.relay_parked(state, exprs, stats);
        }
        if mode == SignalMode::Routed {
            return self.relay_routed(state, exprs, stats);
        }
        // Change-driven: refresh the changed-expression bitmap once per
        // relay call; when the state is unmutated and every active
        // conjunction is known false, the whole search is skipped.
        if mode == SignalMode::ChangeDriven && self.refresh_changed_set(state, exprs, stats) {
            stats.counters.record_relay_skip();
            if self.config.validates_relay() {
                self.check_relay_invariance(state, exprs);
            }
            return None;
        }
        let mut first = None;
        // The paper signals exactly one thread; relay_width > 1 is the
        // documented extension that keeps signaling while distinct
        // signalable candidates remain.
        for _ in 0..self.config.relay_width_value() {
            let timer = stats.phases.start(Phase::RelaySignal);
            let found = match mode {
                SignalMode::Untagged => self.find_untagged(state, exprs, stats),
                SignalMode::Tagged => {
                    let ConditionManager {
                        entries, shards, ..
                    } = self;
                    shards[0].probe_tagged(entries, state, exprs, &stats.counters)
                }
                SignalMode::ChangeDriven => {
                    let ConditionManager {
                        entries,
                        shards,
                        value_cache,
                        slot_epoch,
                        epoch,
                        changed,
                        expr_scratch,
                        ..
                    } = self;
                    let shard = &mut shards[0];
                    let probe_all = shard.probe_all;
                    let mut cache = ValueCache {
                        values: value_cache,
                        epochs: slot_epoch,
                        epoch: *epoch,
                    };
                    shard.probe_change_driven(
                        entries,
                        state,
                        exprs,
                        &stats.counters,
                        &mut cache,
                        changed,
                        probe_all,
                        expr_scratch,
                    )
                }
                SignalMode::Sharded | SignalMode::Parked | SignalMode::Routed => {
                    unreachable!("dispatched above")
                }
            };
            timer.finish();
            let Some(pid) = found else {
                // The search ran dry: every still-waiting conjunction was
                // either probed false or skipped as unchanged-since-false.
                self.shards[0].all_false = true;
                break;
            };
            self.shards[0].all_false = false;
            stats.counters.record_relay_hit();
            self.signal_entry(pid, stats);
            first.get_or_insert(pid);
        }
        if self.config.validates_relay() {
            self.check_relay_invariance(state, exprs);
        }
        first
    }

    /// The sharded batched relay: diff the expression snapshot once, map
    /// the changed set to the affected shards, then probe only those —
    /// up to `relay_width` signals per call, at most one per shard per
    /// pass.
    fn relay_sharded(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        if self.prepare_sharded(state, exprs, stats) {
            stats.counters.record_relay_skip();
            if self.config.validates_relay() {
                self.check_relay_invariance(state, exprs);
            }
            return None;
        }
        let mut budget = self.config.relay_width_value();
        let mut first: Option<PredId> = None;
        loop {
            // One batched pass: visit every uncertified shard (global
            // last), signaling at most one waiter per shard.
            let mut plan = std::mem::take(&mut self.plan);
            let route_timer = stats.phases.start(Phase::ShardRoute);
            let empty = plan.rebuild(&self.shards);
            route_timer.finish();
            if empty {
                self.plan = plan;
                break;
            }
            let mut pass_hits = 0usize;
            for &sid in plan.order() {
                if budget == 0 {
                    break;
                }
                let timer = stats.phases.start(Phase::RelaySignal);
                let found = {
                    let ConditionManager {
                        entries,
                        shards,
                        value_cache,
                        slot_epoch,
                        epoch,
                        changed,
                        expr_scratch,
                        parking,
                        ..
                    } = self;
                    // The partition proves disjointness (re-derived by
                    // the route validator), so this shard's lock covers
                    // the index access — the same lock a Parked-mode
                    // waiter takes to claim, making the two regimes
                    // share one per-shard locking discipline.
                    let _shard_lock = parking.probe_guard(sid);
                    let shard = &mut shards[sid];
                    let probe_all = shard.probe_all;
                    let mut cache = ValueCache {
                        values: value_cache,
                        epochs: slot_epoch,
                        epoch: *epoch,
                    };
                    shard.probe_change_driven(
                        entries,
                        state,
                        exprs,
                        &stats.counters,
                        &mut cache,
                        changed,
                        probe_all,
                        expr_scratch,
                    )
                };
                timer.finish();
                match found {
                    Some(pid) => {
                        // The walk stopped at the hit: the shard may hold
                        // further true waiters and has no certificate.
                        let shard = &mut self.shards[sid];
                        shard.all_false = false;
                        shard.probe_all = true;
                        stats.counters.record_relay_hit();
                        if first.is_some() {
                            stats.counters.record_batched_signal();
                        }
                        self.signal_entry(pid, stats);
                        first.get_or_insert(pid);
                        budget -= 1;
                        pass_hits += 1;
                    }
                    None => {
                        // Fully searched, nothing true: certified false
                        // until an owned dependency changes.
                        let shard = &mut self.shards[sid];
                        shard.all_false = true;
                        shard.probe_all = false;
                    }
                }
            }
            self.plan = plan;
            if pass_hits == 0 || budget == 0 {
                break;
            }
        }
        // Shards without a certificate (hit-stopped, or unreached when
        // the width budget ran out) must be fully probed by the next
        // relay regardless of the by-then-stale changed bitmap.
        for shard in &mut self.shards {
            if !shard.all_false {
                shard.probe_all = true;
            }
        }
        if self.config.validates_relay() {
            self.check_relay_invariance(state, exprs);
        }
        first
    }

    /// The parked relay: the signaler's whole exit path. No index is
    /// probed and no waiter predicate is evaluated — the relay (1)
    /// diffs the expression snapshot and publishes the new epoch into
    /// the lock-free ring, then (2) unparks the wait queues of the
    /// affected gates: every data gate owning a changed expression,
    /// and the global gate on any mutation (its waiters — cross-shard,
    /// opaque, disjunctions spanning shards — may depend on anything).
    /// Unparked waiters re-check their own predicates against the ring
    /// and come claim the monitor themselves.
    ///
    /// Soundness of the skip and of the per-gate wake filter: a
    /// predicate can only flip false→true via a state mutation; an
    /// unmutated exit publishes nothing and wakes no one. After a
    /// mutation, a data-gate waiter's conjunctions depend only on
    /// expressions its shard owns (routing confinement, re-proved by
    /// the validator), and the diff's epoch-contiguity rule reports any
    /// gap as changed — so "no owned expression changed" implies no
    /// waiter behind that gate can have flipped.
    fn relay_parked(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        if !self.state_dirty {
            stats.counters.record_relay_skip();
            if self.config.validates_relay() {
                self.check_parking_protocol(state, exprs);
            }
            return None;
        }
        self.diff_snapshot(state, exprs, stats);
        self.state_dirty = false;
        let timer = stats.phases.start(Phase::RelaySignal);
        let gates = self.parking.gate_count();
        self.gate_scratch.clear();
        self.gate_scratch.resize(gates, false);
        for (idx, &was_changed) in self.changed.iter().enumerate() {
            if was_changed {
                let sid = self.router.shard_of_expr(ExprId::from_raw(idx as u32));
                self.gate_scratch[sid] = true;
            }
        }
        // Any mutation can have flipped a global-gate predicate.
        self.gate_scratch[self.router.global()] = true;
        // Announce, don't deliver: the per-slot token handoffs happen
        // after the monitor lock is released (the whole point of the
        // parked mode is that they never extend the critical section).
        // Empty gates are skipped via the lock-free length mirror.
        for gate in 0..gates {
            if self.gate_scratch[gate] && self.parking.has_waiters(gate) {
                self.parking.announce_wake(gate);
                self.pending_wake_gates.push(gate as u32);
            }
        }
        timer.finish();
        if self.config.validates_relay() {
            self.check_parking_protocol(state, exprs);
        }
        None
    }

    /// Moves the relay's announced-but-undelivered wakes into `out`
    /// (cleared first) and returns the epoch to stamp them with. The
    /// monitor calls this right before releasing the lock and delivers
    /// each wake outside the critical section.
    pub(crate) fn drain_pending_wakes(&mut self, out: &mut Vec<u32>) -> u64 {
        out.clear();
        out.append(&mut self.pending_wake_gates);
        self.epoch
    }

    /// The routed relay: the parked relay's exit path with slot-level
    /// precision. Like `relay_parked` it only diffs + publishes — no
    /// index probe, no waiter-predicate evaluation, no token handoff
    /// under the lock — but instead of announcing per-gate broadcasts
    /// it announces **targeted** wakes:
    ///
    /// * changed expressions with equivalence routes wake exactly the
    ///   slot registered under the freshly published value (every other
    ///   eq key is provably false at the cut);
    /// * changed expressions with threshold-ladder rungs wake only the
    ///   rungs the published value crosses; the provably-false
    ///   remainder is pruned in one ordered-range scan and counted as
    ///   `ladder_skips` (an unknown value conservatively wakes every
    ///   rung);
    /// * changed expressions wake each dependency-routed slot
    ///   registered under them — one token sweep per bucket, started at
    ///   the bucket head and forwarded waiter-side;
    /// * affected gates' transient buckets are broadcast, and each
    ///   graduated (LRU-admitted) per-predicate bucket gets a targeted
    ///   token sweep instead (see `wait_transient`);
    /// * the global gate keeps the parked mode's conservative full
    ///   broadcast on any mutation.
    ///
    /// Soundness of the slot filter: a data-gate slot's dependencies
    /// are confined to its gate's shard (route validator), its
    /// predicate can only flip via a dependency change, and the diff's
    /// epoch-contiguity rule reports gaps as changed — so a slot none
    /// of whose dependencies changed cannot have flipped. The eq prune
    /// additionally uses tag necessity: an eq-shaped predicate is true
    /// only while `expr == key`, so a published value `v` rules out
    /// every bucket with `key != v` at that cut, and any later flip
    /// comes with a later publish that re-runs this filter.
    fn relay_routed(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        if !self.state_dirty {
            stats.counters.record_relay_skip();
            if self.config.validates_relay() {
                self.check_wake_routing(state, exprs);
            }
            return None;
        }
        self.diff_snapshot(state, exprs, stats);
        self.state_dirty = false;
        let timer = stats.phases.start(Phase::RelaySignal);
        let gates = self.wake.gate_count();
        self.gate_scratch.clear();
        self.gate_scratch.resize(gates, false);
        self.slot_seen.clear();
        self.slot_seen.resize(self.conds.len(), false);
        {
            let ConditionManager {
                changed,
                value_cache,
                router,
                wake_router,
                wake,
                pending_routed,
                gate_scratch,
                slot_seen,
                ..
            } = self;
            for (idx, &was_changed) in changed.iter().enumerate() {
                if !was_changed {
                    continue;
                }
                let expr = ExprId::from_raw(idx as u32);
                gate_scratch[router.shard_of_expr(expr)] = true;
                // Value-directed: only the slot whose eq key equals the
                // published value can have flipped true.
                if wake_router.has_eq(expr) {
                    if let Some(value) = value_cache[idx] {
                        for &(slot, gate) in wake_router.eq_slots(expr, value) {
                            if !slot_seen[slot as usize] {
                                slot_seen[slot as usize] = true;
                                stats.counters.record_eq_routed_wake();
                                wake.announce(gate as usize);
                                pending_routed.push(RoutedWake::Bucket { gate, slot });
                            }
                        }
                    }
                }
                // Order-directed: wake only the rungs the published
                // value crosses; the rungs above the crossing bound are
                // provably false at the cut and pruned as skips.
                if wake_router.has_ladder(expr) {
                    let skipped = wake_router.ladder_probe(expr, value_cache[idx], |slot, gate| {
                        if !slot_seen[slot as usize] {
                            slot_seen[slot as usize] = true;
                            wake.announce(gate as usize);
                            pending_routed.push(RoutedWake::Bucket { gate, slot });
                        }
                    });
                    stats.counters.record_ladder_skips(skipped);
                    if skipped > 0 {
                        crate::telemetry::record(
                            crate::telemetry::EventKind::LadderSkip,
                            skipped,
                            0,
                        );
                    }
                }
                // Change-directed: sweep every dependent slot once.
                for &(slot, gate) in wake_router.dep_slots(expr) {
                    if !slot_seen[slot as usize] {
                        slot_seen[slot as usize] = true;
                        wake.announce(gate as usize);
                        pending_routed.push(RoutedWake::Bucket { gate, slot });
                    }
                }
            }
        }
        // Transient buckets of affected data gates (slotless waiters
        // keep the parked broadcast semantics), skipped lock-free when
        // empty.
        let global = self.router.global();
        for gate in 0..gates {
            if gate != global && self.gate_scratch[gate] && self.wake.has_transient(gate) {
                self.wake.announce(gate);
                self.pending_routed.push(RoutedWake::Transient(gate as u32));
            }
        }
        // Any mutation can have flipped a global-gate predicate.
        if self.wake.has_waiters(global) {
            self.wake.announce(global);
            self.pending_routed.push(RoutedWake::Gate(global as u32));
        }
        timer.finish();
        if self.config.validates_relay() {
            self.check_wake_routing(state, exprs);
        }
        None
    }

    /// Moves the routed relay's announced-but-undelivered wakes into
    /// `out` (cleared first) and returns the epoch to stamp them with —
    /// the `Routed` counterpart of
    /// [`ConditionManager::drain_pending_wakes`].
    pub(crate) fn drain_routed_wakes(&mut self, out: &mut Vec<RoutedWake>) -> u64 {
        out.clear();
        out.append(&mut self.pending_routed);
        self.epoch
    }

    /// Announces a claimed token's re-injection into its bucket (the
    /// `signaled` baton rule, waiter-side): called under the monitor
    /// lock by a routed claimer whose confirm succeeded; the monitor
    /// drains and delivers it after the lock is released, waking the
    /// next unobserved bucket peer to confirm against the post-claim
    /// state. The announcement covers the bucket's waiters for the
    /// protocol validator across the claimer's occupancy.
    pub(crate) fn note_reinject(&mut self, gate: usize, bucket: BucketKey) {
        debug_assert_eq!(self.config.signal_mode(), SignalMode::Routed);
        debug_assert!(bucket.is_swept(), "only swept buckets carry batons");
        self.wake.announce(gate);
        self.pending_routed.push(RoutedWake::Reinject {
            gate: gate as u32,
            bucket,
        });
    }

    /// Ground-truth check of the wake-routing protocol (armed by
    /// `validate_relay`), the `Routed` analog of
    /// [`ConditionManager::check_parking_protocol`]:
    ///
    /// 1. re-derives every live route (partition totality, determinism,
    ///    confinement, global placement — same as the sharded checker);
    /// 2. **route soundness vs. a full probe**: every active slotted
    ///    entry's router registration must byte-match a fresh
    ///    classification of its predicate — a slot registered under the
    ///    wrong eq key, the wrong ladder rung, the wrong gate, or a
    ///    stale dependency set would mis-aim its wakes — and a
    ///    threshold registration must additionally sit on its
    ///    expression's ladder exactly once (a missing rung loses wakes,
    ///    a duplicated one double-sweeps);
    /// 3. **no-lost-token audit**: every enqueued waiter whose
    ///    predicate is currently true must hold a pending unpark token,
    ///    share its bucket with an in-flight sweep (a covered peer), be
    ///    named by an undelivered announcement for its gate, or be
    ///    awake. A bare parked waiter with a true predicate is a lost
    ///    wake.
    fn check_wake_routing(&self, state: &S, exprs: &ExprTable<S>) {
        self.check_shard_routing();
        for (pid, entry) in self.entries.iter() {
            if !entry.tags_active {
                continue;
            }
            if let Some(slot) = entry.slot {
                let gate = Self::gate_of_routes(&self.router, &entry.routes);
                let expected = WakeRouter::classify(&entry.pred, gate, self.router.global());
                let actual = self.wake_router.registration(slot);
                assert!(
                    actual == Some(&expected),
                    "wake routing violated: slot {slot} of predicate {} (entry {pid:?}) \
                     is registered as {actual:?} but classifies as {expected:?}",
                    entry.pred
                );
                if let SlotRoute::Threshold { expr, key, op } = expected {
                    let rungs = self.wake_router.ladder_count_of(expr, key, op, slot);
                    assert!(
                        rungs == 1,
                        "wake routing violated: slot {slot} of predicate {} (entry {pid:?}) \
                         sits on its threshold ladder {rungs} times instead of once",
                        entry.pred
                    );
                }
            }
        }
        for (pid, entry) in self.entries.iter() {
            if entry.waiting == 0 || !entry.pred.eval(state, exprs) {
                continue;
            }
            if let Some(gate) = self.wake.uncovered(pid) {
                panic!(
                    "wake routing violated: predicate {} (entry {pid:?}, \
                     {} waiting) is true but a waiter parked in gate {gate} \
                     holds no token and no sweep or announcement covers it",
                    entry.pred, entry.waiting
                );
            }
        }
    }

    /// Ground-truth check of the parking protocol (armed by
    /// `validate_relay`): re-derives every live route like the sharded
    /// checker, then audits the no-lost-wakeup invariant — after a
    /// relay, every *enqueued* waiter whose predicate is currently true
    /// must hold a pending unpark token or be awake (an awake waiter
    /// re-checks before parking, and a claimed/dequeued one is already
    /// on its way to the monitor lock). A parked, tokenless waiter with
    /// a true predicate is a lost wakeup.
    fn check_parking_protocol(&self, state: &S, exprs: &ExprTable<S>) {
        self.check_shard_routing();
        for (pid, entry) in self.entries.iter() {
            if entry.waiting == 0 || !entry.pred.eval(state, exprs) {
                continue;
            }
            if let Some(gate) = self.parking.uncovered(pid) {
                panic!(
                    "parking protocol violated: predicate {} (entry {pid:?}, \
                     {} waiting) is true but a waiter parked in gate {gate} \
                     holds no unpark token",
                    entry.pred, entry.waiting
                );
            }
        }
    }

    /// Prepares a sharded relay: diffs the snapshot when the state was
    /// mutated and maps the changed set onto the shard flags, or decides
    /// the whole relay can be skipped (returns `true`).
    ///
    /// The skip is the per-shard generalization of the change-driven
    /// skip: with no mutation since the last diff and an `all_false`
    /// certificate on *every* shard, no active conjunction can have
    /// flipped and relay invariance (Def. 4) holds vacuously.
    fn prepare_sharded(&mut self, state: &S, exprs: &ExprTable<S>, stats: &MonitorStats) -> bool {
        if !self.state_dirty {
            if self.shards.iter().all(|shard| shard.all_false) {
                return true;
            }
            // Uncertified shards may hold leftover true waiters from a
            // width-limited relay; probe them fully, reusing the cached
            // expression values.
            for shard in &mut self.shards {
                if !shard.all_false {
                    shard.probe_all = true;
                }
            }
            return false;
        }
        self.diff_snapshot(state, exprs, stats);
        self.state_dirty = false;
        let route_timer = stats.phases.start(Phase::ShardRoute);
        RelayPlan::mark_affected(&self.router, &mut self.shards, &self.changed);
        route_timer.finish();
        false
    }

    /// Diffs the expression snapshot against fresh evaluations, filling
    /// the changed bitmap, and publishes the new snapshot to the
    /// lock-free ring. Shared by the `ChangeDriven` and `Sharded` modes.
    fn diff_snapshot(&mut self, state: &S, exprs: &ExprTable<S>, stats: &MonitorStats) {
        let timer = stats.phases.start(Phase::SnapshotDiff);
        self.epoch += 1;
        self.changed.clear();
        self.changed.resize(exprs.len(), false);
        if self.value_cache.len() < exprs.len() {
            self.value_cache.resize(exprs.len(), None);
            self.slot_epoch.resize(exprs.len(), 0);
        }
        // A named-only window lets the diff skip every dependency the
        // caller's contract guarantees untouched: the cached value is
        // carried forward into this epoch as unchanged. Carrying
        // forward still requires slot contiguity — across a gap the
        // cached value may predate mutations the contract says nothing
        // about, so gapped slots are re-evaluated regardless.
        let named_only = self.named_only && !self.named.is_empty();
        if named_only {
            self.named_scratch.clear();
            self.named_scratch.resize(exprs.len(), false);
            for expr in &self.named {
                if expr.index() < exprs.len() {
                    self.named_scratch[expr.index()] = true;
                }
            }
        }
        for &expr in self.dep_refs.keys() {
            let idx = expr.index();
            // "Unchanged" is only meaningful against the immediately
            // preceding diff; a slot with a gap is treated as changed.
            let contiguous = self.slot_epoch[idx] + 1 == self.epoch;
            if named_only
                && contiguous
                && !self.named_scratch[idx]
                && self.value_cache[idx].is_some()
            {
                stats.counters.record_unchanged_expr();
                self.slot_epoch[idx] = self.epoch;
                continue;
            }
            stats.counters.record_expr_eval();
            let fresh = exprs.eval(expr, state);
            if contiguous && self.value_cache[idx] == Some(fresh) {
                stats.counters.record_unchanged_expr();
            } else {
                self.value_cache[idx] = Some(fresh);
                self.changed[idx] = true;
            }
            self.slot_epoch[idx] = self.epoch;
        }
        self.named_only = false;
        self.named.clear();
        // Publish only the values this diff evaluated (or carried
        // forward into this epoch under a named-mutation contract): a
        // snapshot is a consistent cut of the state under one lock
        // hold, never a mix of epochs (expressions with no active
        // dependents are `None`). Sharded and Parked modes only — plain
        // change-driven monitors have no ring readers, and the staging
        // + atomic stores would tax their diff hot path for nothing
        // (BENCH tracks CD's snapDiff trajectory). Parked waiters rely
        // on the publish: their self-checks read the ring.
        if matches!(
            self.config.signal_mode(),
            SignalMode::Sharded | SignalMode::Parked | SignalMode::Routed
        ) {
            self.publish_scratch.clear();
            self.publish_scratch.extend(
                self.value_cache
                    .iter()
                    .zip(&self.slot_epoch)
                    .map(|(&value, &slot_epoch)| value.filter(|_| slot_epoch == self.epoch)),
            );
            self.ring.publish(self.epoch, &self.publish_scratch);
        }
        timer.finish();
    }

    /// Prepares the change-driven relay: diffs the expression snapshot
    /// when the state was mutated, or decides that the whole search can
    /// be skipped (returns `true`).
    ///
    /// Soundness of the skip: a conjunction can only flip false→true via
    /// a state mutation (predicates are pure functions of the state), a
    /// waiter only (re-)registers when its predicate just evaluated
    /// false, and `all_false` certifies that the previous search left no
    /// true-but-unsignaled waiter behind. With no mutation since, every
    /// active conjunction is still false and relay invariance (Def. 4)
    /// holds vacuously — `validate_relay` re-proves this on every call in
    /// the test suites.
    fn refresh_changed_set(
        &mut self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> bool {
        if !self.state_dirty {
            if self.shards[0].all_false {
                return true;
            }
            // A width-limited relay may have left signalable waiters
            // behind; probe everything, reusing the cached values.
            self.shards[0].probe_all = true;
            return false;
        }
        self.diff_snapshot(state, exprs, stats);
        self.state_dirty = false;
        // The changed-set prune is only sound against a baseline where
        // every active conjunction was known false. A previous relay
        // that stopped on a hit (relay-width exhausted) may have left
        // true-but-unsignaled waiters whose dependencies this diff sees
        // as unchanged — probe everything until a search runs dry again.
        self.shards[0].probe_all = !self.shards[0].all_false;
        false
    }

    /// Ground-truth check of relay invariance (Def. 4): immediately
    /// after a relay, if any waiting thread's predicate is true then
    /// some thread must be signaled (active). A violation means the tag
    /// indexes missed a signalable thread — the exact bug class the
    /// §4.3 machinery must not have. In `Sharded` mode the check
    /// additionally re-derives every live conjunction's route and
    /// verifies the recorded shard assignment (partition totality,
    /// determinism, and global-shard placement of cross-shard
    /// conjunctions).
    ///
    /// # Panics
    ///
    /// Panics on a violation; enabled by
    /// [`MonitorConfig::validate_relay`](crate::config::MonitorConfig::validate_relay).
    fn check_relay_invariance(&self, state: &S, exprs: &ExprTable<S>) {
        if self.config.signal_mode() == SignalMode::Sharded {
            self.check_shard_routing();
        }
        if self.entries.iter().any(|(_, e)| e.signaled > 0) {
            return; // an active thread exists; the invariance holds
        }
        for (pid, entry) in self.entries.iter() {
            if entry.waiting > 0 && entry.pred.eval(state, exprs) {
                panic!(
                    "relay invariance violated: predicate {} (entry {pid:?}, \
                     {} waiting) is true but the relay signaled no one",
                    entry.pred, entry.waiting
                );
            }
        }
    }

    /// Verifies the sharded partition: every live conjunction's recorded
    /// shard matches a fresh route computation (the routing is total and
    /// deterministic), data-shard conjunctions are fully confined (all
    /// dependencies owned by their shard), and cross-shard or opaque
    /// conjunctions sit in the global shard — the placement the
    /// probed-last order relies on.
    fn check_shard_routing(&self) {
        for (pid, entry) in self.entries.iter() {
            if !entry.tags_active {
                continue;
            }
            let deps_per_conj = entry.pred.conj_deps();
            assert_eq!(
                entry.routes.len(),
                deps_per_conj.len(),
                "entry {pid:?} has {} recorded routes for {} conjunctions",
                entry.routes.len(),
                deps_per_conj.len(),
            );
            for (conj, deps) in deps_per_conj.iter().enumerate() {
                let recorded = entry.routes[conj] as usize;
                let derived = self.router.route(deps);
                if recorded != derived {
                    panic!(
                        "shard routing violated: conjunction {conj} of predicate {} \
                         (entry {pid:?}) is registered in shard {recorded} but routes \
                         to shard {derived}",
                        entry.pred
                    );
                }
                if recorded == self.router.global() {
                    continue;
                }
                assert!(
                    !deps.is_opaque() && !deps.exprs().is_empty(),
                    "opaque or dependency-free conjunction escaped the global shard"
                );
                for &expr in deps.exprs() {
                    assert_eq!(
                        self.router.shard_of_expr(expr),
                        recorded,
                        "conjunction {conj} of predicate {} spans shards but sits in \
                         data shard {recorded}",
                        entry.pred
                    );
                }
            }
        }
    }

    /// AutoSynch-T: evaluate every active predicate until one is true.
    fn find_untagged(
        &self,
        state: &S,
        exprs: &ExprTable<S>,
        stats: &MonitorStats,
    ) -> Option<PredId> {
        for &pid in &self.scan_list {
            let entry = &self.entries[pid];
            debug_assert!(entry.waiting > 0, "scan list holds only active entries");
            stats.counters.record_pred_eval();
            if entry.pred.eval(state, exprs) {
                return Some(pid);
            }
        }
        None
    }

    /// Moves one waiter of `pid` from waiting to signaled and notifies the
    /// entry's condition variable.
    fn signal_entry(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        debug_assert!(entry.waiting > 0, "signaled an entry with no waiters");
        entry.waiting -= 1;
        entry.signaled += 1;
        stats.counters.record_signal();
        let cv = Arc::clone(&entry.condvar);
        if entry.waiting == 0 {
            let timer = stats.phases.start(Phase::TagManager);
            self.deactivate_tags(pid, stats);
            timer.finish();
        }
        cv.notify_one();
    }

    fn activate_tags(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        debug_assert!(!entry.tags_active);
        entry.tags_active = true;
        match self.config.signal_mode() {
            SignalMode::Untagged => {
                stats.counters.record_tag_insert();
                self.scan_list.push(pid);
            }
            SignalMode::Tagged => {
                let shard = &mut self.shards[0];
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let conj = conj as u32;
                    stats.counters.record_tag_insert();
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            shard.eq_index.insert(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            shard.thresholds.insert(expr, key, op, (pid, conj));
                        }
                        Tag::None => shard.none_list.push((pid, conj)),
                    }
                }
            }
            SignalMode::ChangeDriven => {
                let shard = &mut self.shards[0];
                let deps_per_conj = entry.pred.conj_deps();
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let deps = &deps_per_conj[conj];
                    let conj = conj as u32;
                    stats.counters.record_tag_insert();
                    for &expr in deps.exprs() {
                        *self.dep_refs.entry(expr).or_insert(0) += 1;
                    }
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            shard.eq_index.insert(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            shard.thresholds.insert(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            shard.none_count += 1;
                            if deps.is_opaque() || deps.exprs().is_empty() {
                                shard.opaque_list.push((pid, conj));
                            } else {
                                for &expr in deps.exprs() {
                                    shard.none_index.entry(expr).or_default().push((pid, conj));
                                }
                            }
                        }
                    }
                }
            }
            SignalMode::Parked | SignalMode::Routed => {
                // No probe index to maintain: parked/routed waiters
                // re-check their own predicates, so activation only
                // records routes (for gate placement and the validator)
                // and dependency references (so the diff evaluates the
                // right expressions and the wake filter covers this
                // waiter's gate).
                let deps_per_conj = entry.pred.conj_deps();
                entry.routes.clear();
                for deps in deps_per_conj {
                    let sid = self.router.route(deps);
                    entry.routes.push(sid as u32);
                    stats.counters.record_tag_insert();
                    if sid == self.router.global() {
                        stats.counters.record_cross_shard_pred();
                    }
                    for &expr in deps.exprs() {
                        *self.dep_refs.entry(expr).or_insert(0) += 1;
                    }
                }
                // Routed mode additionally indexes slotted entries for
                // wake routing: eq route when the predicate has one,
                // dependency route otherwise, nothing for global-gate
                // populations (the gate broadcast covers them).
                if self.config.signal_mode() == SignalMode::Routed {
                    if let Some(slot) = entry.slot {
                        let gate = Self::gate_of_routes(&self.router, &entry.routes);
                        let route = WakeRouter::classify(&entry.pred, gate, self.router.global());
                        self.wake_router.register(slot, gate, route);
                    }
                }
            }
            SignalMode::Sharded => {
                let deps_per_conj = entry.pred.conj_deps();
                entry.routes.clear();
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let deps = &deps_per_conj[conj];
                    let sid = self.router.route(deps);
                    entry.routes.push(sid as u32);
                    let conj = conj as u32;
                    stats.counters.record_tag_insert();
                    if sid == self.router.global() {
                        stats.counters.record_cross_shard_pred();
                    }
                    for &expr in deps.exprs() {
                        *self.dep_refs.entry(expr).or_insert(0) += 1;
                    }
                    let shard = &mut self.shards[sid];
                    if deps.is_opaque() {
                        // Counted regardless of tag class: an opaque
                        // conjunction carrying an eq/threshold tag sits
                        // in those indexes, not `opaque_list`, yet still
                        // voids the shard's certificate on any mutation.
                        shard.opaque_count += 1;
                    }
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            shard.eq_index.insert(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            shard.thresholds.insert(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            shard.none_count += 1;
                            if deps.is_opaque() || deps.exprs().is_empty() {
                                shard.opaque_list.push((pid, conj));
                            } else {
                                for &expr in deps.exprs() {
                                    shard.none_index.entry(expr).or_default().push((pid, conj));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn deactivate_tags(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &mut self.entries[pid];
        debug_assert!(entry.tags_active);
        entry.tags_active = false;
        match self.config.signal_mode() {
            SignalMode::Untagged => {
                stats.counters.record_tag_remove();
                if let Some(pos) = self.scan_list.iter().position(|&p| p == pid) {
                    self.scan_list.swap_remove(pos);
                }
            }
            SignalMode::Tagged => {
                let shard = &mut self.shards[0];
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let conj = conj as u32;
                    stats.counters.record_tag_remove();
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            shard.eq_index.remove(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            shard.thresholds.remove(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            if let Some(pos) =
                                shard.none_list.iter().position(|&e| e == (pid, conj))
                            {
                                shard.none_list.swap_remove(pos);
                            }
                        }
                    }
                }
            }
            SignalMode::Parked | SignalMode::Routed => {
                let deps_per_conj = entry.pred.conj_deps();
                debug_assert_eq!(entry.routes.len(), deps_per_conj.len());
                for deps in deps_per_conj {
                    stats.counters.record_tag_remove();
                    for &expr in deps.exprs() {
                        if let Some(count) = self.dep_refs.get_mut(&expr) {
                            *count -= 1;
                            if *count == 0 {
                                self.dep_refs.remove(&expr);
                            }
                        }
                    }
                }
                if self.config.signal_mode() == SignalMode::Routed {
                    if let Some(slot) = entry.slot {
                        self.wake_router.unregister(slot);
                    }
                }
            }
            SignalMode::ChangeDriven | SignalMode::Sharded => {
                let sharded = self.config.signal_mode() == SignalMode::Sharded;
                let deps_per_conj = entry.pred.conj_deps();
                if sharded {
                    debug_assert_eq!(entry.routes.len(), deps_per_conj.len());
                }
                for (conj, &tag) in entry.pred.tags().iter().enumerate() {
                    let deps = &deps_per_conj[conj];
                    let sid = if sharded {
                        entry.routes[conj] as usize
                    } else {
                        0
                    };
                    let conj = conj as u32;
                    stats.counters.record_tag_remove();
                    for &expr in deps.exprs() {
                        if let Some(count) = self.dep_refs.get_mut(&expr) {
                            *count -= 1;
                            if *count == 0 {
                                self.dep_refs.remove(&expr);
                            }
                        }
                    }
                    let shard = &mut self.shards[sid];
                    if sharded && deps.is_opaque() {
                        shard.opaque_count -= 1;
                    }
                    match tag {
                        Tag::Equivalence { expr, key } => {
                            shard.eq_index.remove(expr, key, (pid, conj));
                        }
                        Tag::Threshold { expr, key, op } => {
                            shard.thresholds.remove(expr, key, op, (pid, conj));
                        }
                        Tag::None => {
                            shard.none_count -= 1;
                            if deps.is_opaque() || deps.exprs().is_empty() {
                                if let Some(pos) =
                                    shard.opaque_list.iter().position(|&e| e == (pid, conj))
                                {
                                    shard.opaque_list.swap_remove(pos);
                                }
                            } else {
                                for &expr in deps.exprs() {
                                    if let Some(candidates) = shard.none_index.get_mut(&expr) {
                                        if let Some(pos) =
                                            candidates.iter().position(|&e| e == (pid, conj))
                                        {
                                            candidates.swap_remove(pos);
                                        }
                                        if candidates.is_empty() {
                                            shard.none_index.remove(&expr);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Retires an entry with no threads to the inactive LRU and evicts
    /// beyond the configured cap (§5.2).
    fn maybe_retire(&mut self, pid: PredId, stats: &MonitorStats) {
        let entry = &self.entries[pid];
        if entry.waiting > 0 || entry.signaled > 0 || entry.persistent || entry.in_inactive {
            return;
        }
        debug_assert!(!entry.tags_active);
        self.entries[pid].in_inactive = true;
        self.inactive.push_back(pid);
        while self.inactive.len() > self.config.inactive_capacity() {
            let victim = self.inactive.pop_front().expect("inactive list non-empty");
            let timer = stats.phases.start(Phase::TagManager);
            let removed = self.entries.remove(victim);
            if let Some(key) = removed.pred.key() {
                if self.table.get(key) == Some(&victim) {
                    self.table.remove(key);
                }
            }
            timer.finish();
        }
    }

    /// Removes `pid` from the inactive LRU when it is being reused.
    fn unlink_inactive(&mut self, pid: PredId) {
        if self.entries.get(pid).is_some_and(|entry| entry.in_inactive) {
            self.entries[pid].in_inactive = false;
            if let Some(pos) = self.inactive.iter().position(|&p| p == pid) {
                self.inactive.remove(pos);
            }
        }
    }

    // --- introspection for tests and diagnostics -------------------------

    /// Number of live predicate entries (active + inactive).
    pub(crate) fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of entries currently parked on the inactive LRU.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn inactive_count(&self) -> usize {
        self.inactive.len()
    }

    /// Total waiting (unsignaled) threads across entries.
    pub(crate) fn waiting_count(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.waiting as usize).sum()
    }

    /// Total signaled-but-not-resumed threads across entries.
    pub(crate) fn signaled_count(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.signaled as usize).sum()
    }

    /// Validator hook for the no-lost-relay audit: an elided (fast-lane)
    /// exit skips the relay call entirely, which is sound only when the
    /// manager certifies there was nobody to relay *to*. The fast lane's
    /// own admission check — the monitor word's presence count — already
    /// guarantees this (every waiter holds presence from enter to exit,
    /// including while blocked), so a failure here means the word
    /// protocol leaked a waiter. Called only under `validate_relay`.
    ///
    /// # Panics
    ///
    /// Panics when any thread is waiting or signaled at the audited exit.
    pub(crate) fn audit_fast_exit(&self) {
        let waiting = self.waiting_count();
        let signaled = self.signaled_count();
        assert!(
            waiting == 0 && signaled == 0,
            "fast-path exit with {waiting} waiting / {signaled} signaled \
             threads: the monitor-word presence count admitted a fast \
             acquire while the relay rule was still owed"
        );
    }

    /// Live tags across all shards (tagged modes) or the scan list
    /// (untagged mode).
    pub(crate) fn live_tag_count(&self) -> usize {
        match self.config.signal_mode() {
            SignalMode::Untagged => self.scan_list.len(),
            _ => self.shards.iter().map(Shard::live_tag_count).sum(),
        }
    }

    /// Number of shards (1 for the non-sharded modes; data shards plus
    /// the global shard in `Sharded` mode).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn shard_slot_count(&self) -> usize {
        self.shards.len()
    }
}

impl<S> std::fmt::Debug for ConditionManager<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionManager")
            .field("entries", &self.entries.len())
            .field("waiting", &self.waiting_count())
            .field("signaled", &self.signaled_count())
            .field("inactive", &self.inactive.len())
            .field("tags", &self.live_tag_count())
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests;
